"""Naive RAG vs GraphRAG over an enterprise corpus (survey §3).

Demonstrates the survey's RAG narrative end to end: a model that knows
nothing answers local questions once Naive RAG supplies the right chunks,
but only GraphRAG's community summaries cover a *global* question about
the whole corpus.

Run:  python examples/enterprise_graphrag.py
"""

from repro.enhanced import GraphRAG, ModularRAG, NaiveRAG
from repro.kg.datasets import enterprise_kg, SCHEMA
from repro.kg.triples import IRI
from repro.llm import load_model
from repro.llm.prompts import parse_qa_response, qa_prompt


def main() -> None:
    ds = enterprise_kg(seed=0)
    documents = ds.metadata["documents"]
    print(f"corpus: {len(documents)} documents over {ds.stats()['triples']} "
          f"KG triples")

    # The subject model has zero parametric knowledge of this enterprise —
    # everything must come from retrieval.
    llm = load_model("chatgpt", world=ds.kg, seed=0,
                     knowledge_coverage=0.0, hallucination_rate=0.0)

    naive = NaiveRAG(llm)
    n_chunks = naive.index_documents(documents)
    print(f"Naive RAG indexed {n_chunks} chunks")
    modular = ModularRAG(llm, kg=ds.kg)
    modular.index_documents(documents)
    graph_rag = GraphRAG(llm, ds.kg)
    communities = graph_rag.build()
    print(f"GraphRAG detected {len(communities)} communities")

    # --- local question -----------------------------------------------------
    dept = IRI(ds.metadata["departments"][0])
    question = f"Who manages {ds.kg.label(dept)}?"
    print(f"\nlocal question: {question}")
    print(f"  closed-book : "
          f"{parse_qa_response(llm.complete(qa_prompt(question)).text)}")
    print(f"  Naive RAG   : {naive.answer(question)}")
    print(f"  Modular RAG : {modular.answer(question)}")
    print(f"  GraphRAG    : {graph_rag.answer_local(question)}")

    # --- global question ------------------------------------------------------
    global_question = "Who manages each department?"
    managers = [ds.kg.label(ds.kg.store.subjects(SCHEMA.manages, IRI(d))[0])
                for d in ds.metadata["departments"]]
    print(f"\nglobal question: {global_question}")
    naive_answer = naive.answer(global_question)
    graph_answer = graph_rag.answer_global(global_question)
    print(f"  Naive RAG coverage : "
          f"{graph_rag.coverage_of(managers, naive_answer):.2f}  "
          f"({naive_answer[:70]}...)")
    print(f"  GraphRAG coverage  : "
          f"{graph_rag.coverage_of(managers, graph_answer):.2f}")
    print(f"  GraphRAG answer    : {graph_answer}")


if __name__ == "__main__":
    main()
