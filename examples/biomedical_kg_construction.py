"""Biomedical KG construction — the survey's COVID-19 case study ([28]).

End-to-end "LLM for KG" pipeline over a biomedical corpus:

1. generate an annotated corpus from the curated COVID-19 KG,
2. extract entities and relations with the LLM and build a fresh KG,
3. learn the ontology (LLMs4OL-style) and score it against the gold schema,
4. validate the constructed KG: fact-check a few statements, run the
   inconsistency checker.

Run:  python examples/biomedical_kg_construction.py
"""

from repro.construction import OntologyLearner, build_kg_from_text
from repro.construction.relation_extraction import (
    ZeroShotRelationExtractor, evaluate_relation_extraction,
)
from repro.kg.datasets import covid_kg
from repro.llm import load_model
from repro.text import generate_extraction_corpus
from repro.validation import (
    ClosedBookFactChecker, ConstraintChecker, MisinformationInjector,
    RetrievalAugmentedFactChecker, evaluate_fact_checking,
)


def main() -> None:
    gold = covid_kg()
    print(f"gold biomedical KG: {gold.stats()}")

    # --- 1. Corpus ----------------------------------------------------------
    corpus = generate_extraction_corpus(gold, n_sentences=40, seed=1,
                                        variation=0.15)
    print(f"corpus: {len(corpus)} sentences, e.g. {corpus.sentences[0].text!r}")

    # --- 2. Extraction → constructed KG -------------------------------------
    llm = load_model("chatgpt", world=gold.kg, seed=0)
    types = [c.label for c in gold.ontology.classes.values()]
    extraction_scores = evaluate_relation_extraction(
        ZeroShotRelationExtractor(llm, corpus.relations), corpus.sentences)
    print(f"relation extraction F1: {extraction_scores['f1']:.3f}")
    constructed = build_kg_from_text(llm, corpus.sentences, types,
                                     corpus.relations)
    print(f"constructed KG: {constructed.stats()}")

    # --- 3. Ontology learning ------------------------------------------------
    learner = OntologyLearner(llm, candidate_types=types)
    learned = learner.learn(corpus.sentences)
    scores = learned.f1_against(gold.ontology, match_on="label")
    print("learned ontology vs gold: "
          f"classes F1={scores['class_f1']:.2f}, "
          f"taxonomy edges F1={scores['edge_f1']:.2f}, "
          f"properties F1={scores['property_f1']:.2f}")
    print("learned classes:", sorted(c.label for c in learned.classes.values()))

    # --- 4. Validation ---------------------------------------------------------
    statements = MisinformationInjector(gold.kg, seed=2).build_statements(n=20)
    closed = evaluate_fact_checking(ClosedBookFactChecker(llm), statements)
    grounded = evaluate_fact_checking(
        RetrievalAugmentedFactChecker(llm, gold.kg), statements)
    print(f"fact checking accuracy: closed-book="
          f"{closed['end_to_end_accuracy']:.2f}, "
          f"KG-grounded={grounded['end_to_end_accuracy']:.2f}")

    violations = ConstraintChecker(gold.ontology).check(gold.kg)
    print(f"consistency of the gold KG: {len(violations)} violations "
          f"(expected 0)")


if __name__ == "__main__":
    main()
