"""Quickstart: a tour of the LLM⟷KG toolkit in ~60 lines of API.

Covers one representative capability from each interplay direction:
build/query a KG (substrate), verbalize it with an LLM (LLM-for-KG),
ground the LLM's answers in the KG (KG-enhanced LLM), and translate a
natural-language question into SPARQL (cooperation).

Run:  python examples/quickstart.py
"""

from repro.kg import KnowledgeGraph, Namespace
from repro.kg2text import reference_description, triples_for_entity
from repro.llm import load_model
from repro.llm import prompts as P
from repro.sparql import SparqlEngine

EX = Namespace("http://example.org/")
S = Namespace("http://repro.dev/schema/")


def main() -> None:
    # --- 1. Build a small knowledge graph --------------------------------
    kg = KnowledgeGraph(name="quickstart")
    kg.set_label(EX.Ada, "Ada Lovelace")
    kg.set_label(EX.Charles, "Charles Babbage")
    kg.set_label(EX.London, "London")
    kg.set_label(S.bornIn, "born in")
    kg.set_label(S.collaboratedWith, "collaborated with")
    kg.add(EX.Ada, S.bornIn, EX.London)
    kg.add(EX.Ada, S.collaboratedWith, EX.Charles)
    kg.add(EX.Charles, S.collaboratedWith, EX.Ada)  # symmetric relation
    kg.add(EX.Ada, S.birthYear, 1815)
    print(f"KG built: {kg.stats()}")

    # --- 2. Query it with SPARQL ------------------------------------------
    engine = SparqlEngine(kg.store)
    rows = engine.select(
        "PREFIX s: <http://repro.dev/schema/> "
        "SELECT ?who WHERE { <http://example.org/Ada> s:collaboratedWith ?who }")
    print(f"SPARQL: Ada collaborated with -> {kg.label(rows[0]['who'])}")

    # --- 3. A simulated LLM pre-trained on the KG -------------------------
    llm = load_model("chatgpt", world=kg, seed=0)
    print(f"model: {llm.config.name} "
          f"({llm.config.n_parameters:.0e} params, skill={llm.config.skill:.2f})")

    # LLM-for-KG: verbalize a subgraph (RQ1).
    triples = triples_for_entity(kg, EX.Ada)
    response = llm.complete(P.kg2text_prompt(
        [(kg.label(t.subject), kg.label(t.predicate), kg.label(t.object))
         for t in triples]))
    print(f"KG-to-text: {response.text}")
    print(f"  (reference: {reference_description(kg, triples)})")

    # KG-enhanced LLM: grounded question answering (RQ5).
    question = "Who collaborated with Ada Lovelace?"
    closed_book = llm.complete(P.qa_prompt(question)).text
    facts = [kg.verbalize_triple(t) for t in kg.outgoing(EX.Ada)]
    grounded = llm.complete(P.qa_prompt(question, facts=facts)).text
    print(f"QA closed-book: {closed_book}  |  grounded: {grounded}")

    # Cooperation: text-to-SPARQL (RQ6) — generate, then execute.
    generated = llm.complete(P.sparql_prompt(
        question,
        schema="collaborated with = <http://repro.dev/schema/collaboratedWith>",
        example_query="SELECT ?x WHERE { ?s ?p ?x }")).text
    print(f"generated SPARQL: {generated}")
    answers = engine.select(generated)
    print(f"executed -> {[kg.label(v) for row in answers for v in row.values()]}")

    # Token accounting, as a real API client would see it.
    print(f"usage: {llm.usage}")


if __name__ == "__main__":
    main()
