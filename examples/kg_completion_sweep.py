"""KG-completion sweep: structural embeddings vs text-based methods.

Reproduces the §2.4 comparison at example scale and sweeps the embedding
dimension to show the structural models' capacity curve — the ablation
DESIGN.md lists for E-KGC.

Run:  python examples/kg_completion_sweep.py
"""

from repro.completion import (
    EMBEDDING_MODELS, KGBertScorer, KICGPTReranker, LinkPredictionTask,
    SimKGCScorer, StARScorer, make_split,
)
from repro.eval import ResultTable
from repro.kg.datasets import encyclopedia_kg
from repro.llm import load_model


def main() -> None:
    ds = encyclopedia_kg(seed=1, n_people=60, n_cities=12, n_countries=4,
                         n_companies=8, n_universities=4)
    split = make_split(ds, seed=0)
    task = LinkPredictionTask(split)
    llm = load_model("chatgpt", world=ds.kg, seed=0)
    print(f"split: {len(split.train)} train / {len(split.valid)} valid / "
          f"{len(split.test)} test triples, {len(split.entities)} entities")

    # --- dimension sweep for TransE ----------------------------------------
    sweep = ResultTable("TransE dimension sweep (MRR)", ["dim", "mrr"])
    transe_models = {}
    for dim in (8, 16, 32, 64):
        model = EMBEDDING_MODELS["TransE"](dim=dim, seed=0).fit(
            split.train, epochs=60, extra_entities=split.entities)
        transe_models[dim] = model
        scores = task.evaluate(model, max_queries=20)
        sweep.add(f"TransE d={dim}", dim=dim, mrr=scores["mrr"])
    print("\n" + sweep.render())

    # --- the method comparison -------------------------------------------------
    table = ResultTable("link prediction (20 test queries)",
                        ["mrr", "hits@1", "hits@10"])
    for name, cls in sorted(EMBEDDING_MODELS.items()):
        model = cls(dim=32, seed=0).fit(split.train, epochs=60,
                                        extra_entities=split.entities)
        scores = task.evaluate(model, max_queries=20)
        table.add(name, mrr=scores["mrr"], **{
            "hits@1": scores["hits@1"], "hits@10": scores["hits@10"]})

    simkgc = SimKGCScorer(ds.kg)
    simkgc.fit(split.train)
    scores = task.evaluate(simkgc, max_queries=20)
    table.add("SimKGC", mrr=scores["mrr"], **{
        "hits@1": scores["hits@1"], "hits@10": scores["hits@10"]})

    star = StARScorer(simkgc, transe_models[32])
    star.calibrate(split.valid[:10], split.entities)
    scores = task.evaluate(star, max_queries=20)
    table.add(f"StAR (alpha={star.alpha})", mrr=scores["mrr"], **{
        "hits@1": scores["hits@1"], "hits@10": scores["hits@10"]})

    kgbert = KGBertScorer(llm, ds.kg, multi_task=True)
    kgbert.fit(split.train)
    scores = task.evaluate(kgbert, max_queries=20)
    table.add("KG-BERT", mrr=scores["mrr"], **{
        "hits@1": scores["hits@1"], "hits@10": scores["hits@10"]})

    kicgpt = KICGPTReranker(llm, ds.kg, transe_models[32], top_k=10)
    scores = task.evaluate(kicgpt, max_queries=20)
    table.add("KICGPT (rerank TransE)", mrr=scores["mrr"], **{
        "hits@1": scores["hits@1"], "hits@10": scores["hits@10"]})

    print("\n" + table.render())
    print("\nReading: text-aware methods (KG-BERT, KICGPT) lead because they "
          "tap textual/parametric knowledge the training graph lacks —\n"
          "the §2.4 argument for text-based completion.")


if __name__ == "__main__":
    main()
