"""The survey's §5.2 open challenges, made runnable.

Three demos from the Open Challenges section:

1. **Knowledge/language separation** — a 110M-parameter fact-free backbone
   plus reliable KG retrieval vs a 175B closed-book model.
2. **Personal KG-enhanced LLMs** — an assistant that answers from a private
   personal KG and drafts replies in the owner's writing style.
3. **Query satisfiability** — keep only generated queries "which can return
   a result": static unsatisfiability detection before execution.

Run:  python examples/open_challenges.py
"""

from repro.enhanced import PersonalAssistant, build_personal_kg
from repro.enhanced.separation import compare_against_closed_book
from repro.kg.datasets import movie_kg
from repro.llm import load_model
from repro.qa import generate_multihop_questions
from repro.sparql import check_satisfiability


def demo_separation() -> None:
    print("=== 1. smaller LLMs + KG knowledge ===")
    ds = movie_kg(seed=3)
    questions = generate_multihop_questions(ds, n=12, hops=1, seed=2)
    for report in compare_against_closed_book(ds.kg, questions):
        print(f"  {report.system:<28} {report.n_parameters:>8.0e} params"
              f"  accuracy={report.accuracy:.2f}")
    print("  → the separated architecture wins at a ~1600x parameter discount")


def demo_personal() -> None:
    print("\n=== 2. personal KG-enhanced assistant ===")
    personal_kg = build_personal_kg("alice", [
        ("Alice", "works for", "Globex Corp"),
        ("Alice", "dentist appointment on", "Tuesday"),
        ("Mom", "birthday on", "March 3"),
    ])
    backbone = load_model("bert-base", world=personal_kg, seed=0,
                          knowledge_coverage=0.0, hallucination_rate=0.0)
    assistant = PersonalAssistant(backbone, personal_kg, message_history=[
        "hey! sounds good, see you then :)",
        "hey! running late, be there soon :)",
        "sounds good, thanks a ton :)",
    ])
    for question in ("What works for Alice?", "What birthday on Mom?"):
        reply = assistant.reply_to(question)
        tag = "KG" if reply.grounded else "??"
        print(f"  Q: {question}")
        print(f"  A [{tag}]: {reply.text}")
    own = assistant.style_perplexity("hey! sounds good :)")
    formal = assistant.style_perplexity("Dear Sir or Madam, I hereby confirm.")
    print(f"  style model perplexity — owner's voice: {own:.1f}, "
          f"formal register: {formal:.1f}")


def demo_satisfiability() -> None:
    print("\n=== 3. query satisfiability gating ===")
    ds = movie_kg(seed=3)
    queries = [
        ("satisfiable",
         "PREFIX s: <http://repro.dev/schema/> "
         "SELECT ?x WHERE { ?x s:directedBy ?d . ?x a s:Movie }"),
        ("contradictory filters",
         'SELECT ?x WHERE { ?x <http://repro.dev/schema/starring> ?n '
         'FILTER (?n = "a" && ?n = "b") }'),
        ("disjoint classes",
         "PREFIX s: <http://repro.dev/schema/> "
         "SELECT ?x WHERE { ?x a s:Movie . ?x a s:Genre }"),
        ("unknown predicate",
         "PREFIX s: <http://repro.dev/schema/> "
         "SELECT ?x WHERE { ?x s:nonexistent ?y }"),
    ]
    for label, query in queries:
        report = check_satisfiability(query, store=ds.kg.store,
                                      ontology=ds.ontology)
        status = "OK" if report.satisfiable else "REJECT"
        reason = f" — {report.reasons[0]}" if report.reasons else ""
        print(f"  [{status}] {label}{reason}")


def main() -> None:
    demo_separation()
    demo_personal()
    demo_satisfiability()


if __name__ == "__main__":
    main()
