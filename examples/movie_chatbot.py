"""A KG chatbot over the movie graph (survey §4.1.5, after Omar et al.).

Runs a scripted dialogue through the hybrid chatbot — greeting, factual
lookups, a pronoun follow-up, a text-to-SPARQL round trip — and prints each
turn with its routing decision.

Run:  python examples/movie_chatbot.py
"""

from repro.kg.datasets import movie_kg
from repro.kg.triples import IRI
from repro.llm import load_model
from repro.qa import KGChatbot, Text2SparqlTask, SparqlGenText2Sparql
from repro.qa.multihop import ReLMKGQA
from repro.sparql import SparqlEngine


def build_dialogue(ds):
    """A scripted dialogue referencing movies that exist in this seed."""
    other = ds.kg.label(IRI(ds.metadata["movies"][5]))
    return [
        "Hello!",
        "What directed by The Silent Horizon?",
        "And what starring it?",
        f"What has genre {other}?",
        "thanks, bye!",
    ]


def main() -> None:
    ds = movie_kg(seed=3)
    llm = load_model("chatgpt", world=ds.kg, seed=0)
    bot = KGChatbot(llm, ds.kg, ReLMKGQA(llm, ds.kg))

    print("=== dialogue ===")
    for message in build_dialogue(ds):
        turn = bot.chat(message)
        print(f"user> {message}")
        print(f"bot [{turn.intent}]> {turn.reply}")

    # Bonus: the same factual need expressed as text-to-SPARQL.
    print("\n=== text-to-SPARQL round trip ===")
    task = Text2SparqlTask(ds, n=3, hops=1, seed=2)
    generator = SparqlGenText2Sparql(llm, task)
    engine = SparqlEngine(ds.kg.store)
    for instance in task.instances:
        query = generator.generate(instance.question)
        rows = engine.select(query)
        answers = sorted({ds.kg.label(v) for row in rows
                          for v in row.values()})
        print(f"Q: {instance.question}")
        print(f"   SPARQL: {query}")
        print(f"   -> {', '.join(answers) if answers else '(no results)'}")

    print(f"\ntoken usage: {llm.usage}")


if __name__ == "__main__":
    main()
