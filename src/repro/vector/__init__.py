"""Vector store substrate: exact and clustered approximate nearest-neighbour
indexes used by RAG retrieval, SimKGC candidate ranking and GPT-RE
demonstration retrieval."""

from repro.vector.index import VectorIndex, ClusteredVectorIndex, SearchHit

__all__ = ["VectorIndex", "ClusteredVectorIndex", "SearchHit"]
