"""Vector indexes: exact brute-force and IVF-flat-style clustered search.

The Naive-RAG indexing step ("each segment encoded into vector form") needs
a top-k similarity search; the clustered variant demonstrates the standard
accuracy/latency trade-off and backs the engine micro-benchmarks.

Both indexes store their vectors in capacity-doubling packed arrays:
``add`` writes one row into preallocated space (amortized O(1)) and
``search`` slices a view, so inserts never invalidate previously packed
state and no query ever re-stacks Python lists into a matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class SearchHit:
    """One nearest-neighbour result."""

    key: Hashable
    score: float
    payload: object = None


def safe_norms(matrix: np.ndarray) -> np.ndarray:
    """Row L2 norms with zeros replaced by 1 (zero rows score 0, not NaN)."""
    norms = np.linalg.norm(matrix, axis=1)
    norms[norms == 0.0] = 1.0
    return norms


def cosine_topk(matrix: np.ndarray, norms: np.ndarray, query: np.ndarray,
                k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Top-k rows of ``matrix`` by cosine similarity to ``query``.

    ``norms`` are the rows' L2 norms with zeros already replaced by 1 (see
    :func:`safe_norms`); a zero query is likewise treated as norm 1, so
    zero vectors score 0 everywhere instead of dividing by zero. Returns
    ``(order, scores)`` where ``order`` indexes the k best rows, best
    first, ties broken by row position (stable sort).

    This is the single scoring kernel shared by :class:`VectorIndex`,
    :class:`ClusteredVectorIndex` and
    :func:`repro.llm.embedding.top_k_similar`.
    """
    qn = np.linalg.norm(query) or 1.0
    scores = (matrix @ query) / (norms * qn)
    k = min(k, matrix.shape[0])
    order = np.argsort(-scores, kind="stable")[:k]
    return order, scores


class _PackedRows:
    """A (capacity, dim) array that doubles in place; rows append O(1)."""

    def __init__(self, dim: int):
        self.dim = dim
        self.size = 0
        self._matrix = np.zeros((0, dim), dtype=np.float64)
        self._norms = np.zeros(0, dtype=np.float64)

    def append(self, vector: np.ndarray) -> None:
        if self.size == self._matrix.shape[0]:
            capacity = max(16, 2 * self._matrix.shape[0])
            matrix = np.zeros((capacity, self.dim), dtype=np.float64)
            matrix[:self.size] = self._matrix[:self.size]
            norms = np.ones(capacity, dtype=np.float64)
            norms[:self.size] = self._norms[:self.size]
            self._matrix, self._norms = matrix, norms
        self._matrix[self.size] = vector
        norm = np.linalg.norm(vector)
        self._norms[self.size] = norm if norm > 0.0 else 1.0
        self.size += 1

    @property
    def matrix(self) -> np.ndarray:
        """A view of the filled rows (no copy)."""
        return self._matrix[:self.size]

    @property
    def norms(self) -> np.ndarray:
        """A view of the filled rows' safe norms (no copy)."""
        return self._norms[:self.size]


class VectorIndex:
    """Exact cosine top-k over an append-only collection of vectors."""

    def __init__(self, dim: int):
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = dim
        self._keys: List[Hashable] = []
        self._payloads: List[object] = []
        self._packed = _PackedRows(dim)
        # Plain-int usage counters: cheap enough for the hot path, pulled
        # into the metrics registry via ``Observability.bind_index``.
        self.adds = 0
        self.searches = 0

    def add(self, key: Hashable, vector: np.ndarray, payload: object = None) -> None:
        """Insert a vector under ``key`` (keys need not be unique)."""
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dim,):
            raise ValueError(f"expected shape ({self.dim},), got {vector.shape}")
        self._keys.append(key)
        self._payloads.append(payload)
        self._packed.append(vector)
        self.adds += 1

    def __len__(self) -> int:
        return len(self._keys)

    def stats(self) -> Dict[str, int]:
        """Usage counters (adds, searches, current size)."""
        return {"adds": self.adds, "searches": self.searches,
                "size": len(self._keys)}

    def search(self, query: np.ndarray, k: int = 5) -> List[SearchHit]:
        """The ``k`` entries most cosine-similar to ``query``."""
        self.searches += 1
        if not self._keys or k <= 0:
            return []
        query = np.asarray(query, dtype=np.float64)
        order, scores = cosine_topk(self._packed.matrix, self._packed.norms,
                                    query, k)
        return [SearchHit(self._keys[i], float(scores[i]), self._payloads[i])
                for i in order]


class ClusteredVectorIndex:
    """IVF-flat-style index: k-means cells, probe the nearest ``nprobe``.

    Approximate — recall depends on ``nprobe`` — but sub-linear in the number
    of vectors once built. ``build`` must be called after all inserts; it
    packs each cell's members into a per-cell matrix so queries score cells
    with one matmul each instead of re-stacking row lists.
    """

    def __init__(self, dim: int, n_cells: int = 16, nprobe: int = 2, seed: int = 0):
        if n_cells <= 0 or nprobe <= 0:
            raise ValueError("n_cells and nprobe must be positive")
        self.dim = dim
        self.n_cells = n_cells
        self.nprobe = nprobe
        self.seed = seed
        self._keys: List[Hashable] = []
        self._payloads: List[object] = []
        self._packed = _PackedRows(dim)
        self._centroids: Optional[np.ndarray] = None
        self._cells: List[np.ndarray] = []          # member row ids per cell
        self._cell_matrices: List[np.ndarray] = []  # packed members per cell
        self._cell_norms: List[np.ndarray] = []
        self.adds = 0
        self.searches = 0
        self.builds = 0

    def add(self, key: Hashable, vector: np.ndarray, payload: object = None) -> None:
        """Insert a vector (index must be (re)built before searching)."""
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dim,):
            raise ValueError(f"expected shape ({self.dim},), got {vector.shape}")
        self._keys.append(key)
        self._payloads.append(payload)
        self._packed.append(vector)
        self._centroids = None
        self.adds += 1

    def __len__(self) -> int:
        return len(self._keys)

    def stats(self) -> Dict[str, int]:
        """Usage counters (adds, searches, k-means builds, current size)."""
        return {"adds": self.adds, "searches": self.searches,
                "builds": self.builds, "size": len(self._keys)}

    @staticmethod
    def _squared_distances(matrix: np.ndarray, x_sq: np.ndarray,
                           centroids: np.ndarray) -> np.ndarray:
        """(n, k) squared distances via the x² − 2x·c + c² expansion.

        Peak memory is the (n, k) result itself — never the (n, k, d)
        intermediate the naive broadcast ``matrix[:, None, :] - centroids``
        would allocate.
        """
        c_sq = (centroids ** 2).sum(axis=1)
        return x_sq[:, None] - 2.0 * (matrix @ centroids.T) + c_sq[None, :]

    def build(self, iterations: int = 8) -> None:
        """Run seeded k-means and pack vectors into per-cell matrices."""
        self.builds += 1
        n = self._packed.size
        if n == 0:
            self._centroids = np.zeros((0, self.dim))
            self._cells = []
            self._cell_matrices = []
            self._cell_norms = []
            return
        matrix = self._packed.matrix
        n_cells = min(self.n_cells, n)
        rng = np.random.default_rng(self.seed)
        initial = rng.choice(n, size=n_cells, replace=False)
        centroids = matrix[initial].copy()
        x_sq = (matrix ** 2).sum(axis=1)
        assignment = np.zeros(n, dtype=np.int64)
        for _ in range(iterations):
            distances = self._squared_distances(matrix, x_sq, centroids)
            new_assignment = distances.argmin(axis=1)
            if np.array_equal(new_assignment, assignment):
                assignment = new_assignment
                break
            assignment = new_assignment
            counts = np.bincount(assignment, minlength=n_cells)
            sums = np.zeros((n_cells, self.dim))
            np.add.at(sums, assignment, matrix)
            occupied = counts > 0
            centroids[occupied] = sums[occupied] / counts[occupied, None]
            # Empty cells are reseeded from the same rng, so the whole
            # clustering stays a pure function of (data, seed).
            empty = np.flatnonzero(~occupied)
            if empty.size:
                replacements = rng.choice(n, size=empty.size,
                                          replace=empty.size > n)
                centroids[empty] = matrix[replacements]
        self._centroids = centroids
        members: List[List[int]] = [[] for _ in range(n_cells)]
        for index, cell in enumerate(assignment):
            members[int(cell)].append(index)
        self._cells = [np.asarray(ids, dtype=np.int64) for ids in members]
        self._cell_matrices = [matrix[ids] for ids in self._cells]
        self._cell_norms = [safe_norms(m) for m in self._cell_matrices]

    def search(self, query: np.ndarray, k: int = 5) -> List[SearchHit]:
        """Approximate top-k: scan the ``nprobe`` cells nearest the query."""
        self.searches += 1
        if self._centroids is None:
            self.build()
        assert self._centroids is not None
        if self._centroids.shape[0] == 0 or k <= 0:
            return []
        query = np.asarray(query, dtype=np.float64)
        cell_distance = ((self._centroids - query[None, :]) ** 2).sum(axis=1)
        probe = np.argsort(cell_distance, kind="stable")[: self.nprobe]
        qn = np.linalg.norm(query) or 1.0
        id_chunks: List[np.ndarray] = []
        score_chunks: List[np.ndarray] = []
        for cell in probe:
            ids = self._cells[int(cell)]
            if ids.size == 0:
                continue
            # Each probed cell is one matmul over its pre-packed matrix.
            scores = (self._cell_matrices[int(cell)] @ query) \
                / (self._cell_norms[int(cell)] * qn)
            id_chunks.append(ids)
            score_chunks.append(scores)
        if not id_chunks:
            return []
        candidate_ids = np.concatenate(id_chunks)
        scores = np.concatenate(score_chunks)
        k = min(k, candidate_ids.shape[0])
        order = np.argsort(-scores, kind="stable")[:k]
        return [SearchHit(self._keys[int(candidate_ids[i])], float(scores[i]),
                          self._payloads[int(candidate_ids[i])]) for i in order]
