"""Vector indexes: exact brute-force and IVF-flat-style clustered search.

The Naive-RAG indexing step ("each segment encoded into vector form") needs
a top-k similarity search; the clustered variant demonstrates the standard
accuracy/latency trade-off and backs the engine micro-benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class SearchHit:
    """One nearest-neighbour result."""

    key: Hashable
    score: float
    payload: object = None


class VectorIndex:
    """Exact cosine top-k over an append-only collection of vectors."""

    def __init__(self, dim: int):
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = dim
        self._keys: List[Hashable] = []
        self._payloads: List[object] = []
        self._rows: List[np.ndarray] = []
        self._matrix: Optional[np.ndarray] = None
        self._norms: Optional[np.ndarray] = None

    def add(self, key: Hashable, vector: np.ndarray, payload: object = None) -> None:
        """Insert a vector under ``key`` (keys need not be unique)."""
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dim,):
            raise ValueError(f"expected shape ({self.dim},), got {vector.shape}")
        self._keys.append(key)
        self._payloads.append(payload)
        self._rows.append(vector)
        self._matrix = None  # invalidate the packed matrix

    def __len__(self) -> int:
        return len(self._keys)

    def _pack(self) -> None:
        if self._matrix is None:
            self._matrix = np.stack(self._rows) if self._rows else np.zeros((0, self.dim))
            norms = np.linalg.norm(self._matrix, axis=1)
            norms[norms == 0.0] = 1.0
            self._norms = norms

    def search(self, query: np.ndarray, k: int = 5) -> List[SearchHit]:
        """The ``k`` entries most cosine-similar to ``query``."""
        if not self._rows or k <= 0:
            return []
        self._pack()
        assert self._matrix is not None and self._norms is not None
        query = np.asarray(query, dtype=np.float64)
        qn = np.linalg.norm(query) or 1.0
        scores = (self._matrix @ query) / (self._norms * qn)
        k = min(k, len(self._keys))
        order = np.argsort(-scores, kind="stable")[:k]
        return [SearchHit(self._keys[i], float(scores[i]), self._payloads[i])
                for i in order]


class ClusteredVectorIndex:
    """IVF-flat-style index: k-means cells, probe the nearest ``nprobe``.

    Approximate — recall depends on ``nprobe`` — but sub-linear in the number
    of vectors once built. ``build`` must be called after all inserts.
    """

    def __init__(self, dim: int, n_cells: int = 16, nprobe: int = 2, seed: int = 0):
        if n_cells <= 0 or nprobe <= 0:
            raise ValueError("n_cells and nprobe must be positive")
        self.dim = dim
        self.n_cells = n_cells
        self.nprobe = nprobe
        self.seed = seed
        self._keys: List[Hashable] = []
        self._payloads: List[object] = []
        self._rows: List[np.ndarray] = []
        self._centroids: Optional[np.ndarray] = None
        self._cells: List[List[int]] = []

    def add(self, key: Hashable, vector: np.ndarray, payload: object = None) -> None:
        """Insert a vector (index must be (re)built before searching)."""
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dim,):
            raise ValueError(f"expected shape ({self.dim},), got {vector.shape}")
        self._keys.append(key)
        self._payloads.append(payload)
        self._rows.append(vector)
        self._centroids = None

    def __len__(self) -> int:
        return len(self._keys)

    def build(self, iterations: int = 8) -> None:
        """Run seeded k-means and assign vectors to cells."""
        if not self._rows:
            self._centroids = np.zeros((0, self.dim))
            self._cells = []
            return
        matrix = np.stack(self._rows)
        n_cells = min(self.n_cells, matrix.shape[0])
        rng = np.random.default_rng(self.seed)
        initial = rng.choice(matrix.shape[0], size=n_cells, replace=False)
        centroids = matrix[initial].copy()
        assignment = np.zeros(matrix.shape[0], dtype=np.int64)
        for _ in range(iterations):
            distances = ((matrix[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
            new_assignment = distances.argmin(axis=1)
            if np.array_equal(new_assignment, assignment):
                assignment = new_assignment
                break
            assignment = new_assignment
            for cell in range(n_cells):
                members = matrix[assignment == cell]
                if members.shape[0]:
                    centroids[cell] = members.mean(axis=0)
        self._centroids = centroids
        self._cells = [[] for _ in range(n_cells)]
        for index, cell in enumerate(assignment):
            self._cells[int(cell)].append(index)

    def search(self, query: np.ndarray, k: int = 5) -> List[SearchHit]:
        """Approximate top-k: scan the ``nprobe`` cells nearest the query."""
        if self._centroids is None:
            self.build()
        assert self._centroids is not None
        if self._centroids.shape[0] == 0 or k <= 0:
            return []
        query = np.asarray(query, dtype=np.float64)
        cell_distance = ((self._centroids - query[None, :]) ** 2).sum(axis=1)
        probe = np.argsort(cell_distance, kind="stable")[: self.nprobe]
        candidate_ids: List[int] = []
        for cell in probe:
            candidate_ids.extend(self._cells[int(cell)])
        if not candidate_ids:
            return []
        matrix = np.stack([self._rows[i] for i in candidate_ids])
        norms = np.linalg.norm(matrix, axis=1)
        norms[norms == 0.0] = 1.0
        qn = np.linalg.norm(query) or 1.0
        scores = (matrix @ query) / (norms * qn)
        k = min(k, len(candidate_ids))
        order = np.argsort(-scores, kind="stable")[:k]
        return [SearchHit(self._keys[candidate_ids[i]], float(scores[i]),
                          self._payloads[candidate_ids[i]]) for i in order]
