"""Event detection and extraction — the Table-1 row *no* survey covers.

Table 1 shows "Event Detection or Extraction" unaddressed by every survey
including this one; this module closes that gap as a library extension
(clearly beyond the paper, flagged as such in DESIGN.md).

An event is a typed occurrence with role-bound arguments, e.g.
``Premiere(film=The Silent Horizon, year=1994)``. We implement the standard
two stages — **trigger detection** (which word signals an event of which
type) and **argument extraction** (which mentions fill which roles) — with
the same regime split as the rest of the construction package: a trigger
lexicon baseline and an LLM-grounded extractor.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.kg.datasets import Dataset
from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import IRI
from repro.llm.model import SimulatedLLM


@dataclass(frozen=True)
class EventSchema:
    """An event type: a trigger vocabulary and named roles."""

    event_type: str
    triggers: Tuple[str, ...]
    roles: Tuple[str, ...]


@dataclass
class Event:
    """One extracted event instance."""

    event_type: str
    trigger: str
    arguments: Dict[str, str] = field(default_factory=dict)

    def key(self) -> Tuple[str, Tuple[Tuple[str, str], ...]]:
        """Identity for scoring: (type, sorted arguments); trigger word excluded."""
        return (self.event_type, tuple(sorted(self.arguments.items())))


#: Film-domain event schemas used by the generated corpus.
MOVIE_EVENT_SCHEMAS: List[EventSchema] = [
    EventSchema("Premiere", ("premiered", "debuted", "opened"),
                ("film", "year")),
    EventSchema("Casting", ("cast", "signed", "recruited"),
                ("film", "actor")),
    EventSchema("Award", ("won", "received"),
                ("film", "award")),
]


@dataclass
class AnnotatedEventSentence:
    """A generated sentence with its gold events."""

    text: str
    events: List[Event]


def generate_event_corpus(dataset: Dataset, n_sentences: int = 40,
                          seed: int = 0) -> List[AnnotatedEventSentence]:
    """Event-annotated sentences derived from the movie KG.

    Each sentence realizes one schema with arguments drawn from the graph,
    so trigger, type, and role fillers are all gold by construction.
    """
    from repro.kg.datasets import SCHEMA
    rng = random.Random(seed)
    kg = dataset.kg
    movies = [IRI(m) for m in dataset.metadata["movies"]]
    out: List[AnnotatedEventSentence] = []
    while len(out) < n_sentences and movies:
        movie = movies[rng.randrange(len(movies))]
        title = kg.label(movie)
        schema = MOVIE_EVENT_SCHEMAS[len(out) % len(MOVIE_EVENT_SCHEMAS)]
        trigger = schema.triggers[rng.randrange(len(schema.triggers))]
        if schema.event_type == "Premiere":
            year = kg.store.value(movie, SCHEMA.releaseYear)
            if year is None:
                continue
            text = f"{title} {trigger} in {year.lexical}."
            event = Event(schema.event_type, trigger,
                          {"film": title, "year": year.lexical})
        elif schema.event_type == "Casting":
            actors = kg.store.objects(movie, SCHEMA.starring)
            if not actors:
                continue
            actor = kg.label(actors[rng.randrange(len(actors))])
            text = f"The studio {trigger} {actor} for {title}."
            event = Event(schema.event_type, trigger,
                          {"film": title, "actor": actor})
        else:  # Award
            text = f"{title} {trigger} the Golden Reel award."
            event = Event(schema.event_type, trigger,
                          {"film": title, "award": "Golden Reel"})
        out.append(AnnotatedEventSentence(text=text, events=[event]))
    return out


class TriggerLexiconExtractor:
    """Baseline: trigger dictionary + nearest-capitalized-run arguments."""

    def __init__(self, schemas: Sequence[EventSchema] = MOVIE_EVENT_SCHEMAS):
        self.schemas = list(schemas)
        self._trigger_map = {t: s for s in self.schemas for t in s.triggers}

    def extract(self, sentence: str) -> List[Event]:
        """Trigger-dictionary detection with positional role filling."""
        tokens = sentence.rstrip(".").split()
        events: List[Event] = []
        for position, token in enumerate(tokens):
            schema = self._trigger_map.get(token.lower())
            if schema is None:
                continue
            arguments: Dict[str, str] = {}
            runs = _capitalized_runs(sentence)
            # Crude role filling: first run before the trigger is the film;
            # the first thing after fills the next role.
            trigger_offset = sentence.find(token)
            before = [r for r in runs if sentence.find(r) < trigger_offset]
            after = [r for r in runs if sentence.find(r) > trigger_offset]
            if "film" in schema.roles and before:
                arguments["film"] = before[-1]
            for role in schema.roles:
                if role in arguments:
                    continue
                if role == "year":
                    match = re.search(r"\b(1[89]\d\d|20\d\d)\b", sentence)
                    if match:
                        arguments[role] = match.group(1)
                elif after:
                    arguments[role] = after.pop(0)
            events.append(Event(schema.event_type, token.lower(), arguments))
        return events


class LLMEventExtractor(TriggerLexiconExtractor):
    """LLM-grounded extraction: arguments resolved via the mention lexicon.

    Trigger detection reuses the lexicon; role filling uses the backbone's
    entity grounding (so multi-word names resolve exactly) plus type
    constraints (a ``film`` role must ground to a Movie, an ``actor`` role
    to an Actor), which removes the baseline's boundary and role-confusion
    errors.
    """

    def __init__(self, llm: SimulatedLLM, kg: KnowledgeGraph,
                 schemas: Sequence[EventSchema] = MOVIE_EVENT_SCHEMAS):
        super().__init__(schemas)
        self.llm = llm
        self.kg = kg

    _ROLE_TYPE = {"film": "Movie", "actor": "Actor"}

    def extract(self, sentence: str) -> List[Event]:
        """Trigger detection + LLM-grounded, type-constrained role filling."""
        events = []
        tokens = sentence.rstrip(".").split()
        mentions = self.llm.find_mentions(sentence)
        for token in tokens:
            schema = self._trigger_map.get(token.lower())
            if schema is None:
                continue
            arguments: Dict[str, str] = {}
            for role in schema.roles:
                wanted_type = self._ROLE_TYPE.get(role)
                if role == "year":
                    match = re.search(r"\b(1[89]\d\d|20\d\d)\b", sentence)
                    if match:
                        arguments[role] = match.group(1)
                    continue
                if role == "award":
                    match = re.search(r"the ([A-Z][\w ]+?) award", sentence)
                    if match:
                        arguments[role] = match.group(1)
                    continue
                for mention in mentions:
                    if mention.iri is None:
                        continue
                    if wanted_type is not None:
                        types = {self.kg.label(t)
                                 for t in self.kg.types(mention.iri)}
                        if wanted_type not in types:
                            continue
                    if mention.label in arguments.values():
                        continue
                    arguments[role] = mention.label
                    break
            events.append(Event(schema.event_type, token.lower(), arguments))
        return events


def evaluate_events(extractor, sentences: Sequence[AnnotatedEventSentence]
                    ) -> Dict[str, float]:
    """Micro P/R/F1 over full events (type + all arguments must match)."""
    tp = fp = fn = 0
    for sentence in sentences:
        predicted = {e.key() for e in extractor.extract(sentence.text)}
        gold = {e.key() for e in sentence.events}
        tp += len(predicted & gold)
        fp += len(predicted - gold)
        fn += len(gold - predicted)
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return {"precision": precision, "recall": recall, "f1": f1}


def _capitalized_runs(sentence: str) -> List[str]:
    runs: List[str] = []
    current: List[str] = []
    for token in re.findall(r"[A-Za-z0-9'-]+", sentence):
        if token[0].isupper():
            current.append(token)
        else:
            if current:
                runs.append(" ".join(current))
                current = []
    if current:
        runs.append(" ".join(current))
    return runs
