"""Zero-shot temporal relation extraction (survey §2.1.3, after Yuan et
al. [94]).

The survey's reading of that study: ChatGPT grasps complex temporal
relations zero-shot, *"but also noted its limitations in consistency and
handling long-dependency relations."* This module reproduces both halves:

* :class:`CueWordTemporalExtractor` — regex baseline: maps "before"/"after"
  cue words to an order, in surface order — wrong whenever the sentence
  inverts the clause order ("After Y came out, X premiered").
* :class:`ZeroShotTemporalExtractor` — the LLM path: grounds both event
  mentions, understands clause inversion, but degrades as the token
  distance between the two mentions grows (the long-dependency weakness),
  with a skill-scaled error rate.
* :class:`KnowledgeGroundedTemporalExtractor` — LLM + KG cooperation: the
  release years in the KG arbitrate, eliminating the long-dependency
  failures (the fix the survey's framing implies).
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.kg.datasets import Dataset, SCHEMA
from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import IRI
from repro.llm.model import SimulatedLLM, _stable_unit


@dataclass(frozen=True)
class TemporalRelation:
    """``earlier`` happened before ``later``."""

    earlier: str
    later: str


@dataclass
class AnnotatedTemporalSentence:
    """A sentence with its gold temporal relation and dependency length."""

    text: str
    gold: TemporalRelation
    dependency_tokens: int      # tokens between the two event mentions
    inverted: bool              # clause order opposite to temporal order


_FILLER = (" which critics praised for its ambitious photography and its"
           " remarkable ensemble cast,")


def generate_temporal_corpus(dataset: Dataset, n_sentences: int = 40,
                             seed: int = 0,
                             long_fraction: float = 0.5
                             ) -> List[AnnotatedTemporalSentence]:
    """Sentences about movie release order with controlled dependency length.

    Half the long-dependency sentences stuff a relative clause between the
    two mentions; ``inverted`` sentences phrase the later event first.
    """
    rng = random.Random(seed)
    kg = dataset.kg
    movies = []
    for movie_value in dataset.metadata["movies"]:
        movie = IRI(movie_value)
        year = kg.store.value(movie, SCHEMA.releaseYear)
        if year is not None:
            movies.append((movie, int(year.lexical)))
    movies.sort(key=lambda pair: (pair[1], pair[0].value))
    out: List[AnnotatedTemporalSentence] = []
    while len(out) < n_sentences and len(movies) >= 2:
        a, year_a = movies[rng.randrange(len(movies))]
        b, year_b = movies[rng.randrange(len(movies))]
        if a == b or year_a == year_b:
            continue
        if year_a > year_b:
            (a, year_a), (b, year_b) = (b, year_b), (a, year_a)
        earlier, later = kg.label(a), kg.label(b)
        long_dependency = rng.random() < long_fraction
        inverted = rng.random() < 0.5
        filler = _FILLER if long_dependency else ""
        if inverted:
            text = f"After {earlier}{filler} premiered, {later} opened."
        else:
            text = f"{earlier}{filler} premiered before {later} opened."
        between = text[text.index(earlier) + len(earlier):]
        gap = between[:between.index(later)]
        out.append(AnnotatedTemporalSentence(
            text=text, gold=TemporalRelation(earlier=earlier, later=later),
            dependency_tokens=len(gap.split()), inverted=inverted))
    return out


class CueWordTemporalExtractor:
    """Regex baseline: cue word + surface order of the two mentions.

    Correct for "X ... before Y", systematically wrong for the inverted
    "After X ..., Y" construction — it has no notion of clause structure.
    """

    def extract(self, sentence: str) -> Optional[TemporalRelation]:
        """First-mention-is-earlier heuristic, flipped only by 'before'."""
        mentions = _title_mentions(sentence)
        if len(mentions) < 2:
            return None
        first, second = mentions[0], mentions[1]
        lowered = sentence.lower()
        if "before" in lowered:
            return TemporalRelation(earlier=first, later=second)
        # The naive reading of "after": the thing after the cue came first —
        # but the baseline cannot see which clause the cue attaches to, so
        # it just keeps surface order.
        return TemporalRelation(earlier=second, later=first)


class ZeroShotTemporalExtractor:
    """LLM zero-shot extraction with the long-dependency degradation."""

    def __init__(self, llm: SimulatedLLM, long_threshold: int = 8):
        self.llm = llm
        self.long_threshold = long_threshold

    def extract(self, sentence: str) -> Optional[TemporalRelation]:
        """Ground both mentions, read the clause structure, with distance-
        scaled error (the Yuan et al. finding)."""
        mentions = [m for m in self.llm.find_mentions(sentence)
                    if m.iri is not None]
        if len(mentions) < 2:
            return None
        first, second = mentions[0], mentions[1]
        lowered = sentence.lower()
        # Clause reading: "after X ..." puts X earlier even though a naive
        # surface reading would not.
        if lowered.startswith("after"):
            relation = TemporalRelation(earlier=first.label, later=second.label)
        elif "before" in lowered:
            relation = TemporalRelation(earlier=first.label, later=second.label)
        elif "after" in lowered:
            relation = TemporalRelation(earlier=second.label, later=first.label)
        else:
            return None
        # Long-dependency degradation: the further apart the mentions, the
        # likelier the model swaps the arguments.
        gap_tokens = len(sentence[first.end:second.start].split())
        error = (1.0 - self.llm.config.skill) * 0.4
        if gap_tokens > self.long_threshold:
            error = min(0.9, error + 0.05 * (gap_tokens - self.long_threshold))
        if _stable_unit(str(self.llm.config.seed), "temporal", sentence) < error:
            relation = TemporalRelation(earlier=relation.later,
                                        later=relation.earlier)
        return relation


class KnowledgeGroundedTemporalExtractor(ZeroShotTemporalExtractor):
    """LLM extraction with KG release years as the arbiter.

    When both events carry a year in the KG, the graph decides the order —
    long-dependency errors cannot survive the check.
    """

    def __init__(self, llm: SimulatedLLM, kg: KnowledgeGraph,
                 long_threshold: int = 8):
        super().__init__(llm, long_threshold=long_threshold)
        self.kg = kg

    def extract(self, sentence: str) -> Optional[TemporalRelation]:
        """Zero-shot extraction, then a KG year check that can flip it."""
        relation = super().extract(sentence)
        if relation is None:
            return None
        earlier_year = self._year(relation.earlier)
        later_year = self._year(relation.later)
        if earlier_year is not None and later_year is not None and \
                earlier_year > later_year:
            return TemporalRelation(earlier=relation.later,
                                    later=relation.earlier)
        return relation

    def _year(self, label: str) -> Optional[int]:
        entities = self.kg.find_by_label(label)
        if not entities:
            return None
        year = self.kg.store.value(entities[0], SCHEMA.releaseYear)
        return int(year.lexical) if year is not None else None


def evaluate_temporal(extractor,
                      sentences: Sequence[AnnotatedTemporalSentence]
                      ) -> Dict[str, float]:
    """Accuracy overall and bucketed into short/long dependency spans."""
    buckets = {"all": [0, 0], "short": [0, 0], "long": [0, 0]}
    for sentence in sentences:
        predicted = extractor.extract(sentence.text)
        correct = predicted == sentence.gold
        bucket = "long" if sentence.dependency_tokens > 8 else "short"
        for key in ("all", bucket):
            buckets[key][0] += int(correct)
            buckets[key][1] += 1
    return {
        key: (hits / total if total else 0.0)
        for key, (hits, total) in buckets.items()
    }


def _title_mentions(sentence: str) -> List[str]:
    """Movie-title-shaped mentions: maximal capitalized runs of ≥2 words."""
    runs: List[str] = []
    current: List[str] = []
    for token in re.findall(r"[A-Za-z0-9'-]+", sentence):
        if token[0].isupper():
            current.append(token)
        else:
            if len(current) >= 2:
                runs.append(" ".join(current))
            current = []
    if len(current) >= 2:
        runs.append(" ".join(current))
    return runs
