"""Entity extraction (survey §2.1.2).

Three regimes from the survey:

* :class:`GazetteerNER` — the classical baseline: exact dictionary matching
  against a fixed gazetteer (no generalization, no type knowledge beyond the
  dictionary).
* :class:`PromptNER` — Ashok & Lipton's recipe: a backbone LLM + a prompt
  with the entity-type inventory, optional type *definitions*, and a small
  set of in-domain examples.
* :class:`InstructionTunedNER` — UniversalNER-style targeted distillation:
  the backbone is first fine-tuned on instruction data for the task, then
  prompted zero-shot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.durability import fast_forward_faults, fault_schedule_cursor
from repro.core.executor import ParallelExecutor, chunked
from repro.core.observability import NULL_OBS, resolve_obs
from repro.llm import prompts as P
from repro.llm.model import SimulatedLLM, complete_all
from repro.text.corpus import AnnotatedSentence


@dataclass
class NERResult:
    """Entities extracted from one sentence."""

    sentence: str
    entities: List[Tuple[str, str]]  # (mention, type)


class GazetteerNER:
    """Dictionary-lookup NER: exact longest-match against a gazetteer.

    The gazetteer maps lowercase mention → type. This is the no-LLM baseline
    whose recall collapses on mentions absent from the dictionary.
    """

    def __init__(self, gazetteer: Dict[str, str]):
        self.gazetteer = {k.lower(): v for k, v in gazetteer.items()}
        self._max_words = max((len(k.split()) for k in self.gazetteer), default=1)

    @classmethod
    def from_training_data(cls, sentences: Sequence[AnnotatedSentence],
                           coverage: float = 1.0) -> "GazetteerNER":
        """Build the dictionary from annotated sentences (the supervised
        resource a rule-based system would have). ``coverage`` < 1 keeps a
        deterministic prefix of entries, simulating an incomplete lexicon."""
        gazetteer: Dict[str, str] = {}
        for sentence in sentences:
            for mention, etype in sentence.entities:
                gazetteer.setdefault(mention.lower(), etype)
        keep = int(len(gazetteer) * coverage)
        items = sorted(gazetteer.items())[:keep]
        return cls(dict(items))

    def extract(self, sentence: str, entity_types: Sequence[str] = ()) -> NERResult:
        """Longest-match scan; optional filter to the requested types."""
        words = sentence.split()
        found: List[Tuple[str, str]] = []
        i = 0
        while i < len(words):
            matched = False
            for length in range(min(self._max_words, len(words) - i), 0, -1):
                candidate = " ".join(words[i:i + length]).strip(".,!?;:")
                etype = self.gazetteer.get(candidate.lower())
                if etype is not None:
                    if not entity_types or etype in entity_types:
                        found.append((candidate, etype))
                    i += length
                    matched = True
                    break
            if not matched:
                i += 1
        return NERResult(sentence=sentence, entities=found)

    def extract_batch(self, sentences: Sequence[str],
                      entity_types: Sequence[str] = (),
                      batch_size: Optional[int] = None,
                      executor: Optional[ParallelExecutor] = None
                      ) -> List[NERResult]:
        """Extract from many sentences (pure per-sentence scan, fanned out)."""
        executor = executor or ParallelExecutor()
        return executor.map_batched(
            list(sentences),
            lambda s: self.extract(s, entity_types=entity_types),
            batch_size)


class PromptNER:
    """Prompt-based NER over a backbone LLM (PromptNER).

    Components, as in the paper: the backbone, the entity-type inventory,
    optional natural-language type definitions, and k in-context examples.
    """

    def __init__(self, llm: SimulatedLLM, entity_types: Sequence[str],
                 definitions: Optional[Dict[str, str]] = None,
                 examples: Sequence[AnnotatedSentence] = (), obs=None):
        self.llm = llm
        self.entity_types = list(entity_types)
        self.definitions = definitions
        self.examples = [(s.text, s.entities) for s in examples]
        self.obs = resolve_obs(obs)
        if self.obs.enabled:
            self.obs.bind_llm(self.llm)

    def extract(self, sentence: str) -> NERResult:
        """One LLM call; the response is parsed into typed mentions."""
        prompt = P.ner_prompt(sentence, self.entity_types,
                              examples=self.examples,
                              definitions=self.definitions)
        response = self.llm.complete(prompt)
        return NERResult(sentence=sentence,
                         entities=P.parse_ner_response(response.text))

    def _prompt_for(self, sentence: str) -> str:
        return P.ner_prompt(sentence, self.entity_types,
                            examples=self.examples,
                            definitions=self.definitions)

    def extract_batch(self, sentences: Sequence[str],
                      batch_size: Optional[int] = None,
                      executor: Optional[ParallelExecutor] = None,
                      checkpoint=None) -> List[NERResult]:
        """Batched extraction: one ``complete_batch`` per chunk.

        Result-identical to ``[extract(s) for s in sentences]``; identical
        sentences share one completion inside a chunk (the model's batch
        dedup), and response parsing fans out across the executor.
        ``checkpoint`` journals each finished chunk so a killed run
        resumes at the first unfinished sentence with identical results.
        """
        return _extract_ner_batch(self, sentences, batch_size, executor,
                                  checkpoint=checkpoint)


class InstructionTunedNER:
    """Distilled/instruction-tuned NER (UniversalNER-style).

    ``distill`` fine-tunes the backbone on the training split (persistently
    lowering its task error rate), after which extraction is zero-shot.
    """

    def __init__(self, llm: SimulatedLLM, entity_types: Sequence[str],
                 obs=None):
        self.llm = llm
        self.entity_types = list(entity_types)
        self._distilled = False
        self.obs = resolve_obs(obs)
        if self.obs.enabled:
            self.obs.bind_llm(self.llm)

    def distill(self, training_sentences: Sequence[AnnotatedSentence]) -> None:
        """Targeted distillation: instruction-tune the backbone for NER."""
        self.llm.fine_tune("ner", len(training_sentences))
        self._distilled = True

    def extract(self, sentence: str) -> NERResult:
        """Zero-shot prompt against the (ideally distilled) backbone."""
        prompt = P.ner_prompt(sentence, self.entity_types)
        response = self.llm.complete(prompt)
        return NERResult(sentence=sentence,
                         entities=P.parse_ner_response(response.text))

    def _prompt_for(self, sentence: str) -> str:
        return P.ner_prompt(sentence, self.entity_types)

    def extract_batch(self, sentences: Sequence[str],
                      batch_size: Optional[int] = None,
                      executor: Optional[ParallelExecutor] = None,
                      checkpoint=None) -> List[NERResult]:
        """Batched zero-shot extraction (see :meth:`PromptNER.extract_batch`)."""
        return _extract_ner_batch(self, sentences, batch_size, executor,
                                  checkpoint=checkpoint)


def _extract_ner_batch(extractor, sentences: Sequence[str],
                       batch_size: Optional[int],
                       executor: Optional[ParallelExecutor],
                       checkpoint=None) -> List[NERResult]:
    """Shared batched NER loop: prompt-build → one batch completion per
    chunk → parallel parse. All LLM traffic flows through ``complete_all``
    on the calling thread, so fault schedules and cache evolution do not
    depend on the executor's worker count.

    With a ``checkpoint``, each chunk's entities are journaled together
    with the LLM fault cursor: resuming restores the committed prefix,
    fast-forwards the fault schedule, and re-runs only unfinished chunks —
    final results are identical to an uninterrupted run."""
    obs = getattr(extractor, "obs", NULL_OBS)
    executor = executor or ParallelExecutor(obs=obs)
    sentences = list(sentences)
    results: List[NERResult] = []
    if checkpoint is not None:
        checkpoint.ensure_meta("ner:extract_batch")
        resume = checkpoint.resume_prefix()
        restored = resume.values[:len(sentences)]
        results.extend(
            NERResult(sentence=s, entities=[tuple(e) for e in value])
            for s, value in zip(sentences, restored))
        fast_forward_faults(extractor.llm, resume.llm_calls)
    with obs.span("ner:extract_batch", sentences=len(sentences)):
        for chunk in chunked(sentences[len(results):], batch_size):
            prompts = executor.map(chunk, extractor._prompt_for)
            responses = complete_all(extractor.llm, prompts)
            entities = executor.map(responses,
                                    lambda r: P.parse_ner_response(r.text))
            results.extend(NERResult(sentence=s, entities=e)
                           for s, e in zip(chunk, entities))
            if checkpoint is not None:
                checkpoint.record_chunk(
                    [[list(pair) for pair in e] for e in entities],
                    llm_calls=fault_schedule_cursor(extractor.llm))
    return results


def evaluate_ner(extractor, sentences: Sequence[AnnotatedSentence],
                 typed: bool = True, batch_size: Optional[int] = None,
                 executor: Optional[ParallelExecutor] = None
                 ) -> Dict[str, float]:
    """Micro P/R/F1 of an extractor over annotated sentences.

    ``typed=False`` scores mention spans only (type-agnostic).
    ``batch_size``/``executor`` route extraction through the extractor's
    batched entry point when it has one; scores are identical to the
    sequential default (the batch paths are result-identical).
    """
    texts = [sentence.text for sentence in sentences]
    batch = getattr(extractor, "extract_batch", None)
    if callable(batch) and (batch_size is not None or executor is not None):
        predictions = batch(texts, batch_size=batch_size, executor=executor)
    else:
        predictions = [extractor.extract(text) for text in texts]
    tp = fp = fn = 0
    for sentence, predicted in zip(sentences, predictions):
        if typed:
            pred_set = {(m.lower(), t) for m, t in predicted.entities}
            gold_set = {(m.lower(), t) for m, t in sentence.entities}
        else:
            pred_set = {m.lower() for m, _ in predicted.entities}
            gold_set = {m.lower() for m, _ in sentence.entities}
        tp += len(pred_set & gold_set)
        fp += len(pred_set - gold_set)
        fn += len(gold_set - pred_set)
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return {"precision": precision, "recall": recall, "f1": f1}
