"""Entity and ontology alignment (survey §2.1.1/§2.1.2, after Lippolis et
al. and Baldazzi et al.).

:class:`EntityAligner` matches instances across two KGs by LLM-embedding
similarity over labels + neighbourhood evidence, optionally verified by an
LLM fact-check pass. :class:`OntologyAligner` is the neurosymbolic recipe:
semantic (embedding) candidate generation, then a symbolic coherence filter
that requires aligned classes to have alignable parents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.kg.graph import KnowledgeGraph
from repro.kg.ontology import Ontology
from repro.kg.triples import IRI
from repro.llm.embedding import TextEncoder, cosine_similarity
from repro.llm.model import SimulatedLLM
from repro.vector import VectorIndex


@dataclass(frozen=True)
class Alignment:
    """One proposed correspondence with its confidence."""

    left: IRI
    right: IRI
    score: float


class EntityAligner:
    """Instance matching across two KGs.

    Candidates come from embedding similarity of labels; each candidate's
    score is boosted by shared neighbourhood labels (a structural signal),
    and matches below ``threshold`` are discarded.
    """

    def __init__(self, encoder: Optional[TextEncoder] = None,
                 threshold: float = 0.55):
        self.encoder = encoder or TextEncoder(dim=96)
        self.threshold = threshold

    def align(self, left: KnowledgeGraph, right: KnowledgeGraph,
              candidates_per_entity: int = 3) -> List[Alignment]:
        """Greedy one-to-one alignment, highest scores first."""
        right_entities = [e for e in right.store.entities()
                          if right.label(e) and not _is_schema(e)]
        index = VectorIndex(dim=self.encoder.dim)
        for entity in right_entities:
            index.add(entity, self.encoder.encode(right.label(entity)))
        proposals: List[Alignment] = []
        for entity in left.store.entities():
            if _is_schema(entity):
                continue
            label = left.label(entity)
            if not label:
                continue
            for hit in index.search(self.encoder.encode(label),
                                    k=candidates_per_entity):
                score = hit.score
                score += 0.15 * self._neighbourhood_overlap(
                    left, entity, right, hit.key)
                if score >= self.threshold:
                    proposals.append(Alignment(entity, hit.key, min(score, 1.0)))
        proposals.sort(key=lambda a: (-a.score, a.left.value, a.right.value))
        used_left: set = set()
        used_right: set = set()
        final: List[Alignment] = []
        for proposal in proposals:
            if proposal.left in used_left or proposal.right in used_right:
                continue
            used_left.add(proposal.left)
            used_right.add(proposal.right)
            final.append(proposal)
        return final

    def _neighbourhood_overlap(self, left: KnowledgeGraph, a: IRI,
                               right: KnowledgeGraph, b: IRI) -> float:
        left_labels = {left.label(n).lower() for _, n, _ in left.neighbours(a)
                       if isinstance(n, IRI)}
        right_labels = {right.label(n).lower() for _, n, _ in right.neighbours(b)
                        if isinstance(n, IRI)}
        if not left_labels or not right_labels:
            return 0.0
        return len(left_labels & right_labels) / len(left_labels | right_labels)

    def verify_with_llm(self, alignments: Sequence[Alignment],
                        left: KnowledgeGraph, right: KnowledgeGraph,
                        llm: SimulatedLLM) -> List[Alignment]:
        """LLM verification pass: keep pairs whose labels the model deems
        the same entity (simulated as high lexical agreement + type match)."""
        from repro.llm import prompts as P
        kept = []
        for alignment in alignments:
            left_label = left.label(alignment.left)
            right_label = right.label(alignment.right)
            statement = f"{left_label} same as {right_label}."
            context = f"{left_label} same as {right_label}." \
                if left_label.lower() == right_label.lower() else \
                f"{left_label} and {right_label} are different entities."
            verdict = P.parse_fact_check_response(
                llm.complete(P.fact_check_prompt(statement, context=context)).text)
            if verdict is True:
                kept.append(alignment)
        return kept


class OntologyAligner:
    """Neurosymbolic schema alignment (after Baldazzi et al.).

    Semantic stage: embed class/property labels (optionally with their
    descriptions) and propose nearest neighbours. Symbolic stage: a class
    correspondence survives only if the parents of the two classes are
    themselves alignable (or both are roots) — the ontological-reasoning
    filter that keeps the flexible LLM matcher domain-coherent.
    """

    def __init__(self, encoder: Optional[TextEncoder] = None,
                 threshold: float = 0.6):
        self.encoder = encoder or TextEncoder(dim=96)
        self.threshold = threshold

    def align(self, left: Ontology, right: Ontology) -> List[Alignment]:
        """Class + property correspondences passing both stages."""
        candidate_classes = self._semantic_candidates(
            {iri: self._class_text(left, iri) for iri in left.classes},
            {iri: self._class_text(right, iri) for iri in right.classes},
        )
        accepted: Dict[IRI, IRI] = {}
        # Iterate to fixpoint: parent alignment may depend on other pairs.
        changed = True
        while changed:
            changed = False
            for alignment in candidate_classes:
                if alignment.left in accepted:
                    continue
                if self._parents_coherent(left, right, alignment, accepted,
                                          candidate_classes):
                    accepted[alignment.left] = alignment.right
                    changed = True
        class_alignments = [a for a in candidate_classes
                            if accepted.get(a.left) == a.right]
        property_alignments = self._semantic_candidates(
            {iri: p.label for iri, p in left.properties.items()},
            {iri: p.label for iri, p in right.properties.items()},
        )
        return class_alignments + property_alignments

    def _class_text(self, onto: Ontology, iri: IRI) -> str:
        cls = onto.classes[iri]
        return f"{cls.label} {cls.description or ''}".strip()

    def _semantic_candidates(self, left: Dict[IRI, str],
                             right: Dict[IRI, str]) -> List[Alignment]:
        out: List[Alignment] = []
        right_vectors = {iri: self.encoder.encode(text)
                         for iri, text in right.items()}
        for left_iri, text in sorted(left.items(), key=lambda kv: kv[0].value):
            query = self.encoder.encode(text)
            best: Optional[Tuple[float, IRI]] = None
            for right_iri, vector in right_vectors.items():
                score = cosine_similarity(query, vector)
                if best is None or score > best[0]:
                    best = (score, right_iri)
            if best is not None and best[0] >= self.threshold:
                out.append(Alignment(left_iri, best[1], best[0]))
        return out

    def _parents_coherent(self, left: Ontology, right: Ontology,
                          alignment: Alignment, accepted: Dict[IRI, IRI],
                          candidates: Sequence[Alignment]) -> bool:
        left_parents = left.classes[alignment.left].parents
        right_parents = right.classes[alignment.right].parents
        if not left_parents and not right_parents:
            return True
        if not left_parents or not right_parents:
            # Depth mismatch is tolerated when either side is a root.
            return True
        candidate_map = {(c.left, c.right) for c in candidates}
        for left_parent in left_parents:
            for right_parent in right_parents:
                if accepted.get(left_parent) == right_parent or \
                        (left_parent, right_parent) in candidate_map:
                    return True
        return False


def _is_schema(entity: IRI) -> bool:
    return "w3.org" in entity.value or "/schema/" in entity.value
