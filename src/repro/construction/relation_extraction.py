"""Relation extraction (survey §2.1.3), organized by learning regime.

* :class:`PatternRelationExtractor` — classical baseline: canonical relation
  phrases + an entity gazetteer; breaks on paraphrases.
* :class:`ZeroShotRelationExtractor` — bare prompting (the ChatGPT-style
  zero-shot setting the survey notes is inconsistent).
* :class:`FewShotICLRelationExtractor` — in-context learning with k fixed
  demonstrations (Xu et al.'s ICL strategy).
* :class:`RetrievedDemonstrationExtractor` — GPT-RE: demonstrations are
  retrieved per test instance by embedding similarity, which raises the
  relevance of the in-context evidence.
* :class:`SupervisedFineTunedExtractor` — REBEL/DeepStruct regime: the
  backbone is fine-tuned on linearized triplets, then prompted.
* :class:`NLIFilteredExtractor` — Li et al.'s NLI module: candidate triples
  are kept only when the sentence entails their verbalization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.durability import fast_forward_faults, fault_schedule_cursor
from repro.core.executor import ParallelExecutor, chunked
from repro.core.observability import NULL_OBS, resolve_obs
from repro.llm import prompts as P
from repro.llm.embedding import TextEncoder
from repro.llm.model import SimulatedLLM, complete_all
from repro.text.corpus import AnnotatedSentence
from repro.vector import VectorIndex

RelationTriple = Tuple[str, str, str]


@dataclass
class REResult:
    """Triples extracted from one sentence."""

    sentence: str
    triples: List[RelationTriple]


class PatternRelationExtractor:
    """Canonical-phrase pattern matching with an entity gazetteer."""

    def __init__(self, relation_phrases: Dict[str, str],
                 entity_gazetteer: Sequence[str]):
        """``relation_phrases`` maps surface phrase → relation label;
        ``entity_gazetteer`` lists known entity mentions."""
        self.relation_phrases = {k.lower(): v for k, v in relation_phrases.items()}
        self.entities = sorted({e.lower() for e in entity_gazetteer},
                               key=len, reverse=True)

    @classmethod
    def from_training_data(cls, sentences: Sequence[AnnotatedSentence]
                           ) -> "PatternRelationExtractor":
        """Harvest phrases and the gazetteer from non-paraphrase training
        sentences (a rule writer would do exactly this)."""
        phrases: Dict[str, str] = {}
        entities: List[str] = []
        for sentence in sentences:
            for mention, _ in sentence.entities:
                entities.append(mention)
            if sentence.is_paraphrase:
                continue
            for subject, relation, obj in sentence.triples:
                text = sentence.text
                start = text.find(subject)
                end = text.find(obj)
                if 0 <= start < end:
                    between = text[start + len(subject):end].strip().rstrip(".")
                    if 0 < len(between.split()) <= 4:
                        phrases.setdefault(between.lower(), relation)
        return cls(phrases, entities)

    def extract(self, sentence: str) -> REResult:
        """Find ``entity <phrase> entity`` occurrences.

        Entity spans come from the gazetteer plus the classic rule-based
        fallback of maximal capitalized-token runs, so unseen names are
        still detected; paraphrased relation phrasing remains the failure
        mode, which is the point of this baseline.
        """
        lowered = sentence.lower()
        spans: List[Tuple[int, int, str]] = []
        taken: List[Tuple[int, int]] = []
        for entity in self.entities:
            start = 0
            while True:
                index = lowered.find(entity, start)
                if index < 0:
                    break
                span = (index, index + len(entity))
                if not any(s < span[1] and span[0] < e for s, e in taken):
                    spans.append((span[0], span[1], sentence[span[0]:span[1]]))
                    taken.append(span)
                start = index + 1
        for start, end in _capitalized_runs(sentence):
            if not any(s < end and start < e for s, e in taken):
                spans.append((start, end, sentence[start:end]))
                taken.append((start, end))
        spans.sort()
        triples: List[RelationTriple] = []
        for i, (s_start, s_end, subject) in enumerate(spans):
            for o_start, o_end, obj in spans[i + 1:]:
                between = lowered[s_end:o_start].strip().rstrip(".").strip()
                relation = self.relation_phrases.get(between)
                if relation is not None:
                    triples.append((subject, relation, obj))
        return REResult(sentence=sentence, triples=triples)

    def extract_batch(self, sentences: Sequence[str],
                      batch_size: Optional[int] = None,
                      executor: Optional[ParallelExecutor] = None
                      ) -> List[REResult]:
        """Extract from many sentences (pure per-sentence scan, fanned out)."""
        executor = executor or ParallelExecutor()
        return executor.map_batched(list(sentences), self.extract, batch_size)


def _extract_re_batch(extractor, sentences: Sequence[str],
                      batch_size: Optional[int],
                      executor: Optional[ParallelExecutor],
                      checkpoint=None) -> List[REResult]:
    """Shared batched RE loop: prompt-build → one batch completion per
    chunk → parallel parse. All LLM traffic flows through ``complete_all``
    on the calling thread (worker-count-independent fault/cache order).

    With a ``checkpoint``, each chunk's triples are journaled with the LLM
    fault cursor; a resumed run restores the committed prefix and re-runs
    only unfinished chunks, producing identical results."""
    obs = getattr(extractor, "obs", NULL_OBS)
    executor = executor or ParallelExecutor(obs=obs)
    sentences = list(sentences)
    results: List[REResult] = []
    if checkpoint is not None:
        checkpoint.ensure_meta("re:extract_batch")
        resume = checkpoint.resume_prefix()
        restored = resume.values[:len(sentences)]
        results.extend(
            REResult(sentence=s, triples=[tuple(t) for t in value])
            for s, value in zip(sentences, restored))
        fast_forward_faults(extractor.llm, resume.llm_calls)
    with obs.span("re:extract_batch", sentences=len(sentences)):
        for chunk in chunked(sentences[len(results):], batch_size):
            prompts = executor.map(chunk, extractor._prompt_for)
            responses = complete_all(extractor.llm, prompts)
            triples = executor.map(
                responses, lambda r: P.parse_relation_response(r.text))
            results.extend(REResult(sentence=s, triples=t)
                           for s, t in zip(chunk, triples))
            if checkpoint is not None:
                checkpoint.record_chunk(
                    [[list(triple) for triple in t] for t in triples],
                    llm_calls=fault_schedule_cursor(extractor.llm))
    return results


class ZeroShotRelationExtractor:
    """Bare LLM prompting with only the relation inventory."""

    def __init__(self, llm: SimulatedLLM, relations: Sequence[str], obs=None):
        self.llm = llm
        self.relations = list(relations)
        self.obs = resolve_obs(obs)
        if self.obs.enabled:
            self.obs.bind_llm(self.llm)

    def extract(self, sentence: str) -> REResult:
        """One LLM call; the response parses into (s, r, o) triples."""
        response = self.llm.complete(self._prompt_for(sentence))
        return REResult(sentence=sentence,
                        triples=P.parse_relation_response(response.text))

    def _prompt_for(self, sentence: str) -> str:
        return P.relation_extraction_prompt(sentence, self.relations)

    def extract_batch(self, sentences: Sequence[str],
                      batch_size: Optional[int] = None,
                      executor: Optional[ParallelExecutor] = None,
                      checkpoint=None) -> List[REResult]:
        """Batched extraction, result-identical to the ``extract`` loop;
        ``checkpoint`` makes a killed run resumable (see
        :func:`_extract_re_batch`)."""
        return _extract_re_batch(self, sentences, batch_size, executor,
                                 checkpoint=checkpoint)


class FewShotICLRelationExtractor:
    """In-context learning with a fixed demonstration set."""

    def __init__(self, llm: SimulatedLLM, relations: Sequence[str],
                 demonstrations: Sequence[AnnotatedSentence],
                 chain_of_thought: bool = False, obs=None):
        self.llm = llm
        self.relations = list(relations)
        self.demonstrations = [(s.text, s.triples) for s in demonstrations]
        self.chain_of_thought = chain_of_thought
        self.obs = resolve_obs(obs)
        if self.obs.enabled:
            self.obs.bind_llm(self.llm)

    def extract(self, sentence: str) -> REResult:
        """One LLM call; the response parses into (s, r, o) triples."""
        response = self.llm.complete(self._prompt_for(sentence))
        return REResult(sentence=sentence,
                        triples=P.parse_relation_response(response.text))

    def _prompt_for(self, sentence: str) -> str:
        return P.relation_extraction_prompt(
            sentence, self.relations, examples=self.demonstrations,
            chain_of_thought=self.chain_of_thought)

    def extract_batch(self, sentences: Sequence[str],
                      batch_size: Optional[int] = None,
                      executor: Optional[ParallelExecutor] = None,
                      checkpoint=None) -> List[REResult]:
        """Batched extraction, result-identical to the ``extract`` loop;
        ``checkpoint`` makes a killed run resumable (see
        :func:`_extract_re_batch`)."""
        return _extract_re_batch(self, sentences, batch_size, executor,
                                 checkpoint=checkpoint)


class RetrievedDemonstrationExtractor:
    """GPT-RE: per-instance demonstrations retrieved by similarity.

    A text encoder indexes the training sentences; at inference the k most
    similar ones become the in-context examples, so the demonstrations are
    maximally relevant to the test instance.
    """

    def __init__(self, llm: SimulatedLLM, relations: Sequence[str],
                 training_sentences: Sequence[AnnotatedSentence],
                 k: int = 4, encoder: Optional[TextEncoder] = None,
                 obs=None):
        self.llm = llm
        self.relations = list(relations)
        self.k = k
        self.encoder = encoder or TextEncoder(dim=96)
        self._pool = list(training_sentences)
        self._index = VectorIndex(dim=self.encoder.dim)
        for position, sentence in enumerate(self._pool):
            self._index.add(position, self.encoder.encode(sentence.text))
        self.obs = resolve_obs(obs)
        if self.obs.enabled:
            self.obs.bind_llm(self.llm)
            self.obs.bind_index("gptre.index", self._index)

    def retrieve(self, sentence: str) -> List[AnnotatedSentence]:
        """The k most similar training sentences."""
        hits = self._index.search(self.encoder.encode(sentence), k=self.k)
        return [self._pool[hit.key] for hit in hits]

    def retrieve_batch(self, sentences: Sequence[str]
                       ) -> List[List[AnnotatedSentence]]:
        """Demonstrations for many sentences, encoding queries batch-wise.

        Distinct sentences are encoded once through the vectorized
        :meth:`~repro.llm.embedding.TextEncoder.encode_batch` (token dedup
        across the whole batch), then searched individually.
        """
        sentences = list(sentences)
        first_row: Dict[str, int] = {}
        row_of = [first_row.setdefault(s, len(first_row)) for s in sentences]
        vectors = self.encoder.encode_batch(list(first_row))
        demos = [[self._pool[hit.key]
                  for hit in self._index.search(vectors[i], k=self.k)]
                 for i in range(len(first_row))]
        return [demos[row] for row in row_of]

    def extract(self, sentence: str) -> REResult:
        """One LLM call; the response parses into (s, r, o) triples."""
        response = self.llm.complete(self._prompt_for(sentence))
        return REResult(sentence=sentence,
                        triples=P.parse_relation_response(response.text))

    def _prompt_for(self, sentence: str) -> str:
        demonstrations = [(s.text, s.triples) for s in self.retrieve(sentence)]
        return P.relation_extraction_prompt(sentence, self.relations,
                                            examples=demonstrations)

    def extract_batch(self, sentences: Sequence[str],
                      batch_size: Optional[int] = None,
                      executor: Optional[ParallelExecutor] = None
                      ) -> List[REResult]:
        """Batched GPT-RE: chunk queries are embedded through
        ``encode_batch``, prompts are completed in one batch per chunk."""
        executor = executor or ParallelExecutor(obs=self.obs)
        sentences = list(sentences)
        results: List[REResult] = []
        for chunk in chunked(sentences, batch_size):
            demo_lists = self.retrieve_batch(chunk)
            prompts = [
                P.relation_extraction_prompt(
                    s, self.relations,
                    examples=[(d.text, d.triples) for d in demos])
                for s, demos in zip(chunk, demo_lists)]
            responses = complete_all(self.llm, prompts)
            triples = executor.map(
                responses, lambda r: P.parse_relation_response(r.text))
            results.extend(REResult(sentence=s, triples=t)
                           for s, t in zip(chunk, triples))
        return results


class SupervisedFineTunedExtractor:
    """Fine-tuned regime: triplet-linearization training, then prompting."""

    def __init__(self, llm: SimulatedLLM, relations: Sequence[str], obs=None):
        self.llm = llm
        self.relations = list(relations)
        self.trained_on = 0
        self.obs = resolve_obs(obs)
        if self.obs.enabled:
            self.obs.bind_llm(self.llm)

    def fit(self, training_sentences: Sequence[AnnotatedSentence]) -> None:
        """Fine-tune the backbone on linearized (sentence → triples) pairs.

        Besides lowering the task error rate, fine-tuning internalizes the
        paraphrase surface forms present in the training data — the concrete
        mechanism behind the supervised regime's recall advantage.
        """
        self.llm.fine_tune("relation extraction", len(training_sentences))
        phrase_pairs: List[Tuple[str, str]] = []
        for sentence in training_sentences:
            lowered = sentence.text.lower()
            for subject, relation, obj in sentence.triples:
                s_index = lowered.find(subject.lower())
                o_index = lowered.find(obj.lower())
                if 0 <= s_index and s_index + len(subject) < o_index:
                    between = sentence.text[s_index + len(subject):o_index]
                    between = between.strip().strip(",").strip()
                    if 0 < len(between.split()) <= 5:
                        phrase_pairs.append((between, relation))
        self.llm.learn_relation_phrases(phrase_pairs)
        self.trained_on = len(training_sentences)

    def extract(self, sentence: str) -> REResult:
        """One LLM call; the response parses into (s, r, o) triples."""
        response = self.llm.complete(self._prompt_for(sentence))
        return REResult(sentence=sentence,
                        triples=P.parse_relation_response(response.text))

    def _prompt_for(self, sentence: str) -> str:
        return P.relation_extraction_prompt(sentence, self.relations)

    def extract_batch(self, sentences: Sequence[str],
                      batch_size: Optional[int] = None,
                      executor: Optional[ParallelExecutor] = None,
                      checkpoint=None) -> List[REResult]:
        """Batched extraction, result-identical to the ``extract`` loop;
        ``checkpoint`` makes a killed run resumable (see
        :func:`_extract_re_batch`)."""
        return _extract_re_batch(self, sentences, batch_size, executor,
                                 checkpoint=checkpoint)


class NLIFilteredExtractor:
    """Wrap an extractor with an entailment filter (Li et al.).

    Each candidate triple is verbalized and checked against the sentence by
    the LLM's fact-verification behaviour; unsupported triples are dropped,
    trading recall for precision.
    """

    def __init__(self, base, llm: SimulatedLLM, obs=None):
        self.base = base
        self.llm = llm
        self.obs = resolve_obs(obs)
        if self.obs.enabled:
            self.obs.bind_llm(self.llm)

    def extract(self, sentence: str) -> REResult:
        """Extract with the base system, then keep only entailed triples."""
        result = self.base.extract(sentence)
        kept: List[RelationTriple] = []
        for subject, relation, obj in result.triples:
            statement = f"{subject} {relation} {obj}."
            response = self.llm.complete(
                P.fact_check_prompt(statement, context=sentence))
            verdict = P.parse_fact_check_response(response.text)
            if verdict is True:
                kept.append((subject, relation, obj))
        return REResult(sentence=sentence, triples=kept)

    def extract_batch(self, sentences: Sequence[str],
                      batch_size: Optional[int] = None,
                      executor: Optional[ParallelExecutor] = None
                      ) -> List[REResult]:
        """Batched extract-then-filter.

        Base extraction runs through the base system's batched path when it
        has one; the per-triple entailment checks across the whole chunk
        are then flattened into **one** fact-verification batch and
        regrouped per sentence. Verdicts (and kept triples) are identical
        to the sequential loop — each check prompt is a pure function of
        its (triple, sentence) pair.
        """
        executor = executor or ParallelExecutor(obs=self.obs)
        sentences = list(sentences)
        results: List[REResult] = []
        base_batch = getattr(self.base, "extract_batch", None)
        for chunk in chunked(sentences, batch_size):
            if callable(base_batch):
                base_results = base_batch(chunk, executor=executor)
            else:
                base_results = executor.map(chunk, self.base.extract)
            check_prompts: List[str] = []
            spans: List[int] = []
            for sentence, base_result in zip(chunk, base_results):
                spans.append(len(base_result.triples))
                for subject, relation, obj in base_result.triples:
                    statement = f"{subject} {relation} {obj}."
                    check_prompts.append(
                        P.fact_check_prompt(statement, context=sentence))
            responses = complete_all(self.llm, check_prompts)
            verdicts = executor.map(
                responses, lambda r: P.parse_fact_check_response(r.text))
            cursor = 0
            for sentence, base_result, span in zip(chunk, base_results, spans):
                kept = [triple for triple, verdict
                        in zip(base_result.triples,
                               verdicts[cursor:cursor + span])
                        if verdict is True]
                cursor += span
                results.append(REResult(sentence=sentence, triples=kept))
        return results


def _capitalized_runs(sentence: str) -> List[Tuple[int, int]]:
    """Maximal runs of capitalized words (and trailing digits) in a sentence,
    skipping a sentence-initial single word (likely just capitalization)."""
    import re
    runs: List[Tuple[int, int]] = []
    current: Optional[Tuple[int, int]] = None
    for match in re.finditer(r"[A-Za-z0-9'-]+", sentence):
        word = match.group()
        is_entity_word = word[0].isupper() or word.isdigit()
        if is_entity_word:
            if current is not None and sentence[current[1]:match.start()].strip() == "":
                current = (current[0], match.end())
            else:
                if current is not None:
                    runs.append(current)
                current = (match.start(), match.end())
        else:
            if current is not None:
                runs.append(current)
                current = None
    if current is not None:
        runs.append(current)
    return runs


def evaluate_relation_extraction(extractor,
                                 sentences: Sequence[AnnotatedSentence],
                                 batch_size: Optional[int] = None,
                                 executor: Optional[ParallelExecutor] = None
                                 ) -> Dict[str, float]:
    """Micro P/R/F1 over (subject, relation, object) triples.

    ``batch_size``/``executor`` route extraction through the extractor's
    batched entry point when it has one; scores are identical to the
    sequential default.
    """
    texts = [sentence.text for sentence in sentences]
    batch = getattr(extractor, "extract_batch", None)
    if callable(batch) and (batch_size is not None or executor is not None):
        predictions = batch(texts, batch_size=batch_size, executor=executor)
    else:
        predictions = [extractor.extract(text) for text in texts]
    tp = fp = fn = 0
    for sentence, predicted in zip(sentences, predictions):
        pred_set = {(s.lower(), r.lower(), o.lower()) for s, r, o in predicted.triples}
        gold_set = {(s.lower(), r.lower(), o.lower()) for s, r, o in sentence.triples}
        tp += len(pred_set & gold_set)
        fp += len(pred_set - gold_set)
        fn += len(gold_set - pred_set)
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return {"precision": precision, "recall": recall, "f1": f1}
