"""Ontology creation with LLMs (survey §2.1.1, RQ2).

Implements the survey's six ontology activities:

* concept extraction (:class:`ConceptExtractor`),
* ontology learning end-to-end (:class:`OntologyLearner`, LLMs4OL-style:
  concepts → taxonomy → non-taxonomic relations),
* property identification via LLM pre-annotation
  (:class:`PropertyPreAnnotator`, after Straková et al. — the metric is the
  fraction of annotation decisions the human no longer has to make),
* ontology enrichment (:class:`OntologyEnricher`),
* text-to-ontology mapping (:class:`TextToOntologyMapper`, after Korel
  et al. — route a text to the most relevant ontology by embedding match),
* and the end-to-end text→KG pipeline of the COVID-19 case study
  (:func:`build_kg_from_text`).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.kg.graph import KnowledgeGraph
from repro.kg.ontology import Ontology
from repro.kg.triples import IRI, Namespace, RDFS, Literal
from repro.llm import prompts as P
from repro.llm.embedding import TextEncoder, cosine_similarity
from repro.llm.model import SimulatedLLM
from repro.text.corpus import AnnotatedSentence

GEN = Namespace("http://repro.dev/generated/")


class ConceptExtractor:
    """Extract domain concepts (candidate classes) from a corpus.

    The LLM path types every entity mention and returns the set of types;
    the no-LLM path falls back to capitalization statistics, which cannot
    produce type *names* at all — the gap RQ2 measures.
    """

    def __init__(self, llm: Optional[SimulatedLLM] = None,
                 candidate_types: Sequence[str] = ()):
        self.llm = llm
        self.candidate_types = list(candidate_types)

    def extract(self, sentences: Sequence[str]) -> List[str]:
        """Concept labels ranked by support (most frequent first)."""
        counts: Counter = Counter()
        if self.llm is not None:
            for sentence in sentences:
                prompt = P.ner_prompt(sentence, self.candidate_types)
                for _, etype in P.parse_ner_response(self.llm.complete(prompt).text):
                    counts[etype] += 1
        else:
            for sentence in sentences:
                for token in sentence.split():
                    bare = token.strip(".,!?;:")
                    if bare.istitle() and len(bare) > 2:
                        counts[bare] += 1
        return [concept for concept, _ in counts.most_common()]


class OntologyLearner:
    """End-to-end ontology learning from an annotated corpus (LLMs4OL).

    Three stages mirroring the paper's term typing / taxonomy discovery /
    relation extraction decomposition:

    1. **Concepts** — type every mention with the backbone LLM.
    2. **Taxonomy** — query the backbone's parametric taxonomy knowledge
       ("is every X a Y?") for each concept pair; the simulator answers from
       the schema triples in its memory, the way a real LLM answers from
       pre-training.
    3. **Relations** — extract triples, then assign each relation a
       domain/range from the majority types of its observed arguments.
    """

    def __init__(self, llm: SimulatedLLM, candidate_types: Sequence[str]):
        self.llm = llm
        self.candidate_types = list(candidate_types)

    def learn(self, sentences: Sequence[AnnotatedSentence]) -> Ontology:
        """Produce an ontology from the corpus."""
        onto = Ontology("learned")
        mention_type: Dict[str, str] = {}
        for sentence in sentences:
            prompt = P.ner_prompt(sentence.text, self.candidate_types)
            for mention, etype in P.parse_ner_response(self.llm.complete(prompt).text):
                mention_type.setdefault(mention.lower(), etype)
        concepts = sorted(set(mention_type.values()))
        # Taxonomy discovery: ask the backbone for each concept's named
        # superclasses (parametric taxonomy knowledge) and fold them in.
        discovered: Dict[str, Set[str]] = {c: self._named_parents(c) for c in concepts}
        all_concepts = sorted(set(concepts) |
                              {p for parents in discovered.values() for p in parents})
        for concept in all_concepts:
            onto.add_class(GEN[concept.replace(" ", "_")], label=concept)
        for concept in all_concepts:
            for parent in self._named_parents(concept):
                if parent != concept:
                    onto.add_class(GEN[concept.replace(" ", "_")],
                                   parents=[GEN[parent.replace(" ", "_")]])
        # Non-taxonomic relations with domain/range from argument types.
        relation_args: Dict[str, Tuple[Counter, Counter]] = {}
        relations = sorted({r for s in sentences for _, r, _ in s.triples})
        for sentence in sentences:
            prompt = P.relation_extraction_prompt(sentence.text, relations)
            for subject, relation, obj in P.parse_relation_response(
                    self.llm.complete(prompt).text):
                domains, ranges = relation_args.setdefault(
                    relation, (Counter(), Counter()))
                subject_type = mention_type.get(subject.lower())
                object_type = mention_type.get(obj.lower())
                if subject_type:
                    domains[subject_type] += 1
                if object_type:
                    ranges[object_type] += 1
        for relation, (domains, ranges) in sorted(relation_args.items()):
            domain = GEN[domains.most_common(1)[0][0].replace(" ", "_")] \
                if domains else None
            range_ = GEN[ranges.most_common(1)[0][0].replace(" ", "_")] \
                if ranges else None
            onto.add_property(GEN[relation.replace(" ", "_")], label=relation,
                              domain=domain, range=range_)
        return onto

    def _named_parents(self, concept_label: str) -> Set[str]:
        """The direct superclass labels the backbone can name for a concept.

        Walks one ``rdfs:subClassOf`` step in the model's parametric memory —
        the simulator's analogue of asking "what kind of thing is a Virus?".
        """
        cls = self._class_by_label(concept_label)
        if cls is None:
            return set()
        parents: Set[str] = set()
        for triple in self.llm.memory.match(cls, RDFS.subClassOf, None):
            if isinstance(triple.object, IRI):
                parents.add(self.llm.labels.get(triple.object,
                                                triple.object.local_name))
        return parents

    def _subsumes(self, parent_label: str, child_label: str) -> bool:
        """Ask the backbone whether ``child ⊑ parent`` (parametric taxonomy)."""
        child = self._class_by_label(child_label)
        parent = self._class_by_label(parent_label)
        if child is None or parent is None:
            return False
        visited: Set[IRI] = set()
        frontier = [child]
        while frontier:
            current = frontier.pop()
            if current == parent:
                return current != child
            if current in visited:
                continue
            visited.add(current)
            for triple in self.llm.memory.match(current, RDFS.subClassOf, None):
                if isinstance(triple.object, IRI):
                    frontier.append(triple.object)
        return False

    def _class_by_label(self, label: str) -> Optional[IRI]:
        wanted = label.strip().lower()
        for iri, known in self.llm.labels.items():
            if known.lower() == wanted and \
                    self.llm.memory.match(iri, RDFS.subClassOf, None) is not None:
                # Must actually be a class-ish node (has or is a parent).
                if self.llm.memory.match(iri, RDFS.subClassOf, None) or \
                        self.llm.memory.match(None, RDFS.subClassOf, iri):
                    return iri
        return None


@dataclass
class PreAnnotation:
    """One suggested property annotation for a human to confirm or fix."""

    sentence: str
    suggested: Optional[str]
    gold: str

    @property
    def correct(self) -> bool:
        """Whether the suggestion can be accepted without edits."""
        return self.suggested is not None and \
            self.suggested.lower() == self.gold.lower()


class PropertyPreAnnotator:
    """LLM pre-annotation for property identification (Straková et al.).

    For each sentence the backbone suggests the property expressed; the
    human annotator only corrects wrong suggestions. ``annotation_savings``
    is the fraction of decisions the suggestion got right — the "reduced
    annotation time" the survey cites.
    """

    def __init__(self, llm: SimulatedLLM, properties: Sequence[str]):
        self.llm = llm
        self.properties = list(properties)

    def pre_annotate(self, sentences: Sequence[AnnotatedSentence]) -> List[PreAnnotation]:
        """Suggest one property per sentence (its first gold triple's)."""
        out: List[PreAnnotation] = []
        for sentence in sentences:
            if not sentence.triples:
                continue
            gold = sentence.triples[0][1]
            prompt = P.relation_extraction_prompt(sentence.text, self.properties)
            parsed = P.parse_relation_response(self.llm.complete(prompt).text)
            suggestion = parsed[0][1] if parsed else None
            out.append(PreAnnotation(sentence=sentence.text,
                                     suggested=suggestion, gold=gold))
        return out

    @staticmethod
    def annotation_savings(annotations: Sequence[PreAnnotation]) -> float:
        """Fraction of annotation decisions the pre-annotation resolved."""
        if not annotations:
            return 0.0
        return sum(1 for a in annotations if a.correct) / len(annotations)


class TextToOntologyMapper:
    """Route a text to the most relevant ontology (Korel et al.).

    Each candidate ontology is represented by the bag of its class and
    property labels; the classifier picks the ontology whose label profile
    is most similar to the text under the shared encoder.
    """

    def __init__(self, ontologies: Dict[str, Ontology],
                 encoder: Optional[TextEncoder] = None):
        self.encoder = encoder or TextEncoder(dim=96)
        self.ontologies = dict(ontologies)
        self._profiles = {
            name: self.encoder.encode(self._profile_text(onto))
            for name, onto in self.ontologies.items()
        }

    @staticmethod
    def _profile_text(onto: Ontology) -> str:
        labels = [c.label for c in onto.classes.values()]
        labels += [p.label for p in onto.properties.values()]
        return " ".join(labels)

    def map(self, text: str) -> str:
        """The best-matching ontology name for ``text``."""
        if not self.ontologies:
            raise ValueError("no candidate ontologies registered")
        query = self.encoder.encode(text)
        scored = sorted(
            ((cosine_similarity(query, profile), name)
             for name, profile in self._profiles.items()),
            reverse=True,
        )
        return scored[0][1]

    def rank(self, text: str) -> List[Tuple[str, float]]:
        """All candidates with scores, best first."""
        query = self.encoder.encode(text)
        return sorted(
            ((name, cosine_similarity(query, profile))
             for name, profile in self._profiles.items()),
            key=lambda pair: -pair[1],
        )


class OntologyEnricher:
    """Extend an existing ontology with concepts/properties found in text.

    The dynamic-domain scenario the survey describes: run the learner on new
    corpus material and merge anything missing into the base ontology.
    """

    def __init__(self, learner: OntologyLearner):
        self.learner = learner

    def enrich(self, base: Ontology,
               sentences: Sequence[AnnotatedSentence]) -> Tuple[Ontology, Dict[str, int]]:
        """Returns the enriched ontology plus counts of what was added."""
        learned = self.learner.learn(sentences)
        enriched = Ontology(base.name + "+enriched")
        for iri, cls in base.classes.items():
            enriched.add_class(iri, label=cls.label, parents=cls.parents,
                               description=cls.description)
            for other in cls.disjoint_with:
                enriched.set_disjoint(iri, other)
        for iri, prop in base.properties.items():
            enriched.add_property(iri, label=prop.label, domain=prop.domain,
                                  range=prop.range,
                                  characteristics=prop.characteristics,
                                  inverse_of=prop.inverse_of)
        added_classes = added_properties = 0
        base_class_labels = {c.label.lower() for c in base.classes.values()}
        base_property_labels = {p.label.lower() for p in base.properties.values()}
        for iri, cls in learned.classes.items():
            if cls.label.lower() not in base_class_labels:
                enriched.add_class(iri, label=cls.label, parents=cls.parents)
                added_classes += 1
        for iri, prop in learned.properties.items():
            if prop.label.lower() not in base_property_labels:
                enriched.add_property(iri, label=prop.label, domain=prop.domain,
                                      range=prop.range)
                added_properties += 1
        return enriched, {"classes": added_classes, "properties": added_properties}


def build_kg_from_text(llm: SimulatedLLM,
                       sentences: Sequence[AnnotatedSentence],
                       candidate_types: Sequence[str],
                       relations: Sequence[str]) -> KnowledgeGraph:
    """End-to-end text→KG construction (the COVID-19 case-study pipeline).

    NER types the mentions, relation extraction produces triples, and both
    land in a fresh KG with entities minted under the generated namespace.
    """
    kg = KnowledgeGraph(name="constructed")

    def mint(label: str) -> IRI:
        return GEN[label.replace(" ", "_")]

    for sentence in sentences:
        ner_prompt = P.ner_prompt(sentence.text, candidate_types)
        for mention, etype in P.parse_ner_response(llm.complete(ner_prompt).text):
            entity = mint(mention)
            kg.set_label(entity, mention)
            kg.set_type(entity, GEN[etype.replace(" ", "_")])
        re_prompt = P.relation_extraction_prompt(sentence.text, relations)
        for subject, relation, obj in P.parse_relation_response(
                llm.complete(re_prompt).text):
            predicate = GEN[relation.replace(" ", "_")]
            kg.set_label(predicate, relation)
            kg.add(mint(subject), predicate, mint(obj))
            kg.set_label(mint(subject), subject)
            kg.set_label(mint(obj), obj)
    return kg
