"""KG Construction (survey §2.1): NER, relation extraction, ontology
creation/learning and entity alignment — the "LLM for KG" construction arm.

Each module implements both the LLM-powered methods the survey reviews and a
classical baseline so the benchmarks can report the comparison the surveyed
papers make.
"""

from repro.construction.ner import (
    GazetteerNER, PromptNER, InstructionTunedNER, NERResult,
)
from repro.construction.relation_extraction import (
    PatternRelationExtractor,
    ZeroShotRelationExtractor,
    FewShotICLRelationExtractor,
    RetrievedDemonstrationExtractor,
    SupervisedFineTunedExtractor,
    NLIFilteredExtractor,
)
from repro.construction.ontology import (
    OntologyLearner, ConceptExtractor, PropertyPreAnnotator,
    TextToOntologyMapper, OntologyEnricher, build_kg_from_text,
)
from repro.construction.alignment import EntityAligner, OntologyAligner
from repro.construction.events import (
    Event, EventSchema, LLMEventExtractor, TriggerLexiconExtractor,
    generate_event_corpus, evaluate_events,
)
from repro.construction.temporal import (
    TemporalRelation, CueWordTemporalExtractor, ZeroShotTemporalExtractor,
    KnowledgeGroundedTemporalExtractor, generate_temporal_corpus,
    evaluate_temporal,
)

__all__ = [
    "Event", "EventSchema", "LLMEventExtractor", "TriggerLexiconExtractor",
    "generate_event_corpus", "evaluate_events",
    "TemporalRelation", "CueWordTemporalExtractor", "ZeroShotTemporalExtractor",
    "KnowledgeGroundedTemporalExtractor", "generate_temporal_corpus",
    "evaluate_temporal",
    "GazetteerNER", "PromptNER", "InstructionTunedNER", "NERResult",
    "PatternRelationExtractor", "ZeroShotRelationExtractor",
    "FewShotICLRelationExtractor", "RetrievedDemonstrationExtractor",
    "SupervisedFineTunedExtractor", "NLIFilteredExtractor",
    "OntologyLearner", "ConceptExtractor", "PropertyPreAnnotator",
    "TextToOntologyMapper", "OntologyEnricher", "build_kg_from_text",
    "EntityAligner", "OntologyAligner",
]
