"""Deterministic load generation and overload experiments.

:class:`LoadGenerator` replays traffic mixes against a
:class:`~repro.serve.gateway.Gateway` under two arrival models:

* **open** — arrivals follow a seeded Poisson process at a target
  request rate, independent of completions (the overload model: the
  world does not slow down because the service did);
* **closed** — a fixed population of clients each waits for its
  previous request to finish, thinks for a while, then submits again
  (the well-behaved-client model; offered load self-regulates).

Both are pure functions of ``(mix, seed)``: inter-arrival and think
times come from stable hash draws, the gateway resolves each request
eagerly, and an optional :class:`~repro.core.observability.FakeClock`
is advanced to each arrival so traces and metrics share the simulated
timeline. Two identical runs produce byte-identical
:class:`LoadReport` numbers — which is what lets the overload
benchmark commit its p50/p99/shed-rate figures as a regression gate.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.observability import (FakeClock, Observability, percentile,
                                      resolve_obs)
from repro.core.resilience import CircuitBreaker, _stable_unit
from repro.serve.backends import TIER_COSTS, build_backends, question_pool
from repro.serve.gateway import Gateway, RequestResult


@dataclass(frozen=True)
class TrafficMix:
    """A named blend of request kinds and tenants (weights normalize)."""

    name: str
    kinds: Tuple[Tuple[str, float], ...]
    tenants: Tuple[Tuple[str, float], ...] = (("tenant-a", 1.0),)

    def pick(self, weighted: Sequence[Tuple[str, float]],
             unit: float) -> str:
        """Weighted choice resolved by one stable unit draw."""
        total = sum(weight for _, weight in weighted)
        threshold = unit * total
        running = 0.0
        for value, weight in weighted:
            running += weight
            if threshold < running:
                return value
        return weighted[-1][0]

    def mean_tier0_cost(self,
                        costs: Mapping[str, Sequence[float]] = TIER_COSTS
                        ) -> float:
        """Kind-weighted mean full-fidelity service cost (capacity math)."""
        total = sum(weight for _, weight in self.kinds)
        return sum(weight * costs[kind][0]
                   for kind, weight in self.kinds) / total


#: Canned mixes for the CLI and benchmarks.
MIXES: Dict[str, TrafficMix] = {
    "qa": TrafficMix("qa", kinds=(("rag", 3.0), ("sparql", 2.0)),
                     tenants=(("tenant-a", 2.0), ("tenant-b", 1.0))),
    "chat": TrafficMix("chat", kinds=(("chat", 1.0),),
                       tenants=(("tenant-a", 1.0), ("tenant-b", 1.0),
                                ("tenant-c", 1.0))),
    "mixed": TrafficMix("mixed",
                        kinds=(("rag", 3.0), ("sparql", 2.0),
                               ("chat", 3.0), ("graphrag", 1.0)),
                        tenants=(("tenant-a", 3.0), ("tenant-b", 2.0),
                                 ("tenant-c", 1.0))),
    "agentic": TrafficMix("agentic",
                          kinds=(("agent", 2.0), ("rag", 1.0),
                                 ("chat", 1.0)),
                          tenants=(("tenant-a", 2.0), ("tenant-b", 1.0))),
}


@dataclass
class LoadReport:
    """What one replay produced, aggregated for gates and dashboards."""

    mix: str
    model: str                      # "open" | "closed"
    offered: int = 0
    completed: int = 0
    shed: int = 0
    rejected: int = 0
    failed: int = 0
    late: int = 0
    degraded: int = 0
    makespan: float = 0.0
    p50_latency: float = 0.0
    p99_latency: float = 0.0
    mean_latency: float = 0.0
    max_latency: float = 0.0
    shed_rate: float = 0.0
    goodput: float = 0.0            # useful completions per simulated second
    max_queue_depth: int = 0
    tier_counts: Dict[str, int] = field(default_factory=dict)
    gateway_stats: Dict[str, Any] = field(default_factory=dict)
    # Streaming aggregates (zero for blob-only replays). The streaming
    # ledger mirrors the gateway's: streamed == completed_streams +
    # shed_mid_stream (every admitted stream resolves exactly once).
    streamed: int = 0
    completed_streams: int = 0
    shed_mid_stream: int = 0
    p50_ttft: float = 0.0
    p99_ttft: float = 0.0
    mean_tpot: float = 0.0
    tokens_out: int = 0
    tokens_per_sec: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready mapping (stable key order via sorted tiers)."""
        out = {
            "mix": self.mix, "model": self.model, "offered": self.offered,
            "completed": self.completed, "shed": self.shed,
            "rejected": self.rejected, "failed": self.failed,
            "late": self.late, "degraded": self.degraded,
            "makespan": round(self.makespan, 6),
            "p50_latency": round(self.p50_latency, 6),
            "p99_latency": round(self.p99_latency, 6),
            "mean_latency": round(self.mean_latency, 6),
            "max_latency": round(self.max_latency, 6),
            "shed_rate": round(self.shed_rate, 6),
            "goodput": round(self.goodput, 6),
            "max_queue_depth": self.max_queue_depth,
            "streamed": self.streamed,
            "completed_streams": self.completed_streams,
            "shed_mid_stream": self.shed_mid_stream,
            "p50_ttft": round(self.p50_ttft, 6),
            "p99_ttft": round(self.p99_ttft, 6),
            "mean_tpot": round(self.mean_tpot, 6),
            "tokens_out": self.tokens_out,
            "tokens_per_sec": round(self.tokens_per_sec, 6),
            "tier_counts": {tier: self.tier_counts[tier]
                            for tier in sorted(self.tier_counts)},
        }
        return out


def _build_report(mix_name: str, model: str, gateway: Gateway,
                  results: Sequence[RequestResult]) -> LoadReport:
    latencies = [r.latency for r in results if r.ok]
    finishes = [r.finish if r.ok else r.request.arrival for r in results]
    makespan = max(finishes) if finishes else 0.0
    # Streaming aggregates: results the token scheduler resolved.
    streams = [r for r in results if r.tier == "stream"]
    admitted_streams = [r for r in streams
                        if r.status in ("completed", "shed")]
    ttfts = [r.ttft for r in streams if r.ok]
    tpots = [r.tpot for r in streams if r.ok and len(r.chunks) >= 2]
    tokens_out = sum(r.tokens_out for r in streams)
    # "Useful" excludes late answers and the static busy tier: both keep
    # the connection alive but deliver no payload value.
    useful = sum(1 for r in results
                 if r.ok and not r.late and r.tier != "busy")
    offered = len(results)
    shed = sum(1 for r in results if r.status == "shed")
    report = LoadReport(
        mix=mix_name, model=model, offered=offered,
        completed=sum(1 for r in results if r.ok),
        shed=shed,
        rejected=sum(1 for r in results if r.status == "rejected"),
        failed=sum(1 for r in results if r.status == "failed"),
        late=sum(1 for r in results if r.ok and r.late),
        degraded=sum(1 for r in results if r.degraded),
        makespan=makespan,
        p50_latency=percentile(latencies, 50.0),
        p99_latency=percentile(latencies, 99.0),
        mean_latency=(sum(latencies) / len(latencies)) if latencies else 0.0,
        max_latency=max(latencies) if latencies else 0.0,
        shed_rate=shed / offered if offered else 0.0,
        goodput=useful / makespan if makespan > 0 else 0.0,
        max_queue_depth=gateway.max_queue_depth,
        tier_counts=dict(gateway.tier_counts),
        gateway_stats=gateway.stats(),
        streamed=len(admitted_streams),
        completed_streams=sum(1 for r in admitted_streams if r.ok),
        shed_mid_stream=sum(1 for r in admitted_streams
                            if r.status == "shed"),
        p50_ttft=percentile(ttfts, 50.0),
        p99_ttft=percentile(ttfts, 99.0),
        mean_tpot=(sum(tpots) / len(tpots)) if tpots else 0.0,
        tokens_out=tokens_out,
        tokens_per_sec=tokens_out / makespan if makespan > 0 else 0.0,
    )
    return report


class LoadGenerator:
    """Replays a deterministic traffic mix against one gateway."""

    def __init__(self, gateway: Gateway, questions: Mapping[str, Sequence[str]],
                 mix: TrafficMix, seed: int = 0,
                 clock: Optional[FakeClock] = None):
        for kind, _ in mix.kinds:
            if not questions.get(kind):
                raise ValueError(f"no questions for kind {kind!r}")
        self.gateway = gateway
        self.questions = {kind: list(qs) for kind, qs in questions.items()}
        self.mix = mix
        self.seed = seed
        self.clock = clock
        self.results: List[RequestResult] = []

    def _draw(self, *parts: str) -> float:
        return _stable_unit(str(self.seed), self.mix.name, *parts)

    def _compose(self, index: int,
                 tenant: Optional[str] = None) -> Tuple[str, str, str]:
        """(tenant, kind, question) for request ``index``."""
        kind = self.mix.pick(self.mix.kinds, self._draw("kind", str(index)))
        if tenant is None:
            tenant = self.mix.pick(self.mix.tenants,
                                   self._draw("tenant", str(index)))
        pool = self.questions[kind]
        question = pool[int(self._draw("question", str(index)) * len(pool))
                        % len(pool)]
        return tenant, kind, question

    def _advance_clock(self, arrival: float) -> None:
        if self.clock is not None and arrival > self.clock.now():
            self.clock.advance(arrival - self.clock.now())

    def run_open(self, rate: float, n_requests: int) -> LoadReport:
        """Poisson arrivals at ``rate`` req/s, independent of completions."""
        if rate <= 0:
            raise ValueError("rate must be > 0")
        results: List[RequestResult] = []
        now = 0.0
        for index in range(n_requests):
            unit = self._draw("arrival", str(index))
            now += -math.log(1.0 - unit) / rate
            self._advance_clock(now)
            tenant, kind, question = self._compose(index)
            session = f"{tenant}:open:{index % 4}"
            results.append(self.gateway.offer(tenant, kind, question, now,
                                              session_id=session))
        self.results.extend(results)
        return _build_report(self.mix.name, "open", self.gateway, results)

    def run_closed(self, clients: int = 8, requests_per_client: int = 10,
                   think: float = 0.5) -> LoadReport:
        """A fixed client population: submit → wait for finish → think.

        Because the gateway resolves requests eagerly, a client's next
        submit time is known the moment its current request returns;
        the generator merges clients on a time-ordered heap so the
        gateway still sees one non-decreasing arrival stream.
        """
        if clients < 1:
            raise ValueError("clients must be >= 1")
        results: List[RequestResult] = []
        # (next submit time, client id, requests already sent)
        schedule = [(think * self._draw("start", str(client)), client, 0)
                    for client in range(clients)]
        heapq.heapify(schedule)
        while schedule:
            now, client, sent = heapq.heappop(schedule)
            tag = f"{client}:{sent}"
            tenant = self.mix.pick(self.mix.tenants,
                                   self._draw("client", str(client)))
            _, kind, question = self._compose_closed(client, sent, tenant)
            self._advance_clock(now)
            result = self.gateway.offer(tenant, kind, question, now,
                                        session_id=f"{tenant}:c{client}")
            results.append(result)
            sent += 1
            if sent < requests_per_client:
                resume = result.finish if result.ok else now
                pause = think * (0.5 + self._draw("think", tag))
                if result.status == "rejected":
                    # Back off before retrying admission-rejected work.
                    pause += think
                heapq.heappush(schedule, (resume + pause, client, sent))
        self.results.extend(results)
        return _build_report(self.mix.name, "closed", self.gateway, results)

    def _compose_closed(self, client: int, sent: int,
                        tenant: str) -> Tuple[str, str, str]:
        tag = f"c{client}:{sent}"
        kind = self.mix.pick(self.mix.kinds, self._draw("kind", tag))
        pool = self.questions[kind]
        question = pool[int(self._draw("question", tag) * len(pool))
                        % len(pool)]
        return tenant, kind, question


def overload_experiment(dataset: str = "enterprise", mix_name: str = "mixed",
                        capacity: int = 4, load_factor: float = 1.0,
                        n_requests: int = 200, seed: int = 0,
                        queue_limit: int = 16, budget: float = 6.0,
                        llm=None, obs=None) -> LoadReport:
    """One open-loop replay at ``load_factor`` × the fleet's capacity.

    Capacity is ``workers / mean tier-0 service cost`` for the mix —
    the sustainable full-fidelity rate. ``load_factor=2.0`` is the
    benchmark's overload condition. Fresh backends and gateway per call,
    so experiments at different factors never share warm caches.
    """
    mix = MIXES[mix_name]
    obs = resolve_obs(obs)
    backends = build_backends(dataset=dataset, seed=seed, llm=llm, obs=obs)
    gateway = Gateway(backends.handlers, capacity=capacity,
                      queue_limit=queue_limit, budget=budget,
                      breaker=CircuitBreaker(failure_threshold=5, cooldown=8,
                                             name="serve-tier0"),
                      obs=obs, seed=seed)
    capacity_rps = capacity / mix.mean_tier0_cost()
    clock = obs.clock if isinstance(getattr(obs, "clock", None),
                                    FakeClock) else None
    generator = LoadGenerator(gateway, question_pool(backends.dataset,
                                                     seed=seed),
                              mix, seed=seed, clock=clock)
    report = generator.run_open(rate=load_factor * capacity_rps,
                                n_requests=n_requests)
    report.gateway_stats["capacity_rps"] = round(capacity_rps, 6)
    report.gateway_stats["offered_rps"] = round(load_factor * capacity_rps, 6)
    return report


def partition_experiment(dataset: str = "enterprise",
                         mix_name: str = "mixed", capacity: int = 4,
                         load_factor: float = 2.0, n_requests: int = 200,
                         seed: int = 0, queue_limit: int = 16,
                         budget: float = 6.0, replicas: int = 2,
                         shards: int = 0, transport_profile=None,
                         partition: bool = True, partition_at: float = 0.25,
                         llm=None, obs=None,
                         schedule_out: Optional[str] = None
                         ) -> Tuple[LoadReport, Dict[str, Any]]:
    """An overload replay over *replicated* shards, partitioned mid-run.

    Same arrival stream as :func:`overload_experiment` (identical seed →
    identical tenants/kinds/questions), but the backends are re-homed
    onto a :class:`~repro.kg.replication.ReplicatedShardedTripleStore`
    and — when ``partition`` is true — one replica of every shard is
    forced off the network after ``partition_at`` of the requests have
    arrived. Run once with ``partition=False`` and once with the
    default to measure what the partition costs: the replication bench
    gates the partitioned goodput at ≥99% of the fault-free run.

    Returns ``(report, detail)`` where ``detail`` carries the
    replication counters, the victim list and the availability ratio
    (completed / admitted). ``schedule_out`` archives the transport's
    fault schedule as JSONL (the CI artifact; replayable via
    ``repro serve replay --schedule``).
    """
    mix = MIXES[mix_name]
    obs = resolve_obs(obs)
    backends = build_backends(dataset=dataset, seed=seed, llm=llm, obs=obs,
                              shards=shards, replicas=max(1, replicas),
                              transport_profile=transport_profile)
    replicated = backends.replicated
    gateway = Gateway(backends.handlers, capacity=capacity,
                      queue_limit=queue_limit, budget=budget,
                      breaker=CircuitBreaker(failure_threshold=5, cooldown=8,
                                             name="serve-tier0"),
                      obs=obs, seed=seed)
    capacity_rps = capacity / mix.mean_tier0_cost()
    rate = load_factor * capacity_rps
    clock = obs.clock if isinstance(getattr(obs, "clock", None),
                                    FakeClock) else None
    generator = LoadGenerator(gateway, question_pool(backends.dataset,
                                                     seed=seed),
                              mix, seed=seed, clock=clock)
    trigger = int(n_requests * partition_at) if partition else -1
    victims: List[Tuple[int, int]] = []
    results: List[RequestResult] = []
    now = 0.0
    for index in range(n_requests):
        if index == trigger:
            victims = replicated.partition_one_replica_per_shard()
        unit = generator._draw("arrival", str(index))
        now += -math.log(1.0 - unit) / rate
        generator._advance_clock(now)
        tenant, kind, question = generator._compose(index)
        results.append(gateway.offer(tenant, kind, question, now,
                                     session_id=f"{tenant}:open:{index % 4}"))
    report = _build_report(mix.name, "open", gateway, results)
    report.gateway_stats["capacity_rps"] = round(capacity_rps, 6)
    report.gateway_stats["offered_rps"] = round(rate, 6)
    if schedule_out:
        replicated.transport.export_schedule_jsonl(schedule_out)
    admitted = gateway.admitted or 1
    detail = {
        "partitioned": bool(victims),
        "victims": victims,
        "availability": round(gateway.completed / admitted, 6),
        "replication": replicated.replication_stats(),
    }
    return report, detail


def serving_observability() -> Observability:
    """An obs facade on a FakeClock, ready for serving replays."""
    return Observability(clock=FakeClock(start=0.0, tick=0.0))
