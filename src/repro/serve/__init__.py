"""`repro.serve` — the deterministic front-door serving layer.

Composes the resilience, observability, and QA substrates into a
gateway that faces (simulated) user traffic: admission control and
rate limiting, bounded queues with load shedding, tiered degradation
under pressure, bounded session state, and deterministic load
generation for overload benchmarks.
"""

from repro.serve.backends import (BUSY_MESSAGE, ServingBackends, TIER_COSTS,
                                  build_backends, question_pool)
from repro.serve.gateway import (AdmissionError, Gateway, QueueFullError,
                                 RateLimiter, Request, RequestResult,
                                 ThrottledError, TierStep, TokenBucket)
from repro.serve.loadgen import (LoadGenerator, LoadReport, MIXES, TrafficMix,
                                 overload_experiment, partition_experiment,
                                 serving_observability)
from repro.serve.scheduler import (POLICIES, STREAM_MIXES, StreamRequest,
                                   TokenScheduler, build_stream_requests,
                                   stream_prompt_pool, streaming_experiment)
from repro.serve.session import SessionStore

__all__ = [
    "AdmissionError",
    "BUSY_MESSAGE",
    "Gateway",
    "LoadGenerator",
    "LoadReport",
    "MIXES",
    "POLICIES",
    "QueueFullError",
    "RateLimiter",
    "Request",
    "RequestResult",
    "ServingBackends",
    "SessionStore",
    "STREAM_MIXES",
    "StreamRequest",
    "ThrottledError",
    "TierStep",
    "TIER_COSTS",
    "TokenBucket",
    "TokenScheduler",
    "TrafficMix",
    "build_backends",
    "build_stream_requests",
    "overload_experiment",
    "partition_experiment",
    "question_pool",
    "serving_observability",
    "stream_prompt_pool",
    "streaming_experiment",
]
