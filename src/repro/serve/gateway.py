"""The front-door gateway: admission control, backpressure, degradation.

The survey's systems are user-facing services, but a pipeline object is
not a service: calling ``answer()`` directly has no notion of queueing,
tenancy, overload, or "try something cheaper when the expensive path is
drowning". :class:`Gateway` adds exactly that layer, in the repo's
deterministic no-wall-clock style:

* **Admission control** — a seeded token-bucket :class:`RateLimiter`
  (per-tenant and global) and bounded per-tenant queues. Rejected
  requests raise typed :class:`AdmissionError` subclasses;
  :class:`ThrottledError` doubles as an
  :class:`~repro.llm.faults.LLMRateLimitError` so the existing retry
  policies and chaos tests compose unchanged.
* **Backpressure** — requests wait in a simulated queue ahead of a fixed
  worker fleet; a request whose queue wait alone exhausts its
  :class:`~repro.core.resilience.Deadline` is *shed* before consuming
  any service capacity.
* **Graceful degradation** — each request kind carries an ordered list
  of :class:`TierStep` handlers (full GraphRAG → RAG-only → static
  "system busy"). Queue pressure selects the starting tier, a shared
  :class:`~repro.core.resilience.CircuitBreaker` guards the expensive
  tier, and tier failures fall through to the next step, so overload
  trades answer fidelity for goodput instead of collapsing.

Determinism contract: the gateway is an *eager* discrete-event
simulator. ``submit`` resolves each request's complete schedule (queue
wait, start, per-tier service, finish) at submission time, as a pure
function of the submission sequence and the gateway seed — no threads
race over simulated time, so two identical request streams produce
byte-identical latency distributions, shed counts and tier histograms.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.observability import resolve_obs
from repro.core.resilience import (CircuitBreaker, Deadline, ResilienceError,
                                   _stable_unit)
from repro.llm.faults import LLMRateLimitError, LLMTransientError


class AdmissionError(ResilienceError):
    """The gateway refused a request before doing any work.

    ``reason`` is a stable machine-readable label (``queue_full`` /
    ``throttled``) for counters and tests.
    """

    reason = "rejected"


class QueueFullError(AdmissionError):
    """The tenant's bounded queue is at capacity."""

    reason = "queue_full"


class ThrottledError(AdmissionError, LLMRateLimitError):
    """A token bucket ran dry (HTTP-429 analogue at the front door).

    Inherits :class:`~repro.llm.faults.LLMRateLimitError` so callers'
    existing retry policies read ``retry_after`` from it exactly as they
    do for model-side rate limits; ``scope`` says which bucket rejected
    (``"tenant"`` or ``"global"``).
    """

    reason = "throttled"

    def __init__(self, message: str, *, retry_after: float = 1.0,
                 scope: str = "tenant"):
        LLMRateLimitError.__init__(self, message, retry_after=retry_after)
        self.scope = scope


class TokenBucket:
    """A deterministic token bucket refilled by simulated time.

    ``burst`` tokens capacity, ``rate`` tokens per simulated second;
    refill is computed lazily from the timestamps callers pass in, so
    the bucket never reads a clock of its own.
    """

    def __init__(self, rate: float, burst: int):
        if rate <= 0:
            raise ValueError("rate must be > 0")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate = rate
        self.burst = burst
        self.tokens = float(burst)
        self._last = 0.0

    def _refill(self, now: float) -> None:
        if now > self._last:
            self.tokens = min(float(self.burst),
                              self.tokens + (now - self._last) * self.rate)
            self._last = now

    def try_acquire(self, now: float) -> bool:
        """Take one token if available; refills up to ``now`` first."""
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def retry_after(self, now: float) -> float:
        """Simulated seconds until one token will be available."""
        self._refill(now)
        deficit = 1.0 - self.tokens
        return max(0.0, deficit / self.rate)


class RateLimiter:
    """Per-tenant and global token buckets with a seeded retry hint.

    Both buckets must hold a token for a request to pass; neither is
    consumed when either would reject, so a globally throttled burst
    does not silently drain tenant budgets. The ``retry_after`` hint is
    jittered by a stable per-rejection draw so that retrying clients
    keyed off the hint spread out instead of returning as one herd.
    """

    def __init__(self, tenant_rate: float = 10.0, tenant_burst: int = 5,
                 global_rate: Optional[float] = None,
                 global_burst: Optional[int] = None, seed: int = 0):
        self.tenant_rate = tenant_rate
        self.tenant_burst = tenant_burst
        self.seed = seed
        self._tenants: Dict[str, TokenBucket] = {}
        self._global: Optional[TokenBucket] = None
        if global_rate is not None:
            self._global = TokenBucket(global_rate,
                                       global_burst or max(1, tenant_burst))
        self.throttled = {"tenant": 0, "global": 0}

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._tenants.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self.tenant_rate, self.tenant_burst)
            self._tenants[tenant] = bucket
        return bucket

    def _hint(self, base: float, tenant: str) -> float:
        rejections = self.throttled["tenant"] + self.throttled["global"]
        spread = 1.0 + 0.25 * _stable_unit(str(self.seed), tenant,
                                           str(rejections))
        return max(base, 1e-6) * spread

    def check(self, tenant: str, now: float) -> None:
        """Admit or raise :class:`ThrottledError`; consumes on success."""
        bucket = self._bucket(tenant)
        bucket._refill(now)
        if self._global is not None:
            self._global._refill(now)
        if bucket.tokens < 1.0:
            self.throttled["tenant"] += 1
            raise ThrottledError(
                f"tenant {tenant!r} over rate limit",
                retry_after=self._hint(bucket.retry_after(now), tenant),
                scope="tenant")
        if self._global is not None and self._global.tokens < 1.0:
            self.throttled["global"] += 1
            raise ThrottledError(
                "global rate limit reached",
                retry_after=self._hint(self._global.retry_after(now), tenant),
                scope="global")
        bucket.tokens -= 1.0
        if self._global is not None:
            self._global.tokens -= 1.0


@dataclass(frozen=True)
class TierStep:
    """One degradation tier: a name, a simulated service cost, a handler.

    ``fn`` receives the :class:`Request` and returns the answer payload;
    raising :class:`~repro.llm.faults.LLMTransientError` or
    :class:`~repro.core.resilience.ResilienceError` falls through to the
    next tier. ``cost`` is the tier's base simulated service seconds
    (jittered per request by the gateway seed).
    """

    name: str
    cost: float
    fn: Callable[["Request"], Any]


@dataclass(frozen=True)
class Request:
    """One admitted unit of work."""

    tenant: str
    kind: str
    question: str
    arrival: float
    session_id: str = ""
    seq: int = 0


@dataclass
class RequestResult:
    """Everything the gateway decided about one request."""

    request: Request
    status: str                 # completed | shed | rejected | failed
    tier: str = ""              # name of the step that answered
    tier_index: int = -1        # 0 = full fidelity; >0 = degraded
    answer: Any = None
    start: float = 0.0
    finish: float = 0.0
    wait: float = 0.0
    service: float = 0.0
    late: bool = False          # completed after its deadline expired
    error: str = ""
    step_errors: List[Tuple[str, str]] = field(default_factory=list)
    # Streaming extensions (populated by the token scheduler; blob-path
    # results keep the zero defaults). ``chunks`` holds every decode-step
    # chunk that was actually delivered — for a mid-stream shed that is
    # exactly the prefix the client received before the cut.
    chunks: Tuple[str, ...] = ()
    tokens_out: int = 0             # tokenizer tokens delivered
    ttft: float = 0.0               # arrival → first chunk (0.0 if none)
    tpot: float = 0.0               # mean seconds per chunk after the first
    prompt_tokens: int = 0          # prefill size of the request
    cached_prefix_tokens: int = 0   # prefill tokens skipped via prefix cache

    @property
    def ok(self) -> bool:
        """Whether a handler produced an answer."""
        return self.status == "completed"

    @property
    def streamed(self) -> bool:
        """Whether this result went through the token scheduler."""
        return self.tier == "stream"

    @property
    def degraded(self) -> bool:
        """Whether anything but the primary tier produced the answer."""
        return self.status == "completed" and self.tier_index > 0

    @property
    def latency(self) -> float:
        """Arrival-to-finish simulated seconds (0.0 unless completed)."""
        if self.status != "completed":
            return 0.0
        return self.finish - self.request.arrival


#: Tier thresholds: queue pressure (wait / deadline budget) below
#: ``degrade`` runs the full-fidelity tier; between ``degrade`` and
#: ``busy`` starts one tier down; above ``busy`` goes straight to the
#: terminal static tier.
DEFAULT_DEGRADE_PRESSURE = 0.35
DEFAULT_BUSY_PRESSURE = 0.75


class Gateway:
    """Deterministic front door multiplexing tenants over shared pipelines.

    ``handlers`` maps a request kind to its ordered degradation ladder
    (a sequence of :class:`TierStep`); ``capacity`` is the simulated
    worker fleet width; ``queue_limit`` bounds each tenant's
    scheduled-but-unstarted backlog; ``budget`` is the per-request
    simulated deadline. ``submit`` raises :class:`AdmissionError`
    subtypes for refused requests; ``offer`` converts them into
    ``status="rejected"`` results for closed-loop clients.

    Counter invariants (asserted by the chaos suite)::

        submitted == admitted + rejected
        admitted  == completed + shed + failed
        completed == sum(tier_counts.values())
    """

    def __init__(self, handlers: Mapping[str, Sequence[TierStep]],
                 capacity: int = 4, queue_limit: int = 8,
                 budget: float = 6.0,
                 degrade_pressure: float = DEFAULT_DEGRADE_PRESSURE,
                 busy_pressure: float = DEFAULT_BUSY_PRESSURE,
                 limiter: Optional[RateLimiter] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 obs=None, seed: int = 0):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if budget <= 0:
            raise ValueError("budget must be > 0")
        if not 0.0 < degrade_pressure <= busy_pressure <= 1.0:
            raise ValueError("need 0 < degrade_pressure <= busy_pressure <= 1")
        if not handlers:
            raise ValueError("at least one request kind is required")
        self.handlers = {kind: list(steps) for kind, steps in handlers.items()}
        for kind, steps in self.handlers.items():
            if not steps:
                raise ValueError(f"kind {kind!r} has an empty tier ladder")
        self.capacity = capacity
        self.queue_limit = queue_limit
        self.budget = budget
        self.degrade_pressure = degrade_pressure
        self.busy_pressure = busy_pressure
        self.limiter = limiter
        self.breaker = breaker
        self.obs = resolve_obs(obs)
        self.seed = seed
        # Eager discrete-event state: a min-heap of worker free times and
        # per-tenant lists of scheduled-but-unstarted request start times.
        self._free: List[float] = [0.0] * capacity
        heapq.heapify(self._free)
        self._pending: Dict[str, List[float]] = {}
        self._last_arrival = 0.0
        self._lock = threading.Lock()
        # Counters (all under the lock).
        self.submitted = 0
        self.admitted = 0
        self.rejected = {"queue_full": 0, "throttled": 0}
        self.completed = 0
        self.shed = 0
        self.failed = 0
        self.late = 0
        self.degraded = 0
        self.tier_counts: Dict[str, int] = {}
        # Tier fallthroughs keyed by exception class name — separates
        # "LLM degraded" from "shard lost quorum" when reading an
        # overload run's stats (the replication chaos suite asserts on
        # the StaleReadError/ShardUnavailableError rows).
        self.fallthrough: Dict[str, int] = {}
        self.max_queue_depth = 0
        if self.obs.enabled:
            self.obs.register_source("serve.gateway", self.stats)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(self, tenant: str, kind: str, question: str,
               arrival: float, session_id: str = "") -> RequestResult:
        """Admit and fully resolve one request at simulated ``arrival``.

        Arrivals must be non-decreasing (the stream is the event order).
        Raises :class:`AdmissionError` subtypes for refused requests;
        admitted requests always return a result (completed, shed, or
        failed) — the gateway itself never propagates handler faults.
        """
        if kind not in self.handlers:
            raise KeyError(f"unknown request kind {kind!r}; "
                           f"available: {', '.join(sorted(self.handlers))}")
        with self._lock:
            if arrival < self._last_arrival:
                raise ValueError(
                    f"arrivals must be non-decreasing "
                    f"(got {arrival:.4f} after {self._last_arrival:.4f})")
            self._last_arrival = arrival
            self.submitted += 1
            seq = self.submitted
            pending = self._prune(tenant, arrival)
            try:
                if self.limiter is not None:
                    self.limiter.check(tenant, arrival)
                if len(pending) >= self.queue_limit:
                    self.rejected["queue_full"] += 1
                    self.obs.count("serve.rejected", reason="queue_full",
                                   tenant=tenant)
                    raise QueueFullError(
                        f"tenant {tenant!r} queue full "
                        f"({len(pending)}/{self.queue_limit})")
            except ThrottledError:
                self.rejected["throttled"] += 1
                self.obs.count("serve.rejected", reason="throttled",
                               tenant=tenant)
                raise
            self.admitted += 1
            self.obs.count("serve.admitted", kind=kind, tenant=tenant)
            request = Request(tenant=tenant, kind=kind, question=question,
                              arrival=arrival, session_id=session_id, seq=seq)
            return self._schedule(request, pending)

    def offer(self, tenant: str, kind: str, question: str,
              arrival: float, session_id: str = "") -> RequestResult:
        """Like :meth:`submit`, but refusals become ``rejected`` results."""
        try:
            return self.submit(tenant, kind, question, arrival,
                               session_id=session_id)
        except AdmissionError as exc:
            return RequestResult(
                request=Request(tenant=tenant, kind=kind, question=question,
                                arrival=arrival, session_id=session_id),
                status="rejected", error=f"{exc.reason}: {exc}")

    def _prune(self, tenant: str, arrival: float) -> List[float]:
        """Drop queue entries that started before ``arrival``; return the
        tenant's live pending list."""
        pending = self._pending.setdefault(tenant, [])
        pending[:] = [start for start in pending if start > arrival]
        return pending

    # ------------------------------------------------------------------
    # Scheduling + execution (under the lock)
    # ------------------------------------------------------------------
    def _schedule(self, request: Request,
                  pending: List[float]) -> RequestResult:
        free = heapq.heappop(self._free)
        start = max(request.arrival, free)
        wait = start - request.arrival
        deadline = Deadline(self.budget)
        deadline.charge(wait)
        if deadline.expired:
            # The queue alone ate the whole budget: shed before consuming
            # any service capacity (the worker slot goes back untouched).
            heapq.heappush(self._free, free)
            self.shed += 1
            self.obs.count("serve.shed", kind=request.kind,
                           tenant=request.tenant)
            return RequestResult(request=request, status="shed",
                                 start=request.arrival,
                                 finish=request.arrival, wait=wait,
                                 error="queue wait exhausted the deadline")
        pending.append(start)
        depth = len(pending)
        self.max_queue_depth = max(self.max_queue_depth, depth)
        self.obs.gauge("serve.queue_depth", depth, tenant=request.tenant)
        result = self._execute(request, start, wait, deadline)
        heapq.heappush(self._free, result.finish if result.service > 0
                       else free)
        return result

    def _start_tier(self, wait: float) -> int:
        pressure = wait / self.budget
        if pressure <= self.degrade_pressure:
            return 0
        if pressure <= self.busy_pressure:
            return 1
        return 10 ** 9  # clamped to the terminal tier per kind

    def _execute(self, request: Request, start: float, wait: float,
                 deadline: Deadline) -> RequestResult:
        steps = self.handlers[request.kind]
        index = min(self._start_tier(wait), len(steps) - 1)
        # The expensive tier is breaker-guarded: while it is tripping,
        # requests start one tier down instead of hammering it (and the
        # half-open probe slot admits exactly one recovery attempt).
        probing = False
        if index == 0 and self.breaker is not None and len(steps) > 1:
            if self.breaker.allow():
                probing = True
            else:
                index = 1
        service = 0.0
        step_errors: List[Tuple[str, str]] = []
        try:
            while index < len(steps):
                step = steps[index]
                cost = step.cost * self._jitter(request, step.name)
                service += cost
                try:
                    answer = step.fn(request)
                except (LLMTransientError, ResilienceError) as exc:
                    if index == 0 and probing:
                        self.breaker.record_failure()
                    name = type(exc).__name__
                    self.fallthrough[name] = self.fallthrough.get(name, 0) + 1
                    self.obs.count("serve.fallthrough", kind=request.kind,
                                   error=name)
                    step_errors.append((step.name, repr(exc)))
                    index += 1
                    continue
                if index == 0 and probing:
                    self.breaker.record_success()
                return self._finish(request, start, wait, deadline, service,
                                    steps, index, answer, step_errors)
        except Exception as exc:  # handler bug: fail the request, not the gateway
            if probing and not step_errors:
                self.breaker.record_failure()
            self.failed += 1
            self.obs.count("serve.failed", kind=request.kind)
            return RequestResult(request=request, status="failed",
                                 start=start, finish=start + service,
                                 wait=wait, service=service,
                                 error=repr(exc), step_errors=step_errors)
        # Even the terminal tier failed (it should be infallible).
        self.failed += 1
        self.obs.count("serve.failed", kind=request.kind)
        return RequestResult(request=request, status="failed", start=start,
                             finish=start + service, wait=wait,
                             service=service,
                             error="all tiers failed",
                             step_errors=step_errors)

    def _finish(self, request: Request, start: float, wait: float,
                deadline: Deadline, service: float,
                steps: Sequence[TierStep], index: int, answer: Any,
                step_errors: List[Tuple[str, str]]) -> RequestResult:
        finish = start + service
        deadline.charge(service)
        late = deadline.expired
        tier = steps[index].name
        self.completed += 1
        # Keyed by kind:tier — tier names may repeat across kinds (the
        # graphrag ladder's degraded tier is the rag kind's primary).
        tier_key = f"{request.kind}:{tier}"
        self.tier_counts[tier_key] = self.tier_counts.get(tier_key, 0) + 1
        if index > 0:
            self.degraded += 1
        if late:
            self.late += 1
        self.obs.count("serve.completed", kind=request.kind, tier=tier)
        self.obs.observe("serve.latency", finish - request.arrival,
                         kind=request.kind)
        self.obs.observe("serve.wait", wait, kind=request.kind)
        return RequestResult(request=request, status="completed", tier=tier,
                             tier_index=index, answer=answer, start=start,
                             finish=finish, wait=wait, service=service,
                             late=late, step_errors=step_errors)

    def _jitter(self, request: Request, tier: str) -> float:
        """±20% stable service-time spread keyed by seed/kind/tier/seq."""
        unit = _stable_unit(str(self.seed), request.kind, tier,
                            str(request.seq))
        return 1.0 + 0.2 * (2.0 * unit - 1.0)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """All counters as one flat mapping (also a pull source)."""
        out: Dict[str, Any] = {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected_queue_full": self.rejected["queue_full"],
            "rejected_throttled": self.rejected["throttled"],
            "completed": self.completed,
            "shed": self.shed,
            "failed": self.failed,
            "late": self.late,
            "degraded": self.degraded,
            "max_queue_depth": self.max_queue_depth,
            "capacity": self.capacity,
            "queue_limit": self.queue_limit,
        }
        for tier, count in sorted(self.tier_counts.items()):
            out[f"tier_{tier}"] = count
        for name, count in sorted(self.fallthrough.items()):
            out[f"fallthrough_{name}"] = count
        if self.limiter is not None:
            out["throttled_tenant"] = self.limiter.throttled["tenant"]
            out["throttled_global"] = self.limiter.throttled["global"]
        if self.breaker is not None:
            snap = self.breaker.snapshot()
            out["breaker_state"] = snap["state"]
            out["breaker_trips"] = snap["trips"]
            out["breaker_rejected"] = snap["rejected"]
        return out
