"""Orca-style continuous batching over streamed completions.

The gateway (PR 6) schedules *whole requests*: a worker slot is held
from admission to final answer, so time-to-first-token equals full
completion latency and a batch runs at the pace of its slowest member.
:class:`TokenScheduler` moves scheduling down to **token-step
boundaries**, the way real inference stacks (Orca's iteration-level
scheduling, vLLM's continuous batching) do:

* the engine repeatedly runs one *iteration* — every running stream
  emits one decode-step chunk — and between iterations requests may
  **join** (FCFS admission with tenant fairness) and **leave**
  (completion, or deadline-aware mid-stream shedding that returns the
  chunks delivered so far plus a typed reason);
* a joining request pays a **prefill** cost proportional to its prompt
  tokens, minus whatever prefix the optional
  :class:`~repro.llm.prefix_cache.RadixPrefixCache` already holds;
* iteration duration grows sublinearly with batch width
  (``step_time * (1 + batch_growth * (B - 1))``), so batching wins
  throughput but is not free — the classic serving trade.

Two policies share the engine so the benchmark can measure the gap:

* ``"continuous"`` — slots free at token boundaries; admission runs
  every iteration;
* ``"run_to_completion"`` — the static baseline: a batch is formed only
  when the engine is empty, nobody joins mid-flight, and iteration cost
  stays at the *initial* batch width until the last member finishes
  (early finishers waste their slots, exactly the waste Orca removed).

The engine is a single-threaded, eager discrete-event simulation in the
gateway's style: no wall clock, arrivals must be non-decreasing, every
number is a pure function of ``(workload, seed, knobs)``, and an
optional :class:`~repro.core.observability.FakeClock` is advanced to
every iteration boundary so metrics share the simulated timeline. The
ledger mirrors the gateway's::

    submitted == streamed + rejected
    streamed  == completed_streams + shed_mid_stream

where *streamed* counts every admitted stream (a queue-expired request
is admitted and immediately shed with zero chunks, consuming no model
call). Faults from a wrapped
:class:`~repro.llm.faults.FaultInjectingLLM` surface as mid-stream
sheds with reason ``fault:<kind>`` — the partial prefix stays in the
result, so the chaos suite can assert that a stream shed at chunk *k*
delivered exactly the first *k* chunks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.observability import FakeClock, resolve_obs
from repro.core.resilience import _stable_unit
from repro.kg.datasets import DATASET_BUILDERS, Dataset
from repro.llm.faults import FaultInjectingLLM, FaultProfile, LLMTransientError
from repro.llm.prefix_cache import RadixPrefixCache
from repro.llm.registry import load_model
from repro.llm.streaming import stream_chunks
from repro.llm.tokenizer import count_tokens
from repro.llm import prompts as P
from repro.qa.multihop import generate_multihop_questions
from repro.serve.backends import CHAT_SMALLTALK
from repro.serve.gateway import Request, RequestResult
from repro.serve.loadgen import LoadReport, TrafficMix, _build_report

#: Scheduling policies the engine understands.
POLICIES = ("continuous", "run_to_completion")

#: Default decode-step time for a batch of one, in simulated seconds.
DEFAULT_STEP_TIME = 0.02
#: Default per-token prefill cost, in simulated seconds.
DEFAULT_PREFILL_TIME = 0.0004
#: Marginal iteration-cost growth per extra running stream.
DEFAULT_BATCH_GROWTH = 0.15


@dataclass(frozen=True)
class StreamRequest:
    """One streamed unit of work offered to the scheduler."""

    tenant: str
    kind: str
    prompt: str
    arrival: float
    session_id: str = ""
    max_tokens: int = 256


class _Active:
    """A stream occupying a batch slot."""

    __slots__ = ("seq", "req", "admitted", "stream", "pending", "done",
                 "error", "chunks", "emit_times", "first_token",
                 "prompt_tokens", "cached_tokens", "prefill_seconds",
                 "prefill_charged")

    def __init__(self, seq: int, req: StreamRequest, admitted: float):
        self.seq = seq
        self.req = req
        self.admitted = admitted
        self.stream = None
        self.pending: Optional[str] = None
        self.done = False
        self.error: Optional[LLMTransientError] = None
        self.chunks: List[str] = []
        self.emit_times: List[float] = []
        self.first_token: Optional[float] = None
        self.prompt_tokens = 0
        self.cached_tokens = 0
        self.prefill_seconds = 0.0
        self.prefill_charged = False


class TokenScheduler:
    """Iteration-level scheduler multiplexing streams over batch slots.

    ``max_batch`` is the simulated worker/batch width, ``queue_limit``
    bounds the waiting room (overflow is typed-rejected), ``budget`` is
    the per-request deadline from *arrival* — checked at every token
    boundary, so an expired stream is cut mid-flight with its partial
    output. Admission is FCFS with tenant fairness: among eligible
    waiting requests the tenant currently holding the fewest slots goes
    first (ties by arrival order), so one flooding tenant cannot starve
    the rest of the batch.
    """

    def __init__(self, llm, max_batch: int = 8, queue_limit: int = 64,
                 budget: float = 6.0,
                 step_time: float = DEFAULT_STEP_TIME,
                 prefill_time: float = DEFAULT_PREFILL_TIME,
                 batch_growth: float = DEFAULT_BATCH_GROWTH,
                 policy: str = "continuous",
                 prefix_cache: Optional[RadixPrefixCache] = None,
                 obs=None, clock: Optional[FakeClock] = None,
                 seed: int = 0):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if budget <= 0:
            raise ValueError("budget must be > 0")
        if step_time <= 0:
            raise ValueError("step_time must be > 0")
        if policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}")
        self.llm = llm
        self.max_batch = max_batch
        self.queue_limit = queue_limit
        self.budget = budget
        self.step_time = step_time
        self.prefill_time = prefill_time
        self.batch_growth = batch_growth
        self.policy = policy
        self.prefix_cache = prefix_cache
        self.obs = resolve_obs(obs)
        self.clock = clock
        self.seed = seed
        # Engine state.
        self._now = 0.0
        self._last_arrival = 0.0
        self._seq = 0
        self._waiting: List[Tuple[int, StreamRequest]] = []
        self._running: List[_Active] = []
        self._static_width = 0
        self._results: Dict[int, RequestResult] = {}
        # Counters (the ledger).
        self.submitted = 0
        self.streamed = 0
        self.rejected = {"queue_full": 0}
        self.completed = 0
        self.shed = 0
        self.failed = 0
        self.late = 0
        self.shed_reasons: Dict[str, int] = {}
        self.tokens_emitted = 0
        self.chunks_emitted = 0
        self.prompt_tokens_total = 0
        self.prefill_tokens_skipped = 0
        self.iterations = 0
        self.max_queue_depth = 0
        self.tier_counts: Dict[str, int] = {}
        self.tenant_tokens: Dict[str, int] = {}
        self.obs.register_source("serve.scheduler", self.stats)

    # ------------------------------------------------------------------
    # Submission API
    # ------------------------------------------------------------------
    def submit(self, tenant: str, kind: str, prompt: str, arrival: float,
               session_id: str = "", max_tokens: int = 256) -> int:
        """Offer one request; returns its sequence number.

        Arrivals must be non-decreasing. The engine first runs every
        iteration boundary that falls before ``arrival`` (eager DES),
        then either queues the request or typed-rejects it when the
        waiting room is full.
        """
        if arrival < self._last_arrival:
            raise ValueError(
                f"arrivals must be non-decreasing: {arrival} < "
                f"{self._last_arrival}")
        self._last_arrival = arrival
        self._run_until(arrival)
        self.submitted += 1
        seq = self._seq
        self._seq += 1
        req = StreamRequest(tenant=tenant, kind=kind, prompt=prompt,
                            arrival=arrival, session_id=session_id,
                            max_tokens=max_tokens)
        if len(self._waiting) >= self.queue_limit:
            self.rejected["queue_full"] += 1
            self.obs.count("serve.stream_rejected", reason="queue_full")
            self._results[seq] = RequestResult(
                request=self._request_view(seq, req), status="rejected",
                tier="stream", start=arrival, finish=arrival,
                error="queue_full")
            return seq
        self._waiting.append((seq, req))
        self.max_queue_depth = max(self.max_queue_depth, len(self._waiting))
        return seq

    def drain(self) -> List[RequestResult]:
        """Run the engine to exhaustion; returns every result so far in
        submission order."""
        self._run_until(None)
        return [self._results[seq] for seq in sorted(self._results)]

    def run(self, requests: Sequence[StreamRequest]) -> List[RequestResult]:
        """Submit a whole workload (sorted by arrival) and drain it."""
        for req in requests:
            self.submit(req.tenant, req.kind, req.prompt, req.arrival,
                        session_id=req.session_id,
                        max_tokens=req.max_tokens)
        return self.drain()

    # ------------------------------------------------------------------
    # Engine core
    # ------------------------------------------------------------------
    def _run_until(self, limit: Optional[float]) -> None:
        """Process iteration boundaries up to ``limit`` (None = drain)."""
        while self._waiting or self._running:
            self._admit()
            if self._running:
                boundary = self._now + self._iteration_cost(commit=False)
                if limit is not None and boundary > limit:
                    break
                self._iteration_cost(commit=True)
                self._now = boundary
                self._advance_clock(boundary)
                self._step(boundary)
                continue
            if not self._waiting:
                break
            # Engine idle with only future arrivals queued: jump ahead.
            upcoming = self._waiting[0][1].arrival
            if limit is not None and upcoming > limit:
                break
            if upcoming > self._now:
                self._now = upcoming
                self._advance_clock(upcoming)
        if limit is not None and self._now < limit:
            self._now = limit

    def _advance_clock(self, t: float) -> None:
        if self.clock is not None and t > self.clock.now():
            self.clock.advance(t - self.clock.now())

    def _running_count(self, tenant: str) -> int:
        return sum(1 for a in self._running if a.req.tenant == tenant)

    def _admit(self) -> None:
        """Fill free slots from the waiting room (policy-dependent)."""
        if self.policy == "run_to_completion" and self._running:
            return  # static batching: nobody joins a flying batch
        while len(self._running) < self.max_batch:
            eligible = [(seq, req) for seq, req in self._waiting
                        if req.arrival <= self._now]
            if not eligible:
                break
            # Tenant fairness: fewest running slots first, FCFS within.
            seq, req = min(
                eligible,
                key=lambda item: (self._running_count(item[1].tenant),
                                  item[0]))
            self._waiting.remove((seq, req))
            if self._now - req.arrival >= self.budget:
                # Expired while queued: shed without touching the model.
                active = _Active(seq, req, admitted=self._now)
                self.streamed += 1
                self._resolve(active, self._now, "shed", "deadline")
                continue
            self._running.append(self._start_stream(seq, req))
            self.streamed += 1
        if self.policy == "run_to_completion" and self._running:
            self._static_width = len(self._running)

    def _start_stream(self, seq: int, req: StreamRequest) -> _Active:
        """Create the upstream stream for an admitted request.

        The model call (and with it the fault-schedule index) happens
        here, in admission order; a synchronous fault (timeout/rate
        limit/malformed) marks the slot failed — it still pays its
        prefill and resolves as a fault shed at the next boundary, the
        way a real engine discovers a dead upstream call.
        """
        active = _Active(seq, req, admitted=self._now)
        if self.prefix_cache is not None:
            total, cached = self.prefix_cache.cached_prefill(req.prompt)
        else:
            total, cached = count_tokens(req.prompt), 0
        active.prompt_tokens = total
        active.cached_tokens = cached
        active.prefill_seconds = max(0, total - cached) * self.prefill_time
        self.prompt_tokens_total += total
        self.prefill_tokens_skipped += cached
        try:
            active.stream = self.llm.complete_stream(
                req.prompt, max_tokens=req.max_tokens)
            active.pending = next(active.stream)
        except StopIteration:
            active.done = True
        except LLMTransientError as exc:
            active.error = exc
        return active

    def _iteration_cost(self, commit: bool) -> float:
        """One iteration's duration: the batched decode step plus the
        prefill debt of members that joined since the last boundary.
        Under run-to-completion the width term stays at the batch's
        initial size — finished members still occupy their padded slots.
        """
        width = len(self._running)
        if self.policy == "run_to_completion":
            width = max(self._static_width, width)
        cost = self.step_time * (1.0 + self.batch_growth * (width - 1))
        for active in self._running:
            if not active.prefill_charged:
                cost += active.prefill_seconds
                if commit:
                    active.prefill_charged = True
        if commit:
            self.iterations += 1
        return cost

    def _step(self, t: float) -> None:
        """Resolve one iteration boundary at time ``t``."""
        still: List[_Active] = []
        for active in self._running:
            if active.error is None and active.pending is not None:
                chunk = active.pending
                active.chunks.append(chunk)
                active.emit_times.append(t)
                if active.first_token is None:
                    active.first_token = t
                self.chunks_emitted += 1
                self.tokens_emitted += count_tokens(chunk)
                try:
                    active.pending = next(active.stream)
                except StopIteration:
                    active.pending = None
                    active.done = True
                except LLMTransientError as exc:
                    active.pending = None
                    active.error = exc
            if active.error is not None:
                self._resolve(active, t, "shed",
                              f"fault:{active.error.kind}")
            elif active.done:
                self._resolve(active, t, "completed", "")
            elif t - active.req.arrival >= self.budget:
                if active.stream is not None:
                    active.stream.close()
                self._resolve(active, t, "shed", "deadline")
            else:
                still.append(active)
        self._running = still
        if not still:
            self._static_width = 0

    # ------------------------------------------------------------------
    # Resolution & reporting
    # ------------------------------------------------------------------
    def _request_view(self, seq: int, req: StreamRequest) -> Request:
        return Request(tenant=req.tenant, kind=req.kind,
                       question=req.prompt, arrival=req.arrival,
                       session_id=req.session_id, seq=seq)

    def _resolve(self, active: _Active, t: float, status: str,
                 reason: str) -> None:
        req = active.req
        text = "".join(active.chunks)
        n_chunks = len(active.chunks)
        ttft = (active.first_token - req.arrival
                if active.first_token is not None else 0.0)
        tpot = ((t - active.first_token) / (n_chunks - 1)
                if active.first_token is not None and n_chunks >= 2
                else 0.0)
        tokens_out = count_tokens(text)
        late = status == "completed" and (t - req.arrival) > self.budget
        result = RequestResult(
            request=self._request_view(active.seq, req), status=status,
            tier="stream", tier_index=0, answer=text,
            start=active.admitted, finish=t,
            wait=active.admitted - req.arrival,
            service=t - active.admitted, late=late, error=reason,
            chunks=tuple(active.chunks), tokens_out=tokens_out,
            ttft=ttft, tpot=tpot, prompt_tokens=active.prompt_tokens,
            cached_prefix_tokens=active.cached_tokens)
        self._results[active.seq] = result
        self.tenant_tokens[req.tenant] = (
            self.tenant_tokens.get(req.tenant, 0) + tokens_out)
        if status == "completed":
            self.completed += 1
            self.tier_counts["stream"] = self.tier_counts.get("stream", 0) + 1
            if late:
                self.late += 1
            self.obs.count("serve.streams", kind=req.kind)
            self.obs.observe("serve.ttft", ttft, kind=req.kind)
            if tpot > 0.0:
                self.obs.observe("serve.tpot", tpot, kind=req.kind)
            self.obs.observe("serve.tokens_out", tokens_out, kind=req.kind)
        else:
            self.shed += 1
            self.shed_reasons[reason] = self.shed_reasons.get(reason, 0) + 1
            self.obs.count("serve.stream_shed", reason=reason)

    def results_in_order(self) -> List[RequestResult]:
        """Resolved results so far, in submission order."""
        return [self._results[seq] for seq in sorted(self._results)]

    def stats(self) -> Dict[str, Any]:
        """All counters as one flat mapping (also an obs pull source)."""
        out: Dict[str, Any] = {
            "policy": self.policy,
            "submitted": self.submitted,
            "streamed": self.streamed,
            "admitted": self.streamed,
            "rejected_queue_full": self.rejected["queue_full"],
            "completed": self.completed,
            "shed": self.shed,
            "failed": self.failed,
            "late": self.late,
            "iterations": self.iterations,
            "chunks_emitted": self.chunks_emitted,
            "tokens_emitted": self.tokens_emitted,
            "prompt_tokens_total": self.prompt_tokens_total,
            "prefill_tokens_skipped": self.prefill_tokens_skipped,
            "max_queue_depth": self.max_queue_depth,
            "capacity": self.max_batch,
            "queue_limit": self.queue_limit,
        }
        for reason, count in sorted(self.shed_reasons.items()):
            out[f"shed_{reason.replace(':', '_')}"] = count
        if self.prefix_cache is not None:
            for key, value in self.prefix_cache.cache_stats().items():
                out[f"prefix_cache_{key}"] = value
        return out


# ---------------------------------------------------------------------------
# Streaming workload construction
# ---------------------------------------------------------------------------

#: The streaming serving mix: verbalization/summarization produce long
#: outputs (where streaming shines), QA/chat keep the short-answer and
#: conversational traffic in the blend.
STREAM_MIXES: Dict[str, TrafficMix] = {
    "stream": TrafficMix(
        "stream",
        kinds=(("kg2text", 3.0), ("summarize", 3.0), ("qa", 2.0),
               ("chat", 2.0)),
        tenants=(("tenant-a", 3.0), ("tenant-b", 2.0), ("tenant-c", 1.0))),
}


def _relational_triples(kg, limit: int):
    """The first ``limit`` relational facts in store order (label/type
    bookkeeping predicates excluded) — the deterministic raw material for
    shared few-shot preambles."""
    skip_markers = ("rdf-syntax", "rdf-schema", "owl#")
    picked = []
    for triple in kg.store.match(None, None, None):
        predicate = str(triple.predicate)
        if any(marker in predicate for marker in skip_markers):
            continue
        picked.append(triple)
        if len(picked) >= limit:
            break
    return picked


def stream_prompt_pool(data: Dataset, seed: int = 0,
                       n_questions: int = 12) -> Dict[str, List[str]]:
    """Per-kind prompt lists with deliberately shared preambles.

    Every prompt of a kind opens with the same Task/Facts/Examples/
    Instructions sections and differs only in its trailing Question/
    Triples/Text — the structure :mod:`repro.llm.prompts` gives all our
    pipelines, and exactly what a radix prefix cache exploits.
    """
    kg = data.kg
    facts_pool = _relational_triples(kg, 40)
    shared_facts = [kg.verbalize_triple(t) for t in facts_pool[:10]]
    questions = [q.text for q in generate_multihop_questions(
        data, n=n_questions, hops=1, seed=seed)]
    if not questions:
        questions = ["What is in the knowledge graph?"]

    def linearize(triples):
        return " ; ".join(
            f"{kg.label(t.subject)} | {kg.label(t.predicate)} | "
            f"{kg.label(t.object)}" for t in triples)

    examples = []
    for i in range(2):
        window = facts_pool[i * 2:i * 2 + 2]
        if window:
            examples.append((linearize(window), kg.verbalize(window)))

    kg2text: List[str] = []
    for i in range(8):
        window = facts_pool[10 + i * 3:10 + i * 3 + 3]
        if not window:
            window = facts_pool[:3]
        kg2text.append(P.kg2text_prompt(
            [(kg.label(t.subject), kg.label(t.predicate),
              kg.label(t.object)) for t in window],
            examples=examples))

    summarize: List[str] = []
    for i in range(8):
        lo = (i * 4) % max(1, len(facts_pool) - 6)
        passage = kg.verbalize(facts_pool[lo:lo + 6]) or \
            "The knowledge graph is empty."
        summarize.append(P.summarization_prompt(passage, focus=data.name))

    qa = [P.qa_prompt(q, facts=shared_facts) for q in questions]
    chat_msgs = list(CHAT_SMALLTALK) + questions
    chat = [P.chat_prompt(m, facts=shared_facts) for m in chat_msgs]
    return {"kg2text": kg2text, "summarize": summarize, "qa": qa,
            "chat": chat}


def _probe_workload(pool: Dict[str, List[str]], mix: TrafficMix,
                    data: Dataset, seed: int,
                    step_time: float, prefill_time: float,
                    batch_growth: float, max_batch: int) -> Dict[str, float]:
    """Calibrate the sustainable request rate for a mix over a pool.

    A fresh probe model (never the serving one — its call counters and
    fault indices must stay untouched) completes each pool prompt once;
    the kind-weighted mean decode steps and prompt tokens give the
    per-request busy time at full batch width, whose inverse is the
    capacity in requests/second.
    """
    probe = load_model("chatgpt", world=data.kg, seed=seed)
    total_weight = sum(w for _, w in mix.kinds)
    mean_steps = 0.0
    mean_prompt_tokens = 0.0
    for kind, weight in mix.kinds:
        prompts = pool[kind]
        steps = [len(stream_chunks(probe.complete(p).text))
                 for p in prompts]
        mean_steps += (weight / total_weight) * (sum(steps) / len(steps))
        mean_prompt_tokens += (weight / total_weight) * (
            sum(count_tokens(p) for p in prompts) / len(prompts))
    per_step = step_time * (1.0 + batch_growth * (max_batch - 1)) / max_batch
    busy = mean_steps * per_step + mean_prompt_tokens * prefill_time
    return {"mean_steps": mean_steps,
            "mean_prompt_tokens": mean_prompt_tokens,
            "capacity_rps": 1.0 / busy if busy > 0 else 0.0}


def build_stream_requests(pool: Dict[str, List[str]], mix: TrafficMix,
                          rate: float, n_requests: int,
                          seed: int = 0) -> List[StreamRequest]:
    """A deterministic open-loop Poisson arrival stream over the pool."""
    if rate <= 0:
        raise ValueError("rate must be > 0")
    requests: List[StreamRequest] = []
    now = 0.0
    for index in range(n_requests):
        unit = _stable_unit(str(seed), mix.name, "arrival", str(index))
        now += -math.log(1.0 - unit) / rate
        kind = mix.pick(mix.kinds,
                        _stable_unit(str(seed), mix.name, "kind",
                                     str(index)))
        tenant = mix.pick(mix.tenants,
                          _stable_unit(str(seed), mix.name, "tenant",
                                       str(index)))
        prompts = pool[kind]
        pick = int(_stable_unit(str(seed), mix.name, "prompt",
                                str(index)) * len(prompts)) % len(prompts)
        requests.append(StreamRequest(
            tenant=tenant, kind=kind, prompt=prompts[pick], arrival=now,
            session_id=f"{tenant}:s{index % 4}"))
    return requests


def streaming_experiment(dataset: str = "enterprise",
                         mix_name: str = "stream",
                         policy: str = "continuous",
                         max_batch: int = 8, load_factor: float = 1.0,
                         n_requests: int = 160, seed: int = 0,
                         queue_limit: int = 64, budget: float = 4.0,
                         step_time: float = DEFAULT_STEP_TIME,
                         prefill_time: float = DEFAULT_PREFILL_TIME,
                         batch_growth: float = DEFAULT_BATCH_GROWTH,
                         fault_rate: float = 0.0,
                         prefix_cache: bool = True,
                         llm=None, obs=None) -> LoadReport:
    """One open-loop streaming replay at ``load_factor`` × capacity.

    Mirrors :func:`repro.serve.loadgen.overload_experiment` for the
    token path: fresh dataset/model/scheduler per call, arrivals at
    ``load_factor`` times the calibrated sustainable rate, and a
    :class:`~repro.serve.loadgen.LoadReport` carrying the streaming
    aggregates (TTFT/TPOT percentiles, tokens/sec, the stream ledger).
    """
    data = DATASET_BUILDERS[dataset](seed=seed)
    obs = resolve_obs(obs)
    if llm is None:
        llm = load_model("chatgpt", world=data.kg, seed=seed)
        if fault_rate:
            llm = FaultInjectingLLM(
                llm, FaultProfile.uniform(fault_rate, seed=seed))
    mix = STREAM_MIXES[mix_name]
    pool = stream_prompt_pool(data, seed=seed)
    calibration = _probe_workload(pool, mix, data, seed, step_time,
                                  prefill_time, batch_growth, max_batch)
    cache = None
    if prefix_cache:
        cache = RadixPrefixCache(version=("kg", data.kg.store.version))
    clock = obs.clock if isinstance(getattr(obs, "clock", None),
                                    FakeClock) else None
    scheduler = TokenScheduler(
        llm, max_batch=max_batch, queue_limit=queue_limit, budget=budget,
        step_time=step_time, prefill_time=prefill_time,
        batch_growth=batch_growth, policy=policy, prefix_cache=cache,
        obs=obs, clock=clock, seed=seed)
    rate = load_factor * calibration["capacity_rps"]
    requests = build_stream_requests(pool, mix, rate, n_requests,
                                     seed=seed)
    results = scheduler.run(requests)
    report = _build_report(mix.name, f"stream-{policy}", scheduler, results)
    report.gateway_stats["capacity_rps"] = round(
        calibration["capacity_rps"], 6)
    report.gateway_stats["offered_rps"] = round(rate, 6)
    report.gateway_stats["mean_steps"] = round(
        calibration["mean_steps"], 6)
    return report
