"""Tier ladders wiring the QA pipelines into the serving gateway.

Each request kind gets an ordered degradation ladder of
:class:`~repro.serve.gateway.TierStep` handlers over *shared* pipeline
instances (one GraphRAG index, one RAG index, one text2sparql system,
one bounded session store — the point of a gateway is multiplexing many
clients over them):

========  =======================  ====================  =============
kind      tier 0 (full fidelity)   tier 1 (degraded)     tier 2 (busy)
========  =======================  ====================  =============
graphrag  strict global map-reduce RAG over documents    static notice
rag       retrieval + generation   closed-book answer    static notice
sparql    draft → repair → execute KG path reasoning     static notice
chat      stateful dialogue        stateless closed-book static notice
agent     multi-step ReAct episode single-shot local RAG static notice
========  =======================  ====================  =============

Tier-0 handlers are *strict*: a degraded result raises a transient
error instead of passing itself off as healthy, so the gateway's
breaker sees real failures and pressure-based tier selection composes
with fault-driven fallthrough. The terminal tier never fails.

Simulated service costs per tier are the base seconds the gateway
charges (jittered per request); they are deliberately ordered
``tier 0 > tier 1 >> busy`` so degradation actually buys capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.agent.loop import GraphAgent
from repro.core.observability import resolve_obs
from repro.enhanced.graph_rag import GraphRAG
from repro.enhanced.rag import NaiveRAG
from repro.kg.datasets import DATASET_BUILDERS, Dataset
from repro.kg.triples import IRI
from repro.llm.faults import LLMTransientError
from repro.llm.model import SimulatedLLM
from repro.llm.registry import load_model
from repro.qa.chatbot import KGChatbot
from repro.qa.multihop import generate_multihop_questions
from repro.qa.text2sparql import (ResilientText2SparqlQA, SparqlGenText2Sparql,
                                  Text2SparqlTask)
from repro.serve.gateway import Request, TierStep
from repro.serve.session import SessionStore

#: What the terminal tier returns — an answer in the protocol sense only.
BUSY_MESSAGE = ("The system is experiencing heavy load. Your request was "
                "not fully processed - please retry in a moment.")

#: Base simulated service seconds per (kind, tier).
TIER_COSTS: Dict[str, Sequence[float]] = {
    "graphrag": (0.8, 0.3, 0.02),
    "rag": (0.35, 0.12, 0.02),
    "sparql": (0.45, 0.2, 0.02),
    "chat": (0.3, 0.12, 0.02),
    # Multi-step episodes are the most expensive full-fidelity tier in
    # the ladder — several LLM decisions plus tool fan-out per request.
    "agent": (1.2, 0.35, 0.02),
}

#: Global questions for the graphrag workload (query-focused map-reduce).
GLOBAL_QUESTIONS = (
    "What are the main themes of this dataset?",
    "Summarize the most connected entities and how they relate.",
    "What are the dominant relationships in the knowledge graph?",
    "Which communities of entities stand out, and why?",
)

#: Conversational filler for the chat workload's non-factual turns.
CHAT_SMALLTALK = (
    "hello there",
    "thanks for the help",
    "tell me something interesting",
    "good morning",
)


@dataclass
class ServingBackends:
    """The shared pipeline fleet behind one gateway."""

    dataset: Dataset
    llm: SimulatedLLM
    rag: NaiveRAG
    graph_rag: GraphRAG
    sparql_qa: ResilientText2SparqlQA
    sessions: SessionStore
    agent: Optional[GraphAgent] = None
    handlers: Dict[str, List[TierStep]] = field(default_factory=dict)
    #: The ReplicatedShardedTripleStore when ``replicas > 0`` (else None);
    #: benches and the CLI reach through this for partition control and
    #: replication stats.
    replicated: Optional[object] = None


def _labels(dataset: Dataset, answers) -> str:
    """Render an IRI answer set as a reply string."""
    entities = sorted(a for a in answers if isinstance(a, IRI))
    if not entities:
        return "no results found in the knowledge graph"
    return ", ".join(dataset.kg.label(e) for e in entities)


def build_backends(dataset: str = "enterprise", seed: int = 0,
                   llm: Optional[SimulatedLLM] = None,
                   session_capacity: int = 32, max_history: int = 8,
                   obs=None, shards: int = 0, replicas: int = 0,
                   transport_profile=None) -> ServingBackends:
    """Build the shared pipelines and their tier ladders for one gateway.

    ``llm`` defaults to a chatgpt-profile model absorbed on the dataset's
    KG; pass a :class:`~repro.llm.faults.FaultInjectingLLM` wrapper to
    run the same ladders under chaos. Indexes (RAG chunks, GraphRAG
    communities) are built up front so serving-time costs are pure
    query-path costs. ``shards > 0`` re-homes the dataset's triples onto
    a hash-sharded store *before* any index builds — byte-identical
    semantics (the sharded façade preserves the full store contract),
    but reads invalidate per shard and the chaos suite exercises the
    fan-out paths. ``replicas > 0`` instead re-homes onto a
    :class:`~repro.kg.replication.ReplicatedShardedTripleStore`
    (``shards`` or the default shard count × ``replicas``) behind the
    simulated shard transport: tier-0 handlers then run under *strict*
    read consistency (a stale or unavailable shard raises and falls
    through the ladder) while degraded tiers tolerate stale reads —
    partition-tolerant serving instead of partition-blind serving.
    """
    obs = resolve_obs(obs)
    data = DATASET_BUILDERS[dataset](seed=seed)
    replicated = None
    if replicas > 0:
        from repro.kg.replication import ReplicatedShardedTripleStore
        from repro.kg.sharding import DEFAULT_SHARDS
        replicated = ReplicatedShardedTripleStore(
            data.kg.store, shards=shards or DEFAULT_SHARDS,
            replicas=replicas, profile=transport_profile, obs=obs)
        data.kg.store = replicated
    elif shards > 0:
        from repro.kg.sharding import ShardedTripleStore
        data.kg.store = ShardedTripleStore(data.kg.store, shards=shards)

    def consistency(mode):
        """Run a tier handler under one read-consistency mode (no-op
        without a replicated store)."""
        def wrap(fn):
            if replicated is None:
                return fn
            def handler(request: Request):
                with replicated.reads_consistency(mode):
                    return fn(request)
            return handler
        return wrap

    strict_reads = consistency("strict")
    stale_ok_reads = consistency("stale_ok")
    model = llm if llm is not None else load_model("chatgpt", world=data.kg,
                                                   seed=seed)
    rag = NaiveRAG(model, cache=True, obs=obs)
    rag.index_documents(data.metadata.get("documents", []))
    graph = GraphRAG(model, data.kg, cache=True, obs=obs)
    graph.build()
    task = Text2SparqlTask(data, n=8, seed=seed)
    sparql_qa = ResilientText2SparqlQA(SparqlGenText2Sparql(model, task),
                                       task, model)
    sessions = SessionStore(
        lambda tenant, session_id: KGChatbot(model, data.kg, sparql_qa,
                                             max_history=max_history),
        max_sessions=session_capacity)
    if obs.enabled:
        obs.register_source("serve.sessions", sessions.cache_stats)

    def graphrag_full(request: Request):
        return graph.answer_global_strict(request.question)

    def graphrag_degraded(request: Request):
        return rag.answer(request.question)

    def rag_full(request: Request):
        answer, report = rag.answer_with_report(request.question)
        if report.degraded:
            raise LLMTransientError("rag pipeline degraded")
        return answer

    def rag_degraded(request: Request):
        return rag.closed_book_answer(request.question)

    def sparql_full(request: Request):
        answers, route = sparql_qa.answer_with_route(request.question)
        if route != "sparql":
            raise LLMTransientError(f"structured querying degraded "
                                    f"to {route}")
        return _labels(data, answers)

    def sparql_degraded(request: Request):
        try:
            return _labels(data, sparql_qa.path_fallback.answer(
                request.question))
        except LLMTransientError:
            return "no results found in the knowledge graph"

    agent = GraphAgent(model, data.kg, max_steps=8, obs=obs)

    def agent_full(request: Request):
        # The session is pinned for the whole episode: the LRU must not
        # evict (and thereby reset) a dialogue that an in-flight
        # multi-step episode is appending observations to.
        with sessions.pin(request.tenant,
                          request.session_id or "default") as session:
            trace = agent.run(request.question)
            for step in trace.steps:
                if step.observation is not None:
                    session.record_observation(
                        f"[{step.tool or 'agent'}] {step.observation}")
            if trace.degraded:
                raise LLMTransientError(
                    "agent episode degraded "
                    f"({sum(1 for s in trace.steps if s.fault)} faulted "
                    "steps)")
            return trace.final_answer

    def agent_degraded(request: Request):
        return graph.answer_local(request.question)

    def chat_full(request: Request):
        session = sessions.get(request.tenant,
                               request.session_id or "default")
        turn = session.chat(request.question)
        if turn.degraded:
            raise LLMTransientError("dialogue turn degraded")
        return turn.reply

    def chat_stateless(request: Request):
        return rag.closed_book_answer(request.question)

    def busy(request: Request) -> str:
        return BUSY_MESSAGE

    costs = TIER_COSTS
    # Tier 0 runs strict (a stale/unavailable shard is a *failure* the
    # breaker and ladder should see); degraded tiers tolerate stale reads
    # — serving a slightly old answer beats the busy message. The busy
    # tier reads nothing.
    handlers = {
        "graphrag": [
            TierStep("graphrag", costs["graphrag"][0],
                     strict_reads(graphrag_full)),
            TierStep("rag", costs["graphrag"][1],
                     stale_ok_reads(graphrag_degraded)),
            TierStep("busy", costs["graphrag"][2], busy),
        ],
        "rag": [
            TierStep("rag", costs["rag"][0], strict_reads(rag_full)),
            TierStep("closed-book", costs["rag"][1],
                     stale_ok_reads(rag_degraded)),
            TierStep("busy", costs["rag"][2], busy),
        ],
        "sparql": [
            TierStep("sparql", costs["sparql"][0],
                     strict_reads(sparql_full)),
            TierStep("path", costs["sparql"][1],
                     stale_ok_reads(sparql_degraded)),
            TierStep("busy", costs["sparql"][2], busy),
        ],
        "chat": [
            TierStep("chat", costs["chat"][0], strict_reads(chat_full)),
            TierStep("stateless", costs["chat"][1],
                     stale_ok_reads(chat_stateless)),
            TierStep("busy", costs["chat"][2], busy),
        ],
        "agent": [
            TierStep("agent", costs["agent"][0], strict_reads(agent_full)),
            TierStep("single-shot", costs["agent"][1],
                     stale_ok_reads(agent_degraded)),
            TierStep("busy", costs["agent"][2], busy),
        ],
    }
    return ServingBackends(dataset=data, llm=model, rag=rag, graph_rag=graph,
                           sparql_qa=sparql_qa, sessions=sessions,
                           agent=agent, handlers=handlers,
                           replicated=replicated)


def question_pool(dataset: Dataset, seed: int = 0,
                  n_factual: int = 12) -> Dict[str, List[str]]:
    """Deterministic per-kind question lists for load generation."""
    factual = [q.text for q in generate_multihop_questions(
        dataset, n=n_factual, hops=1, seed=seed)]
    if not factual:  # tiny KGs: keep every kind non-empty
        factual = ["What is in the knowledge graph?"]
    chat: List[str] = []
    for index, question in enumerate(factual):
        chat.append(CHAT_SMALLTALK[index % len(CHAT_SMALLTALK)])
        chat.append(question)
    multihop = [q.text for q in generate_multihop_questions(
        dataset, n=max(4, n_factual // 2), hops=2, seed=seed)]
    return {
        "graphrag": list(GLOBAL_QUESTIONS),
        "rag": list(factual),
        "sparql": list(factual),
        "chat": chat,
        "agent": multihop or list(factual),
    }
