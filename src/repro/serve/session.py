"""Bounded per-client session state for the chatbot workload.

A chatbot service keeps a dialogue manager per ``(tenant, session)`` —
and a service facing "millions of users" cannot keep them all.
:class:`SessionStore` bounds the live set with LRU eviction: an evicted
session simply restarts its dialogue on the next turn (the graceful
failure mode — stale context, not an OOM). Stats follow the repo's
canonical cache schema so the store binds straight into ``repro obs
report`` via :func:`~repro.core.observability.cache_stats_dict`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, Tuple

from repro.core.observability import cache_stats_dict


class SessionStore:
    """LRU-bounded map of ``(tenant, session_id)`` → session object.

    ``factory(tenant, session_id)`` builds a fresh session on miss —
    typically a :class:`~repro.qa.chatbot.KGChatbot` with its own
    ``max_history`` bound, so memory is bounded on *both* axes: number
    of live sessions here, transcript length inside each session.
    """

    def __init__(self, factory: Callable[[str, str], Any],
                 max_sessions: int = 64):
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        self._factory = factory
        self.max_sessions = max_sessions
        self._sessions: "OrderedDict[Tuple[str, str], Any]" = OrderedDict()
        self._pinned: Dict[Tuple[str, str], int] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, tenant: str, session_id: str) -> Any:
        """The live session for the key, creating (and evicting) as needed."""
        key = (tenant, session_id)
        with self._lock:
            session = self._sessions.get(key)
            if session is not None:
                self.hits += 1
                self._sessions.move_to_end(key)
                return session
            self.misses += 1
            self._evict_locked()
        # Build outside the lock: factories may be arbitrarily heavy.
        session = self._factory(tenant, session_id)
        with self._lock:
            existing = self._sessions.get(key)
            if existing is not None:
                return existing
            self._evict_locked()
            self._sessions[key] = session
            return session

    def _evict_locked(self) -> None:
        """Drop oldest *unpinned* sessions until under capacity.

        A key pinned by an in-flight episode must not restart mid-flight,
        so eviction skips it; with every resident session pinned the
        store runs temporarily over capacity rather than break one.
        """
        while len(self._sessions) >= self.max_sessions:
            victim = next((key for key in self._sessions
                           if key not in self._pinned), None)
            if victim is None:
                return
            del self._sessions[victim]
            self.evictions += 1

    @contextmanager
    def pin(self, tenant: str, session_id: str) -> Iterator[Any]:
        """Hold the key's session across a multi-step episode.

        Yields the live session (creating it as on :meth:`get`) and
        guarantees it stays resident — LRU eviction passes over pinned
        keys — until the context exits. Pins are re-entrant refcounts, so
        overlapping episodes on one session compose.
        """
        key = (tenant, session_id)
        with self._lock:
            self._pinned[key] = self._pinned.get(key, 0) + 1
        try:
            yield self.get(tenant, session_id)
        finally:
            with self._lock:
                remaining = self._pinned.get(key, 0) - 1
                if remaining > 0:
                    self._pinned[key] = remaining
                else:
                    self._pinned.pop(key, None)

    def pinned(self) -> int:
        """The number of currently pinned keys (observability surface)."""
        with self._lock:
            return len(self._pinned)

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, key: Tuple[str, str]) -> bool:
        return key in self._sessions

    def cache_stats(self) -> Dict[str, float]:
        """Canonical cache-stats mapping (binds as an obs pull source)."""
        with self._lock:
            return cache_stats_dict(hits=self.hits, misses=self.misses,
                                    evictions=self.evictions,
                                    size=len(self._sessions),
                                    max_size=self.max_sessions)
