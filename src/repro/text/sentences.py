"""Sentence segmentation (the first stage of KG-GPT and of RAG chunking)."""

from __future__ import annotations

import re
from typing import List

_BOUNDARY = re.compile(r"(?<=[.!?])\s+")

#: Abbreviations that should not end a sentence.
_ABBREVIATIONS = {"dr.", "mr.", "mrs.", "ms.", "prof.", "e.g.", "i.e.", "etc.", "vs."}


def split_sentences(text: str) -> List[str]:
    """Split text into sentences, keeping common abbreviations intact."""
    raw_parts = _BOUNDARY.split(text.strip())
    sentences: List[str] = []
    buffer = ""
    for part in raw_parts:
        candidate = f"{buffer} {part}".strip() if buffer else part
        last_word = candidate.rsplit(" ", 1)[-1].lower()
        if last_word in _ABBREVIATIONS:
            buffer = candidate
        else:
            if candidate:
                sentences.append(candidate)
            buffer = ""
    if buffer:
        sentences.append(buffer)
    return [s for s in sentences if s]
