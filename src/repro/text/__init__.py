"""Text substrate: KG-aligned corpus generation and sentence utilities.

Extraction experiments need text with *gold* entity and relation
annotations. Instead of shipping Wikipedia, we generate sentences from KG
triples through surface templates (with controllable paraphrase variation),
so every sentence carries its gold entities and triples by construction.
"""

from repro.text.corpus import (
    AnnotatedSentence,
    ExtractionCorpus,
    generate_extraction_corpus,
    generate_document,
)
from repro.text.sentences import split_sentences

__all__ = [
    "AnnotatedSentence",
    "ExtractionCorpus",
    "generate_extraction_corpus",
    "generate_document",
    "split_sentences",
]
