"""KG-aligned corpus generation.

Every sentence is produced from one or more KG triples through a surface
template, so the corpus carries its own gold annotations: entity mentions
with types, and the triples a perfect relation extractor should recover.
A ``variation`` knob swaps in paraphrase templates whose relation phrasing
differs from the canonical verbalization — these are the "hard" instances
that separate the extraction methods in E-RE/E-NER.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.kg.datasets import Dataset
from repro.kg.graph import KnowledgeGraph, _humanize_relation
from repro.kg.triples import IRI, Literal, OWL, RDF, RDFS, Triple


@dataclass
class AnnotatedSentence:
    """One generated sentence with its gold annotations."""

    text: str
    entities: List[Tuple[str, str]]            # (mention, type label)
    triples: List[Tuple[str, str, str]]        # (subject, relation, object) labels
    source_triples: List[Triple] = field(default_factory=list)
    is_paraphrase: bool = False


@dataclass
class ExtractionCorpus:
    """A list of annotated sentences with a deterministic split helper."""

    sentences: List[AnnotatedSentence]
    entity_types: List[str]
    relations: List[str]

    def split(self, train_fraction: float = 0.5
              ) -> Tuple[List[AnnotatedSentence], List[AnnotatedSentence]]:
        """Deterministic (train, test) split preserving order."""
        cut = int(len(self.sentences) * train_fraction)
        return self.sentences[:cut], self.sentences[cut:]

    def __len__(self) -> int:
        return len(self.sentences)


#: Paraphrase templates per relation *phrase*; ``{s}``/``{o}`` are slots.
_PARAPHRASES: Dict[str, List[str]] = {
    "born in": ["{o} is the birthplace of {s}.", "{s}, a native of {o}, grew up there."],
    "directed by": ["{o} directed {s}.", "{s} is a film by {o}."],
    "starring": ["{o} appears in {s}.", "{o} has a leading role in {s}."],
    "works for": ["{s} is employed by {o}.", "{s} is on the payroll of {o}."],
    "located in": ["{s} lies within {o}.", "{s} can be found in {o}."],
    "citizen of": ["{s} holds citizenship of {o}."],
    "educated at": ["{s} studied at {o}.", "{s} is an alumnus of {o}."],
    "founded by": ["{o} established {s}.", "{s} was started by {o}."],
    "has genre": ["{s} belongs to the {o} genre."],
    "caused by": ["{o} is the cause of {s}."],
    "has symptom": ["{o} is a common symptom of {s}.", "Patients with {s} often report {o}."],
    "treated by": ["{o} is used to treat {s}."],
    "prevented by": ["{o} protects against {s}."],
    "spouse": ["{s} is married to {o}."],
    "parent of": ["{o} is a child of {s}."],
    "headquartered in": ["{s} has its headquarters in {o}."],
    "works in": ["{s} belongs to the {o} team."],
    "assigned to": ["{s} contributes to {o}."],
}

_SCHEMA_PREDICATES = {RDFS.label, RDFS.comment, RDF.type}


def _instance_triples(kg: KnowledgeGraph) -> List[Triple]:
    """Triples describing instances: no schema, labels, or type statements."""
    out = []
    for triple in kg.store:
        if triple.predicate in _SCHEMA_PREDICATES:
            continue
        if triple.predicate.value.startswith(RDFS.prefix) or \
                triple.predicate.value.startswith(OWL.prefix):
            continue
        if kg.store.match(triple.subject, RDF.type, OWL.Class):
            continue
        if kg.store.match(triple.subject, RDF.type, OWL.ObjectProperty):
            continue
        out.append(triple)
    return out


def _type_label(kg: KnowledgeGraph, entity: IRI) -> str:
    labels = [kg.label(t) for t in kg.types(entity)
              if t.value.split("/")[-1] not in ("Class", "ObjectProperty")]
    if not labels:
        return "Entity"
    return max(labels, key=len)  # the most specific-looking type


def generate_extraction_corpus(dataset: Dataset, n_sentences: int = 200,
                               seed: int = 0, variation: float = 0.25,
                               max_triples_per_sentence: int = 1) -> ExtractionCorpus:
    """Generate an annotated corpus from a dataset's instance triples.

    With probability ``variation`` a paraphrase template is used (when one
    exists for the relation); otherwise the canonical verbalization. Gold
    triples are attached either way — paraphrases are the instances where
    surface form and canonical phrasing diverge.
    """
    rng = random.Random(seed)
    kg = dataset.kg
    pool = [t for t in _instance_triples(kg) if isinstance(t.object, IRI)]
    pool.sort(key=lambda t: t.n3())
    rng.shuffle(pool)
    sentences: List[AnnotatedSentence] = []
    entity_types: Dict[str, None] = {}
    relations: Dict[str, None] = {}
    index = 0
    while len(sentences) < n_sentences and index < len(pool):
        batch = pool[index:index + max_triples_per_sentence]
        index += max_triples_per_sentence
        parts: List[str] = []
        entities: List[Tuple[str, str]] = []
        gold: List[Tuple[str, str, str]] = []
        used_paraphrase = False
        for triple in batch:
            subject_label = kg.label(triple.subject)
            object_label = kg.label(triple.object)
            relation_label = kg.label(triple.predicate)
            relation_phrase = _humanize_relation(relation_label)
            candidates = _PARAPHRASES.get(relation_phrase)
            if candidates and rng.random() < variation:
                template = candidates[rng.randrange(len(candidates))]
                parts.append(template.format(s=subject_label, o=object_label))
                used_paraphrase = True
            else:
                parts.append(f"{subject_label} {relation_phrase} {object_label}.")
            subject_type = _type_label(kg, triple.subject)
            object_type = _type_label(kg, triple.object)  # type: ignore[arg-type]
            entities.append((subject_label, subject_type))
            entities.append((object_label, object_type))
            gold.append((subject_label, relation_label, object_label))
            entity_types.setdefault(subject_type, None)
            entity_types.setdefault(object_type, None)
            relations.setdefault(relation_label, None)
        sentences.append(AnnotatedSentence(
            text=" ".join(parts),
            entities=_dedupe(entities),
            triples=gold,
            source_triples=list(batch),
            is_paraphrase=used_paraphrase,
        ))
    return ExtractionCorpus(
        sentences=sentences,
        entity_types=sorted(entity_types),
        relations=sorted(relations),
    )


def generate_document(dataset: Dataset, subject: IRI, seed: int = 0) -> str:
    """A short prose 'article' about one entity — input for RAG indexing."""
    rng = random.Random(seed ^ hash(subject.value) & 0xFFFF)
    kg = dataset.kg
    sentences: List[str] = []
    description = kg.description(subject)
    if description:
        sentences.append(description)
    for triple in kg.outgoing(subject):
        if triple.predicate in _SCHEMA_PREDICATES:
            continue
        sentences.append(kg.verbalize_triple(triple))
    for triple in kg.incoming(subject)[:5]:
        sentences.append(kg.verbalize_triple(triple))
    rng.shuffle(sentences)
    return " ".join(sentences)


def _dedupe(pairs: Sequence[Tuple[str, str]]) -> List[Tuple[str, str]]:
    seen: Dict[Tuple[str, str], None] = {}
    for pair in pairs:
        seen.setdefault(pair, None)
    return list(seen)
