"""A word-level tokenizer with a trainable vocabulary.

Real LLM stacks use subword tokenizers; for the simulator a regex word
tokenizer is sufficient — token *counts* drive the usage accounting and the
vocabulary drives the n-gram model and hash embeddings.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Dict, Iterable, List, Optional

_TOKEN_RE = re.compile(r"[A-Za-z0-9_'-]+|[^\sA-Za-z0-9_]")

#: Special tokens every vocabulary reserves.
PAD, UNK, BOS, EOS = "<pad>", "<unk>", "<bos>", "<eos>"


def word_tokens(text: str, lowercase: bool = True) -> List[str]:
    """Split text into word and punctuation tokens."""
    tokens = _TOKEN_RE.findall(text)
    if lowercase:
        tokens = [t.lower() for t in tokens]
    return tokens


def count_tokens(text: str) -> int:
    """The number of tokens in ``text`` (the unit of usage accounting)."""
    return len(word_tokens(text, lowercase=False))


class WordTokenizer:
    """Tokenizer + integer vocabulary.

    ``fit`` builds the vocabulary from a corpus (keeping the ``max_vocab``
    most frequent types); unseen tokens encode to the ``<unk>`` id.
    """

    def __init__(self, lowercase: bool = True, max_vocab: Optional[int] = None):
        self.lowercase = lowercase
        self.max_vocab = max_vocab
        self.token_to_id: Dict[str, int] = {}
        self.id_to_token: List[str] = []
        for special in (PAD, UNK, BOS, EOS):
            self._add(special)

    def _add(self, token: str) -> int:
        if token not in self.token_to_id:
            self.token_to_id[token] = len(self.id_to_token)
            self.id_to_token.append(token)
        return self.token_to_id[token]

    def fit(self, corpus: Iterable[str]) -> "WordTokenizer":
        """Build the vocabulary from an iterable of documents."""
        counts: Counter = Counter()
        for document in corpus:
            counts.update(word_tokens(document, self.lowercase))
        budget = None if self.max_vocab is None else max(0, self.max_vocab - len(self.id_to_token))
        for token, _ in counts.most_common(budget):
            self._add(token)
        return self

    @property
    def vocab_size(self) -> int:
        """Number of known token types (including specials)."""
        return len(self.id_to_token)

    def tokenize(self, text: str) -> List[str]:
        """Text → token strings."""
        return word_tokens(text, self.lowercase)

    def encode(self, text: str, add_bos_eos: bool = False) -> List[int]:
        """Text → token ids (``<unk>`` for out-of-vocabulary types)."""
        unk = self.token_to_id[UNK]
        ids = [self.token_to_id.get(t, unk) for t in self.tokenize(text)]
        if add_bos_eos:
            return [self.token_to_id[BOS]] + ids + [self.token_to_id[EOS]]
        return ids

    def decode(self, ids: Iterable[int]) -> str:
        """Token ids → space-joined text (specials dropped)."""
        specials = {self.token_to_id[s] for s in (PAD, BOS, EOS)}
        return " ".join(self.id_to_token[i] for i in ids if i not in specials)
