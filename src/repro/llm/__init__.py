"""The simulated-LLM substrate.

The paper's LLM side is GPT-3/ChatGPT/BERT/T5 behind paid APIs or GPUs.
This package substitutes a **deterministic, offline language-model
simulator** that actually *performs* the tasks the surveyed architectures
delegate to an LLM — entity/relation extraction, triple verbalization and
verification, question answering, SPARQL drafting, summarization — against a
bounded internal "parametric memory", with controllable error knobs
(hallucination rate, knowledge coverage, parameter-count scaling). The
architectures around the model (prompting strategies, retrieval, fine-tuning
loops, rerankers) are then exercised exactly as they would be with a real
model, and the *relative* results the survey reports are preserved.

See DESIGN.md §1 for the substitution argument.
"""

from repro.llm.tokenizer import WordTokenizer
from repro.llm.embedding import HashEmbedder, TextEncoder, cosine_similarity
from repro.llm.ngram import NGramLanguageModel
from repro.llm.model import (SimulatedLLM, LLMConfig, LLMResponse,
                             ChatMessage, complete_all)
from repro.llm.batch import BatchOutcome, resilient_complete_all
from repro.llm.caching import CachingLLM, maybe_cached
from repro.llm.faults import (
    FaultInjectingLLM,
    FaultProfile,
    LLMMalformedOutputError,
    LLMRateLimitError,
    LLMTimeoutError,
    LLMTransientError,
    LLMTruncatedOutputError,
)
from repro.llm.prefix_cache import RadixPrefixCache
from repro.llm.registry import MODEL_PROFILES, load_model
from repro.llm.streaming import (drain_stream, drain_stream_partial,
                                 replay_stream, stream_chunks)

__all__ = [
    "WordTokenizer",
    "HashEmbedder",
    "TextEncoder",
    "cosine_similarity",
    "NGramLanguageModel",
    "SimulatedLLM",
    "LLMConfig",
    "LLMResponse",
    "ChatMessage",
    "complete_all",
    "BatchOutcome",
    "resilient_complete_all",
    "CachingLLM",
    "maybe_cached",
    "FaultInjectingLLM",
    "FaultProfile",
    "LLMTransientError",
    "LLMTimeoutError",
    "LLMRateLimitError",
    "LLMTruncatedOutputError",
    "LLMMalformedOutputError",
    "MODEL_PROFILES",
    "RadixPrefixCache",
    "drain_stream",
    "drain_stream_partial",
    "load_model",
    "replay_stream",
    "stream_chunks",
]
