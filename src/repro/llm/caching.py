"""A memoizing wrapper around the simulated LLM.

Every retrieval-backed architecture in this repo (RAG variants, GraphRAG
map-reduce, KAPING-style QA) re-issues identical prompts: the same question
asked twice, the same community report re-summarized, the same closed-book
fallback. Against a real API each repeat costs money and latency; against
:class:`~repro.llm.model.SimulatedLLM` it costs the full handler dispatch.
:class:`CachingLLM` memoizes ``complete`` by ``(prompt, max_tokens)`` with
LRU eviction and exposes hit/miss/eviction counters via ``cache_stats()``.

The wrapper is sound precisely because the simulated model is deterministic:
a completion is a pure function of ``(model seed, prompt)``, so replaying a
cached response is observationally identical to recomputing it — except that
the inner model's call/token counters stop growing, which is the point.

Since the throughput layer landed the wrapper is also **thread-safe**: one
reentrant lock guards every cache read and mutation, so
:class:`~repro.core.executor.ParallelExecutor` workers can share a cache
without corrupting the LRU order or the counters. (Thread-safety means *no
corruption*; bit-identical counter/LRU evolution is guaranteed for the
deterministic call order the batched pipelines use, where all LLM traffic
flows through ``complete_batch`` on the coordinating thread.)

``complete_batch`` answers a whole batch with **one cache pass**: it plans
hits and misses by simulating the LRU evolution over the batch (so a prompt
evicted mid-batch is correctly re-planned as a miss, exactly as a
sequential loop would observe), issues a single inner ``complete_batch``
for the misses, then replays the per-occurrence cache operations in batch
order — leaving counters, LRU order and inner call sequence identical to
``[complete(p) for p in prompts]``.

Composability with :class:`~repro.llm.faults.FaultInjectingLLM`:

* ``CachingLLM(FaultInjectingLLM(llm))`` — hits bypass the fault schedule
  entirely (a cache in front of a flaky API); only misses can fault, and
  faulting calls are never cached, so a retry after a transient error goes
  back upstream. When a batched miss faults mid-batch, the fault wrapper's
  ``batch_prefix`` (the completions that succeeded before the fault) is
  banked into the cache before the error propagates — the same entries a
  sequential caller would have cached before hitting the fault.
* ``FaultInjectingLLM(CachingLLM(llm))`` — every call still faces the fault
  schedule, but clean calls are served from cache (a shared cache behind a
  per-request fault boundary).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.observability import NULL_OBS, cache_stats_dict
from repro.llm.model import ChatMessage, LLMResponse, complete_all
from repro.llm.streaming import replay_stream
from repro.llm.tokenizer import count_tokens
from repro.llm import prompts as P

#: Default maximum number of memoized completions.
DEFAULT_CACHE_SIZE = 4096

_CacheKey = Tuple[str, int]


class CachingLLM:
    """Memoize ``complete``/``chat`` over any LLM-shaped inner model.

    The wrapper quacks like the model it wraps: every attribute other than
    the inference entry points is delegated to ``inner``, so lexicon-based
    helpers (``find_mentions``/``find_relations``) keep working and every
    consumer system in the repo accepts a ``CachingLLM`` unchanged.

    ``max_size`` bounds the cache with least-recently-used eviction.
    Exceptions are never cached: a call that raises (e.g. a fault injected
    by a wrapped :class:`~repro.llm.faults.FaultInjectingLLM`) leaves no
    cache entry behind, so the next identical prompt retries upstream.
    """

    def __init__(self, inner, max_size: int = DEFAULT_CACHE_SIZE):
        if max_size <= 0:
            raise ValueError("max_size must be positive")
        self.inner = inner
        self.max_size = max_size
        # The attached observability recorder (a no-op by default;
        # ``Observability.bind_llm`` swaps in a live one).
        self.obs = NULL_OBS
        self._cache: "OrderedDict[_CacheKey, LLMResponse]" = OrderedDict()
        # Reentrant: complete_batch's replay may fall back to self.complete
        # while already holding the lock.
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __getattr__(self, name: str):
        return getattr(self.inner, name)

    # ------------------------------------------------------------------
    # Inference entry points
    # ------------------------------------------------------------------
    def complete(self, prompt: str, max_tokens: int = 256) -> LLMResponse:
        """Complete a prompt, serving repeats from the LRU cache."""
        key = (prompt, max_tokens)
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._hits += 1
                self._cache.move_to_end(key)
                return replace(cached)
            self._misses += 1
            response = self.inner.complete(prompt, max_tokens=max_tokens)
            self._store(key, response)
            return replace(response)

    def complete_stream(self, prompt: str, max_tokens: int = 256):
        """Stream a completion through the cache.

        A **hit** replays the memoized text as decode-step chunks without
        touching the inner model at all (this is what a streaming cache is
        for: zero upstream tokens, instant first chunk). A **miss** streams
        through the inner model and records the chunks as they pass; only a
        *fully drained, fault-free* stream is stored — a stream that faults
        mid-flight or is abandoned by its consumer leaves no cache entry,
        preserving the "exceptions are never cached" contract (the next
        identical prompt retries upstream).

        Hit/miss counters advance when the stream is created, mirroring
        when ``complete`` would have counted them.
        """
        key = (prompt, max_tokens)
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._hits += 1
                self._cache.move_to_end(key)
                return replay_stream(cached.text)
            self._misses += 1
            inner_stream = self.inner.complete_stream(
                prompt, max_tokens=max_tokens)
        return self._recording_stream(key, prompt, inner_stream)

    def _recording_stream(self, key: _CacheKey, prompt: str, stream):
        """Pass chunks through, banking the completion on a clean drain."""
        chunks: List[str] = []
        for chunk in stream:
            chunks.append(chunk)
            yield chunk
        text = "".join(chunks)
        response = LLMResponse(
            text=text, prompt_tokens=count_tokens(prompt),
            completion_tokens=count_tokens(text),
            model=getattr(getattr(self.inner, "config", None), "name",
                          "sim-llm"))
        with self._lock:
            if key not in self._cache:
                self._store(key, response)

    def complete_batch(self, prompts: Sequence[str],
                       max_tokens: int = 256) -> List[LLMResponse]:
        """Batch completion in one cache pass.

        Plans the batch against a simulation of the LRU (classifying each
        occurrence as the hit or miss a sequential loop would see, eviction
        effects included), issues **one** inner batch call for the misses
        in first-need order, then replays the cache operations occurrence
        by occurrence. Counters, LRU state, inner call order and returned
        responses are identical to ``[complete(p) for p in prompts]``.

        If the inner batch faults mid-flight, any ``batch_prefix`` carried
        by the error (see :class:`~repro.llm.faults.FaultInjectingLLM`) is
        replayed into the cache first — the entries a sequential caller
        would have cached before the fault — and the error propagates.
        Errors carrying no prefix leave the cache untouched.
        """
        prompts = list(prompts)
        if not prompts:
            return []
        self.obs.observe("llm.cache_batch_size", len(prompts))
        with self._lock:
            dispositions, pending = self._plan(prompts, max_tokens)
            if pending:
                try:
                    fetched = complete_all(self.inner, pending,
                                           max_tokens=max_tokens)
                except Exception as error:
                    prefix = getattr(error, "batch_prefix", None)
                    if prefix is not None:
                        # Bank the clean prefix, then rewrite batch_prefix
                        # into *this* layer's coordinates: the partial replay
                        # covers every outer occurrence before the faulted
                        # miss — cache hits included — which is exactly the
                        # clean prefix a sequential caller observed.
                        partial = self._replay(prompts, dispositions,
                                               list(prefix), max_tokens)
                        error.batch_prefix = tuple(partial)
                    raise
            else:
                fetched = []
            return self._replay(prompts, dispositions, fetched, max_tokens)

    def _plan(self, prompts: Sequence[str],
              max_tokens: int) -> Tuple[List[bool], List[str]]:
        """Classify each occurrence as hit/miss by simulating the LRU.

        The simulation walks keys only (no responses needed), including
        move-to-end on hits and evict-on-insert at capacity — so a prompt
        that *would* be evicted by this very batch's earlier misses is
        correctly planned as a miss, in the position a sequential loop
        would issue its inner call. Returns per-occurrence hit flags and
        the miss prompts in inner-call order (duplicates included when an
        eviction forces a re-fetch).
        """
        sim: "OrderedDict[_CacheKey, None]" = OrderedDict.fromkeys(self._cache)
        hits: List[bool] = []
        pending: List[str] = []
        for prompt in prompts:
            key = (prompt, max_tokens)
            if key in sim:
                hits.append(True)
                sim.move_to_end(key)
                continue
            hits.append(False)
            pending.append(prompt)
            if len(sim) >= self.max_size:
                sim.popitem(last=False)
            sim[key] = None
        return hits, pending

    def _replay(self, prompts: Sequence[str], hits: Sequence[bool],
                fetched: List[LLMResponse],
                max_tokens: int) -> List[LLMResponse]:
        """Apply the planned cache operations in occurrence order.

        ``fetched`` holds the inner responses for the planned misses, in
        order; a short list (a faulted batch's clean prefix) replays as far
        as it reaches — counting the failing miss exactly as the sequential
        loop would before its inner call raised — and returns the partial
        results for the caller to discard.
        """
        responses: List[LLMResponse] = []
        fetched_iter = iter(fetched)
        for prompt, hit in zip(prompts, hits):
            key = (prompt, max_tokens)
            if hit:
                cached = self._cache.get(key)
                if cached is None:
                    # Only reachable if another thread dropped the entry
                    # between plan and replay; re-fetch like a miss.
                    responses.append(
                        self.complete(prompt, max_tokens=max_tokens))
                    continue
                self._hits += 1
                self._cache.move_to_end(key)
                responses.append(replace(cached))
                continue
            self._misses += 1
            response = next(fetched_iter, None)
            if response is None:
                # The inner batch faulted at this miss: sequential had
                # already counted the miss when its inner call raised.
                return responses
            self._store(key, response)
            responses.append(replace(response))
        return responses

    def _store(self, key: _CacheKey, response: LLMResponse) -> None:
        if len(self._cache) >= self.max_size:
            self._cache.popitem(last=False)
            self._evictions += 1
        self._cache[key] = response

    def chat(self, messages: Sequence[ChatMessage],
             max_tokens: int = 256) -> LLMResponse:
        """Chat entry point, routed through the caching ``complete``
        (mirrors :meth:`SimulatedLLM.chat`'s prompt derivation)."""
        last_user = next(
            (m.content for m in reversed(messages) if m.role == "user"), "")
        if P.parse_prompt(last_user).get("Task"):
            return self.complete(last_user, max_tokens=max_tokens)
        return self.complete(P.chat_prompt(last_user), max_tokens=max_tokens)

    # ------------------------------------------------------------------
    # Cache management & observability
    # ------------------------------------------------------------------
    def seed_cache(self, prompt: str, response: LLMResponse,
                   max_tokens: int = 256) -> None:
        """Pre-seed the cache with a known completion (warm-start)."""
        key = (prompt, max_tokens)
        with self._lock:
            if key not in self._cache and len(self._cache) >= self.max_size:
                self._cache.popitem(last=False)
                self._evictions += 1
            self._cache[key] = response
            self._cache.move_to_end(key)

    def warm(self, prompts: Sequence[str], max_tokens: int = 256) -> int:
        """Run ``prompts`` through the cache; returns how many were new."""
        with self._lock:
            before = self._misses
            self.complete_batch(list(prompts), max_tokens=max_tokens)
            return self._misses - before

    def clear_cache(self) -> None:
        """Drop every memoized completion (counters are preserved)."""
        with self._lock:
            self._cache.clear()

    def cache_stats(self) -> Dict[str, float]:
        """Counters in the canonical cache-stats schema
        (see :func:`repro.core.observability.cache_stats_dict`)."""
        with self._lock:
            return cache_stats_dict(
                hits=self._hits, misses=self._misses,
                evictions=self._evictions, size=len(self._cache),
                max_size=self.max_size)


def maybe_cached(llm, cache) -> object:
    """Resolve a consumer-facing ``cache`` knob into a (possibly) wrapped LLM.

    ``cache`` may be falsy (no wrapping), ``True`` (wrap with the default
    cache size), or a positive int (wrap with that size). Pipelines accept
    this knob in their constructors so enabling memoization is one argument,
    not a refactor.
    """
    if not cache:
        return llm
    if cache is True:
        return CachingLLM(llm)
    return CachingLLM(llm, max_size=int(cache))
