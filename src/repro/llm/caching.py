"""A memoizing wrapper around the simulated LLM.

Every retrieval-backed architecture in this repo (RAG variants, GraphRAG
map-reduce, KAPING-style QA) re-issues identical prompts: the same question
asked twice, the same community report re-summarized, the same closed-book
fallback. Against a real API each repeat costs money and latency; against
:class:`~repro.llm.model.SimulatedLLM` it costs the full handler dispatch.
:class:`CachingLLM` memoizes ``complete`` by ``(prompt, max_tokens)`` with
LRU eviction and exposes hit/miss/eviction counters via ``cache_stats()``.

The wrapper is sound precisely because the simulated model is deterministic:
a completion is a pure function of ``(model seed, prompt)``, so replaying a
cached response is observationally identical to recomputing it — except that
the inner model's call/token counters stop growing, which is the point.

Composability with :class:`~repro.llm.faults.FaultInjectingLLM`:

* ``CachingLLM(FaultInjectingLLM(llm))`` — hits bypass the fault schedule
  entirely (a cache in front of a flaky API); only misses can fault, and
  faulting calls are never cached, so a retry after a transient error goes
  back upstream.
* ``FaultInjectingLLM(CachingLLM(llm))`` — every call still faces the fault
  schedule, but clean calls are served from cache (a shared cache behind a
  per-request fault boundary).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import replace
from typing import Dict, Optional, Sequence, Tuple

from repro.llm.model import ChatMessage, LLMResponse
from repro.llm import prompts as P

#: Default maximum number of memoized completions.
DEFAULT_CACHE_SIZE = 4096

_CacheKey = Tuple[str, int]


class CachingLLM:
    """Memoize ``complete``/``chat`` over any LLM-shaped inner model.

    The wrapper quacks like the model it wraps: every attribute other than
    the inference entry points is delegated to ``inner``, so lexicon-based
    helpers (``find_mentions``/``find_relations``) keep working and every
    consumer system in the repo accepts a ``CachingLLM`` unchanged.

    ``max_size`` bounds the cache with least-recently-used eviction.
    Exceptions are never cached: a call that raises (e.g. a fault injected
    by a wrapped :class:`~repro.llm.faults.FaultInjectingLLM`) leaves no
    cache entry behind, so the next identical prompt retries upstream.
    """

    def __init__(self, inner, max_size: int = DEFAULT_CACHE_SIZE):
        if max_size <= 0:
            raise ValueError("max_size must be positive")
        self.inner = inner
        self.max_size = max_size
        self._cache: "OrderedDict[_CacheKey, LLMResponse]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __getattr__(self, name: str):
        return getattr(self.inner, name)

    # ------------------------------------------------------------------
    # Inference entry points
    # ------------------------------------------------------------------
    def complete(self, prompt: str, max_tokens: int = 256) -> LLMResponse:
        """Complete a prompt, serving repeats from the LRU cache."""
        key = (prompt, max_tokens)
        cached = self._cache.get(key)
        if cached is not None:
            self._hits += 1
            self._cache.move_to_end(key)
            return replace(cached)
        self._misses += 1
        response = self.inner.complete(prompt, max_tokens=max_tokens)
        if len(self._cache) >= self.max_size:
            self._cache.popitem(last=False)
            self._evictions += 1
        self._cache[key] = response
        return replace(response)

    def chat(self, messages: Sequence[ChatMessage],
             max_tokens: int = 256) -> LLMResponse:
        """Chat entry point, routed through the caching ``complete``
        (mirrors :meth:`SimulatedLLM.chat`'s prompt derivation)."""
        last_user = next(
            (m.content for m in reversed(messages) if m.role == "user"), "")
        if P.parse_prompt(last_user).get("Task"):
            return self.complete(last_user, max_tokens=max_tokens)
        return self.complete(P.chat_prompt(last_user), max_tokens=max_tokens)

    # ------------------------------------------------------------------
    # Cache management & observability
    # ------------------------------------------------------------------
    def seed_cache(self, prompt: str, response: LLMResponse,
                   max_tokens: int = 256) -> None:
        """Pre-seed the cache with a known completion (warm-start)."""
        key = (prompt, max_tokens)
        if key not in self._cache and len(self._cache) >= self.max_size:
            self._cache.popitem(last=False)
            self._evictions += 1
        self._cache[key] = response
        self._cache.move_to_end(key)

    def warm(self, prompts: Sequence[str], max_tokens: int = 256) -> int:
        """Run ``prompts`` through the cache; returns how many were new."""
        before = self._misses
        for prompt in prompts:
            self.complete(prompt, max_tokens=max_tokens)
        return self._misses - before

    def clear_cache(self) -> None:
        """Drop every memoized completion (counters are preserved)."""
        self._cache.clear()

    def cache_stats(self) -> Dict[str, float]:
        """Hit/miss/eviction counters plus occupancy and hit rate."""
        lookups = self._hits + self._misses
        return {
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
            "size": len(self._cache),
            "max_size": self.max_size,
            "hit_rate": self._hits / lookups if lookups else 0.0,
        }


def maybe_cached(llm, cache) -> object:
    """Resolve a consumer-facing ``cache`` knob into a (possibly) wrapped LLM.

    ``cache`` may be falsy (no wrapping), ``True`` (wrap with the default
    cache size), or a positive int (wrap with that size). Pipelines accept
    this knob in their constructors so enabling memoization is one argument,
    not a refactor.
    """
    if not cache:
        return llm
    if cache is True:
        return CachingLLM(llm)
    return CachingLLM(llm, max_size=int(cache))
