"""Model registry: named capability profiles for the models Figure 2 counts.

Each profile mirrors the public parameter count of the corresponding real
model; the simulator's skill scaling (``LLMConfig.skill``) turns those into
distinct error behaviours, so benchmarks can compare "BERT" against "GPT-3"
the way the surveyed papers do.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.kg.graph import KnowledgeGraph
from repro.llm.model import LLMConfig, SimulatedLLM

#: name → (n_parameters, instruction_tuned, knowledge_coverage)
MODEL_PROFILES: Dict[str, Dict[str, object]] = {
    "bert-base": {"n_parameters": 110e6, "instruction_tuned": False,
                  "knowledge_coverage": 0.45},
    "bert-large": {"n_parameters": 340e6, "instruction_tuned": False,
                   "knowledge_coverage": 0.5},
    "bart-large": {"n_parameters": 406e6, "instruction_tuned": False,
                   "knowledge_coverage": 0.5},
    "gpt-2": {"n_parameters": 1.5e9, "instruction_tuned": False,
              "knowledge_coverage": 0.55},
    "t5-large": {"n_parameters": 770e6, "instruction_tuned": False,
                 "knowledge_coverage": 0.5},
    "flan-t5-xxl": {"n_parameters": 11e9, "instruction_tuned": True,
                    "knowledge_coverage": 0.6},
    "llama-2-70b": {"n_parameters": 70e9, "instruction_tuned": True,
                    "knowledge_coverage": 0.7},
    "gpt-3": {"n_parameters": 175e9, "instruction_tuned": False,
              "knowledge_coverage": 0.75},
    "chatgpt": {"n_parameters": 175e9, "instruction_tuned": True,
                "knowledge_coverage": 0.75},
}


def load_model(name: str = "chatgpt", world: Optional[KnowledgeGraph] = None,
               seed: int = 0, **overrides) -> SimulatedLLM:
    """Instantiate a named profile, optionally pre-trained on a world KG.

    ``overrides`` lets experiments tweak individual knobs (e.g.
    ``hallucination_rate=0.0`` for an oracle ablation).
    """
    if name not in MODEL_PROFILES:
        raise KeyError(
            f"unknown model {name!r}; available: {', '.join(sorted(MODEL_PROFILES))}"
        )
    profile = dict(MODEL_PROFILES[name])
    profile.update(overrides)
    config = LLMConfig(name=name, seed=seed, **profile)  # type: ignore[arg-type]
    model = SimulatedLLM(config)
    if world is not None:
        model.absorb_knowledge(world)
    return model
