"""A vLLM-style radix prefix cache over prompt tokens.

Every pipeline in this repo builds prompts from a shared preamble — the
``Task:``/``Instructions:``/``Facts:``/``Examples:`` sections that
:mod:`repro.llm.prompts` renders *before* the per-request ``Question``/
``Sentence`` — so a serving mix re-prefills the same system/few-shot
tokens on every request. Real inference stacks (vLLM's automatic prefix
caching, SGLang's RadixAttention) dodge that by keeping KV blocks of
shared prefixes in a radix tree keyed by token content; our simulated
analogue is :class:`RadixPrefixCache`, which the token scheduler
(:mod:`repro.serve.scheduler`) consults to skip the simulated prefill
cost of the longest cached prefix.

Design points mirroring the real thing:

* **block granularity** — tokens are grouped into fixed-size blocks and
  only whole blocks are cached (a trailing partial block is never
  stored), so cache keys are content-addressed block paths in a trie;
* **LRU leaf eviction** — when the block budget is exhausted the
  least-recently-touched *leaf* block is dropped (interior blocks are
  pinned by their children, exactly like refcounted KV blocks);
* **version-keyed invalidation** — the cache carries an opaque version
  token (typically the KG's mutation ``version``); ``ensure_version``
  flushes everything when it changes, because prompts built from a
  mutated KG may verbalize different facts into the same-looking
  preamble;
* **canonical stats** — ``cache_stats()`` speaks the repo-wide schema
  (hits/misses/evictions/invalidations/size/max_size/hit_rate), where a
  hit/miss is counted *per block looked up*, so ``hit_rate`` is the
  fraction of prompt blocks whose prefill was skipped.

Everything is deterministic: recency is a monotonic operation counter,
not a clock.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.observability import NULL_OBS, cache_stats_dict
from repro.llm.tokenizer import word_tokens

#: Default tokens per cached block.
DEFAULT_BLOCK_SIZE = 8
#: Default block budget.
DEFAULT_MAX_BLOCKS = 4096

_ROOT = 0


class _Node:
    """One cached block: a trie edge labelled by its token tuple."""

    __slots__ = ("parent", "block", "children", "last_use")

    def __init__(self, parent: int, block: Tuple[str, ...]):
        self.parent = parent
        self.block = block
        self.children: Dict[Tuple[str, ...], int] = {}
        self.last_use = 0


class RadixPrefixCache:
    """Block-granular radix trie over prompt token prefixes."""

    def __init__(self, block_size: int = DEFAULT_BLOCK_SIZE,
                 max_blocks: int = DEFAULT_MAX_BLOCKS,
                 version: Optional[Hashable] = None):
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        if max_blocks <= 0:
            raise ValueError("max_blocks must be positive")
        self.block_size = block_size
        self.max_blocks = max_blocks
        self.version = version
        self.obs = NULL_OBS
        # node id → node; the root (id 0) is virtual and never evicted.
        self._nodes: Dict[int, _Node] = {_ROOT: _Node(-1, ())}
        self._next_id = 1
        self._ops = 0  # monotonic recency counter (deterministic "clock")
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0
        self.tokens_hit = 0
        self.tokens_missed = 0

    # ------------------------------------------------------------------
    # Lookup / insert
    # ------------------------------------------------------------------
    def _blocks(self, tokens: Sequence[str]) -> List[Tuple[str, ...]]:
        size = self.block_size
        full = len(tokens) // size
        return [tuple(tokens[i * size:(i + 1) * size]) for i in range(full)]

    def match(self, tokens: Sequence[str]) -> int:
        """Length (in tokens) of the longest cached prefix, whole blocks
        only. Counts one hit per matched block and one miss per unmatched
        block of the probe (trailing partial block excluded)."""
        return self._walk(tokens, insert=False)

    def insert(self, tokens: Sequence[str]) -> int:
        """Cache every full block of ``tokens`` (idempotent for blocks
        already present); returns the matched-prefix length in tokens as
        :meth:`match` would have reported it, with the same hit/miss
        accounting — i.e. this *is* ``match`` + populate in one walk."""
        return self._walk(tokens, insert=True)

    def _walk(self, tokens: Sequence[str], insert: bool) -> int:
        self._ops += 1
        blocks = self._blocks(tokens)
        node_id = _ROOT
        matched = 0
        for i, block in enumerate(blocks):
            child = self._nodes[node_id].children.get(block)
            if child is None:
                remaining = len(blocks) - i
                self._misses += remaining
                self.tokens_missed += remaining * self.block_size
                if insert:
                    for tail in blocks[i:]:
                        node_id = self._attach(node_id, tail)
                return matched
            node_id = child
            self._nodes[node_id].last_use = self._ops
            matched += self.block_size
            self._hits += 1
            self.tokens_hit += self.block_size
        return matched

    def _attach(self, parent: int, block: Tuple[str, ...]) -> int:
        while len(self._nodes) - 1 >= self.max_blocks:
            if not self._evict_one(protect=parent):
                break
        node = _Node(parent, block)
        node.last_use = self._ops
        node_id = self._next_id
        self._next_id += 1
        self._nodes[node_id] = node
        self._nodes[parent].children[block] = node_id
        return node_id

    def _evict_one(self, protect: int) -> bool:
        """Drop the least-recently-used leaf (never the root, never the
        node we are about to extend). Returns False when nothing is
        evictable — the path being inserted owns every block."""
        victim_id = -1
        victim_use = None
        for node_id, node in self._nodes.items():
            if node_id == _ROOT or node_id == protect or node.children:
                continue
            if victim_use is None or node.last_use < victim_use or \
                    (node.last_use == victim_use and node_id < victim_id):
                victim_id, victim_use = node_id, node.last_use
        if victim_use is None:
            return False
        victim = self._nodes.pop(victim_id)
        del self._nodes[victim.parent].children[victim.block]
        self._evictions += 1
        return True

    # ------------------------------------------------------------------
    # Prompt-level convenience
    # ------------------------------------------------------------------
    def cached_prefill(self, prompt: str) -> Tuple[int, int]:
        """Match-and-insert a prompt; returns ``(total_tokens,
        cached_tokens)`` where ``cached_tokens`` of the prompt's prefill
        can be skipped. This is the scheduler's one-call entry point."""
        tokens = word_tokens(prompt, lowercase=False)
        cached = self.insert(tokens)
        return len(tokens), cached

    # ------------------------------------------------------------------
    # Invalidation & stats
    # ------------------------------------------------------------------
    def ensure_version(self, version: Hashable) -> bool:
        """Flush the cache if ``version`` differs from the stored one.

        Returns True when an invalidation happened. Counts one
        invalidation per dropped block, matching how the KG read caches
        account version-keyed flushes.
        """
        if version == self.version:
            return False
        dropped = len(self._nodes) - 1
        if dropped:
            self._invalidations += dropped
            self.obs.count("llm.prefix_cache.invalidations", n=dropped)
        self._nodes = {_ROOT: _Node(-1, ())}
        self.version = version
        return dropped > 0

    def clear(self) -> None:
        """Drop every cached block (counters are preserved)."""
        self._nodes = {_ROOT: _Node(-1, ())}

    @property
    def size(self) -> int:
        """Number of cached blocks."""
        return len(self._nodes) - 1

    def cache_stats(self) -> Dict[str, float]:
        """Counters in the canonical cache-stats schema (per-block)."""
        return cache_stats_dict(
            hits=self._hits, misses=self._misses,
            evictions=self._evictions, invalidations=self._invalidations,
            size=self.size, max_size=self.max_blocks)
