"""Deterministic hash embeddings and a contextual text encoder.

Stands in for the PLM embedding space the surveyed text-based KG-completion
and retrieval methods use. Each token gets a fixed pseudo-random unit vector
derived from a keyed hash, so embeddings are identical across processes and
runs without storing any weights; text vectors are decayed averages of token
vectors, which gives the distributional property the methods rely on: texts
sharing tokens are close, disjoint texts are near-orthogonal.

``encode_batch`` is the retrieval hot path (every RAG/KAPING/SimKGC index
build funnels through it): it deduplicates tokens across the whole batch,
embeds each unique token exactly once, and reduces the per-text decay/SIF
weighted sums with matrix operations instead of a per-text Python loop.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from itertools import chain
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.core.observability import cache_stats_dict
from repro.llm.tokenizer import word_tokens
from repro.vector.index import cosine_topk, safe_norms


#: Largest (n_texts × n_unique_tokens) weight matrix the dense batch path
#: will materialize; bigger batches fall back to the segmented reduceat sum.
DENSE_BATCH_BUDGET = 4_000_000


def _hash_vector(token: str, dim: int, salt: str) -> np.ndarray:
    """A deterministic unit vector for ``token`` (keyed by ``salt``)."""
    out = np.empty(dim, dtype=np.float64)
    counter = 0
    produced = 0
    while produced < dim:
        digest = hashlib.blake2b(
            f"{salt}\x00{token}\x00{counter}".encode("utf-8"), digest_size=32
        ).digest()
        block = np.frombuffer(digest, dtype=np.uint8).astype(np.float64)
        block = (block - 127.5) / 73.9  # roughly zero-mean, unit-ish variance
        take = min(dim - produced, block.shape[0])
        out[produced:produced + take] = block[:take]
        produced += take
        counter += 1
    norm = np.linalg.norm(out)
    return out / norm if norm > 0 else out


class HashEmbedder:
    """Token → fixed deterministic vector, with a true LRU cache.

    Eviction discards only the least-recently-used token (not, as a naive
    cache would, the entire table), so hot vocabulary stays resident across
    arbitrarily long encoding runs. ``cache_stats`` exposes hit/miss/
    eviction counters for the observability contract of the acceleration
    layer (see README "Performance").

    The cache is thread-safe: a single lock guards every lookup and
    mutation, so :class:`~repro.core.executor.ParallelExecutor` workers
    encoding concurrently can share one embedder without corrupting the
    LRU order or the counters. (Embeddings themselves are pure functions
    of ``(token, salt)``, so the *values* are scheduling-independent.)
    """

    def __init__(self, dim: int = 64, salt: str = "repro", cache_size: int = 50000):
        if dim <= 0:
            raise ValueError("embedding dimension must be positive")
        if cache_size <= 0:
            raise ValueError("cache_size must be positive")
        self.dim = dim
        self.salt = salt
        self._cache: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._cache_size = cache_size
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def embed_token(self, token: str) -> np.ndarray:
        """The embedding of a single token."""
        with self._lock:
            vector = self._cache.get(token)
            if vector is not None:
                self._hits += 1
                self._cache.move_to_end(token)
                return vector
        # Hashing is the expensive, pure part — compute it unlocked so
        # concurrent encoders only serialize on the dict operations. The
        # lookup's disposition is settled only under the *second* lock:
        # when a concurrent miss on the same token raced us to the insert,
        # this lookup is counted as a hit (it is served from the cache),
        # so hits + misses always equals lookups and misses equals inserts
        # — the first acquisition must not count the miss early.
        vector = _hash_vector(token, self.dim, self.salt)
        with self._lock:
            cached = self._cache.get(token)
            if cached is not None:
                self._hits += 1
                self._cache.move_to_end(token)
                return cached
            self._misses += 1
            if len(self._cache) >= self._cache_size:
                self._cache.popitem(last=False)
                self._evictions += 1
            self._cache[token] = vector
        return vector

    def embed_tokens(self, tokens: Iterable[str]) -> np.ndarray:
        """A (n_tokens, dim) matrix of token embeddings.

        Repeated tokens are embedded once and gathered, not recomputed.
        """
        tokens = list(tokens)
        if not tokens:
            return np.zeros((0, self.dim))
        unique: Dict[str, int] = {}
        ids = np.empty(len(tokens), dtype=np.int64)
        for i, token in enumerate(tokens):
            ids[i] = unique.setdefault(token, len(unique))
        table = np.stack([self.embed_token(t) for t in unique])
        return table[ids]

    def cache_stats(self) -> Dict[str, float]:
        """Counters in the canonical cache-stats schema
        (see :func:`repro.core.observability.cache_stats_dict`)."""
        with self._lock:
            return cache_stats_dict(
                hits=self._hits, misses=self._misses,
                evictions=self._evictions, size=len(self._cache),
                max_size=self._cache_size)


class TextEncoder:
    """Sentence/paragraph encoder over hash embeddings.

    Combines token vectors with a position-decay weighting (earlier tokens
    matter slightly more, mimicking lead-biased attention) plus an optional
    inverse-frequency reweighting learned from a corpus (the SIF trick), and
    L2-normalizes. This is the "PLM text encoder" used by SimKGC-style
    bi-encoders, RAG retrieval, and GPT-RE demonstration retrieval.
    """

    def __init__(self, dim: int = 64, salt: str = "repro", decay: float = 0.995):
        self.embedder = HashEmbedder(dim=dim, salt=salt)
        self.dim = dim
        self.decay = decay
        self._token_weight: Dict[str, float] = {}

    def fit_idf(self, corpus: Iterable[str], a: float = 1e-3) -> "TextEncoder":
        """Learn SIF-style token weights ``a / (a + p(token))`` from a corpus."""
        counts: Dict[str, int] = {}
        total = 0
        for document in corpus:
            for token in word_tokens(document):
                counts[token] = counts.get(token, 0) + 1
                total += 1
        if total:
            self._token_weight = {
                token: a / (a + count / total) for token, count in counts.items()
            }
        return self

    def encode(self, text: str) -> np.ndarray:
        """Text → L2-normalized vector (zero vector for empty text)."""
        tokens = word_tokens(text)
        if not tokens:
            return np.zeros(self.dim)
        accumulator = np.zeros(self.dim)
        weight = 1.0
        for token in tokens:
            token_weight = self._token_weight.get(token, 1.0)
            accumulator += weight * token_weight * self.embedder.embed_token(token)
            weight *= self.decay
        norm = np.linalg.norm(accumulator)
        return accumulator / norm if norm > 0 else accumulator

    def encode_batch(self, texts: Iterable[str]) -> np.ndarray:
        """A (n_texts, dim) matrix of encodings.

        Element-wise equal (within float tolerance) to stacking
        :meth:`encode` per text, but computed batch-wise: every distinct
        token in the batch is embedded and weight-looked-up once, and the
        decayed sums for all texts reduce through one scatter-add over the
        unique-token embedding table.
        """
        texts = list(texts)
        if not texts:
            return np.zeros((0, self.dim))
        # Text-level dedup: identical texts (repeated facts, re-asked
        # questions) are encoded once and gathered back by row.
        first_row: Dict[str, int] = {}
        row_of = np.empty(len(texts), dtype=np.int64)
        for i, text in enumerate(texts):
            row_of[i] = first_row.setdefault(text, len(first_row))
        distinct = list(first_row)

        token_lists = [word_tokens(text) for text in distinct]
        counts = np.array([len(tokens) for tokens in token_lists],
                          dtype=np.int64)
        out = np.zeros((len(distinct), self.dim))
        total = int(counts.sum())
        if total:
            # Token-level dedup: each distinct token is embedded (and
            # weight-looked-up) exactly once; ``token_idx`` gathers rows
            # of the unique-token table back into stream order. A dict,
            # not np.unique — fixed-width numpy string arrays truncate
            # trailing NUL characters, silently conflating tokens.
            token_ids: Dict[str, int] = {}
            token_idx = np.empty(total, dtype=np.int64)
            for j, tok in enumerate(chain.from_iterable(token_lists)):
                token_idx[j] = token_ids.setdefault(tok, len(token_ids))
            unique = list(token_ids)
            table = np.stack([self.embedder.embed_token(t) for t in unique])
            if self._token_weight:
                table = table * np.array(
                    [self._token_weight.get(t, 1.0) for t in unique])[:, None]
            ends = np.cumsum(counts)
            starts = ends - counts
            positions = np.arange(total) - np.repeat(starts, counts)
            decay_weights = self.decay ** positions.astype(np.float64)
            n_rows, n_unique = len(distinct), len(unique)
            if n_rows * n_unique <= DENSE_BATCH_BUDGET:
                # Dense path: per-(text, token) weights collapse through one
                # bincount, and the whole batch reduces as a single matmul.
                rows = np.repeat(np.arange(n_rows), counts)
                weights = np.bincount(rows * n_unique + token_idx,
                                      weights=decay_weights,
                                      minlength=n_rows * n_unique)
                out = weights.reshape(n_rows, n_unique) @ table
            else:
                # Huge-vocabulary fallback: tokens arrive grouped by text,
                # so each non-empty text is one contiguous segment;
                # reduceat sums every segment in C.
                weighted = decay_weights[:, None] * table[token_idx]
                nonempty = np.flatnonzero(counts)
                out[nonempty] = np.add.reduceat(weighted, starts[nonempty],
                                                axis=0)
            norms = safe_norms(out)
            out /= norms[:, None]
        return out[row_of]


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two vectors (0.0 when either is zero)."""
    na = np.linalg.norm(a)
    nb = np.linalg.norm(b)
    if na == 0.0 or nb == 0.0:
        return 0.0
    return float(np.dot(a, b) / (na * nb))


def top_k_similar(query: np.ndarray, matrix: np.ndarray, k: int) -> List[int]:
    """Indices of the ``k`` rows of ``matrix`` most cosine-similar to ``query``.

    Delegates to the same scoring kernel as
    :meth:`repro.vector.index.VectorIndex.search`, including its zero-norm
    handling (zero rows and zero queries score 0, never NaN).
    """
    if matrix.shape[0] == 0:
        return []
    order, _ = cosine_topk(matrix, safe_norms(matrix), query, k)
    return [int(i) for i in order]
