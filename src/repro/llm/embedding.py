"""Deterministic hash embeddings and a contextual text encoder.

Stands in for the PLM embedding space the surveyed text-based KG-completion
and retrieval methods use. Each token gets a fixed pseudo-random unit vector
derived from a keyed hash, so embeddings are identical across processes and
runs without storing any weights; text vectors are decayed averages of token
vectors, which gives the distributional property the methods rely on: texts
sharing tokens are close, disjoint texts are near-orthogonal.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.llm.tokenizer import word_tokens


def _hash_vector(token: str, dim: int, salt: str) -> np.ndarray:
    """A deterministic unit vector for ``token`` (keyed by ``salt``)."""
    out = np.empty(dim, dtype=np.float64)
    counter = 0
    produced = 0
    while produced < dim:
        digest = hashlib.blake2b(
            f"{salt}\x00{token}\x00{counter}".encode("utf-8"), digest_size=32
        ).digest()
        block = np.frombuffer(digest, dtype=np.uint8).astype(np.float64)
        block = (block - 127.5) / 73.9  # roughly zero-mean, unit-ish variance
        take = min(dim - produced, block.shape[0])
        out[produced:produced + take] = block[:take]
        produced += take
        counter += 1
    norm = np.linalg.norm(out)
    return out / norm if norm > 0 else out


class HashEmbedder:
    """Token → fixed deterministic vector, with a small LRU-ish cache."""

    def __init__(self, dim: int = 64, salt: str = "repro", cache_size: int = 50000):
        if dim <= 0:
            raise ValueError("embedding dimension must be positive")
        self.dim = dim
        self.salt = salt
        self._cache: Dict[str, np.ndarray] = {}
        self._cache_size = cache_size

    def embed_token(self, token: str) -> np.ndarray:
        """The embedding of a single token."""
        vector = self._cache.get(token)
        if vector is None:
            vector = _hash_vector(token, self.dim, self.salt)
            if len(self._cache) >= self._cache_size:
                self._cache.clear()
            self._cache[token] = vector
        return vector

    def embed_tokens(self, tokens: Iterable[str]) -> np.ndarray:
        """A (n_tokens, dim) matrix of token embeddings."""
        tokens = list(tokens)
        if not tokens:
            return np.zeros((0, self.dim))
        return np.stack([self.embed_token(t) for t in tokens])


class TextEncoder:
    """Sentence/paragraph encoder over hash embeddings.

    Combines token vectors with a position-decay weighting (earlier tokens
    matter slightly more, mimicking lead-biased attention) plus an optional
    inverse-frequency reweighting learned from a corpus (the SIF trick), and
    L2-normalizes. This is the "PLM text encoder" used by SimKGC-style
    bi-encoders, RAG retrieval, and GPT-RE demonstration retrieval.
    """

    def __init__(self, dim: int = 64, salt: str = "repro", decay: float = 0.995):
        self.embedder = HashEmbedder(dim=dim, salt=salt)
        self.dim = dim
        self.decay = decay
        self._token_weight: Dict[str, float] = {}

    def fit_idf(self, corpus: Iterable[str], a: float = 1e-3) -> "TextEncoder":
        """Learn SIF-style token weights ``a / (a + p(token))`` from a corpus."""
        counts: Dict[str, int] = {}
        total = 0
        for document in corpus:
            for token in word_tokens(document):
                counts[token] = counts.get(token, 0) + 1
                total += 1
        if total:
            self._token_weight = {
                token: a / (a + count / total) for token, count in counts.items()
            }
        return self

    def encode(self, text: str) -> np.ndarray:
        """Text → L2-normalized vector (zero vector for empty text)."""
        tokens = word_tokens(text)
        if not tokens:
            return np.zeros(self.dim)
        accumulator = np.zeros(self.dim)
        weight = 1.0
        for token in tokens:
            token_weight = self._token_weight.get(token, 1.0)
            accumulator += weight * token_weight * self.embedder.embed_token(token)
            weight *= self.decay
        norm = np.linalg.norm(accumulator)
        return accumulator / norm if norm > 0 else accumulator

    def encode_batch(self, texts: Iterable[str]) -> np.ndarray:
        """A (n_texts, dim) matrix of encodings."""
        texts = list(texts)
        if not texts:
            return np.zeros((0, self.dim))
        return np.stack([self.encode(t) for t in texts])


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two vectors (0.0 when either is zero)."""
    na = np.linalg.norm(a)
    nb = np.linalg.norm(b)
    if na == 0.0 or nb == 0.0:
        return 0.0
    return float(np.dot(a, b) / (na * nb))


def top_k_similar(query: np.ndarray, matrix: np.ndarray, k: int) -> List[int]:
    """Indices of the ``k`` rows of ``matrix`` most cosine-similar to ``query``."""
    if matrix.shape[0] == 0:
        return []
    norms = np.linalg.norm(matrix, axis=1) * (np.linalg.norm(query) or 1.0)
    norms[norms == 0.0] = 1.0
    scores = matrix @ query / norms
    order = np.argsort(-scores, kind="stable")
    return [int(i) for i in order[:k]]
