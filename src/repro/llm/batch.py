"""Resilient batch completion for pipeline batch entry points.

Batched pipelines face a composition problem the single-item paths never
did: one ``complete_batch`` call carries many logical requests, so one
scheduled fault (see :mod:`repro.llm.faults`) would nominally take down the
whole batch. :func:`resilient_complete_all` restores per-request isolation
on top of the batch fast path:

* **healthy model** — exactly one ``complete_all`` over the whole batch
  (dedup, one cache pass, amortized routing);
* **faulting model** — fall back to per-prompt completion so each request
  meets the fault schedule on its own, optionally retried with a
  deterministic :class:`~repro.core.resilience.RetryPolicy`; every
  prompt's final disposition is captured in an ordered
  :class:`BatchOutcome` and nothing escapes.

Everything here runs on the coordinating thread in deterministic batch
order, which is what keeps fault schedules and cache evolution identical
whatever ``max_workers`` the surrounding executor uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.resilience import RetryPolicy
from repro.llm.faults import LLMTransientError
from repro.llm.model import LLMResponse, complete_all


@dataclass
class BatchOutcome:
    """One prompt's final disposition inside a resilient batch call."""

    response: Optional[LLMResponse]
    error: Optional[BaseException] = None
    attempts: int = 1

    @property
    def ok(self) -> bool:
        """Whether the prompt produced a completion."""
        return self.response is not None


def resilient_complete_all(llm, prompts: Sequence[str],
                           max_tokens: int = 256,
                           retry: Optional[RetryPolicy] = None
                           ) -> List[BatchOutcome]:
    """Complete a batch with per-prompt fault isolation.

    Tries one batched ``complete_all`` first; when a transient fault aborts
    it, re-issues each prompt individually (through ``retry`` when given)
    so healthy prompts still complete and only genuinely faulting ones
    carry an error. Returns one :class:`BatchOutcome` per prompt, in
    order; transient errors are captured, anything else propagates.
    """
    prompts = list(prompts)
    if not prompts:
        return []
    try:
        responses = complete_all(llm, prompts, max_tokens=max_tokens)
        return [BatchOutcome(response) for response in responses]
    except LLMTransientError:
        pass
    outcomes: List[BatchOutcome] = []
    for prompt in prompts:
        if retry is not None:
            result = retry.run(
                lambda p=prompt: llm.complete(p, max_tokens=max_tokens),
                key=prompt)
            outcomes.append(BatchOutcome(result.value, result.error,
                                         result.attempts))
            continue
        try:
            outcomes.append(
                BatchOutcome(llm.complete(prompt, max_tokens=max_tokens)))
        except LLMTransientError as error:
            outcomes.append(BatchOutcome(None, error))
    return outcomes
