"""Token streaming primitives.

A *stream* is a plain generator of text chunks whose concatenation is
byte-identical to the blob the same call would have returned through
``complete()``.  Chunks are cut at whitespace boundaries —
``stream_chunks`` splits a completion into ``\\S+\\s*`` pieces — which
gives two properties the rest of the stack relies on:

* **lossless**: ``"".join(stream_chunks(text)) == text`` for any
  completion text (completions are ``.strip()``-ed, so there is no
  leading whitespace to lose);
* **token-exact**: the word tokenizer (:func:`repro.llm.tokenizer
  .count_tokens`) never produces a token spanning whitespace, so
  ``sum(count_tokens(c) for c in stream_chunks(text)) ==
  count_tokens(text)`` — per-chunk accounting adds up to exactly the
  blob charge, never more, never less.

Each chunk is one *decode step* (roughly one word plus trailing
whitespace), the granularity at which the continuous-batching scheduler
(:mod:`repro.serve.scheduler`) admits, emits and sheds.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator, List, Tuple

_CHUNK_RE = re.compile(r"\S+\s*")


def stream_chunks(text: str) -> List[str]:
    """Split completion text into decode-step chunks.

    ``"".join`` of the result reproduces ``text`` exactly as long as
    ``text`` has no leading whitespace (completions are stripped).
    """
    return _CHUNK_RE.findall(text)


def replay_stream(text: str) -> Iterator[str]:
    """A generator over :func:`stream_chunks` — used to replay cached or
    precomputed completions through a streaming interface (supports
    ``close()`` like any generator, unlike a bare list iterator)."""
    for chunk in stream_chunks(text):
        yield chunk


def drain_stream(stream: Iterable[str]) -> str:
    """Consume a stream fully and return the joined text.

    Upstream faults (``LLMTransientError``) propagate to the caller —
    use :func:`drain_stream_partial` to keep the prefix instead.
    """
    return "".join(stream)


def drain_stream_partial(stream: Iterable[str]) -> Tuple[str, Exception]:
    """Consume a stream, keeping the chunks emitted before a fault.

    Returns ``(text, error)`` where ``error`` is ``None`` on a clean
    drain and the raised exception when the stream died mid-flight.
    """
    chunks: List[str] = []
    error = None
    try:
        for chunk in stream:
            chunks.append(chunk)
    except Exception as exc:  # noqa: BLE001 - callers inspect the type
        error = exc
    return "".join(chunks), error
