"""Operational fault injection for the simulated LLM.

:class:`~repro.llm.model.SimulatedLLM` models the *semantic* failure modes
of GPT-3/ChatGPT-class models (hallucination, bounded knowledge coverage).
Real deployments of the surveyed architectures also face *operational*
failures — request timeouts, rate limiting, truncated streams, malformed
output — and the architectures around the model (retry loops, fallbacks,
graceful degradation) are what make them dependable. This module supplies
those failures, deterministically:

* a typed transient-error hierarchy rooted at :class:`LLMTransientError`,
  so resilience policies can distinguish retryable operational faults from
  programming errors;
* :class:`FaultProfile` — a seeded schedule of failure rates, outage
  windows and rate-limit bursts. The fault for a call is a pure function
  of ``(profile seed, call index, prompt)``, so identical runs reproduce
  byte-identical fault schedules;
* :class:`FaultInjectingLLM` — a transparent wrapper around any
  ``SimulatedLLM`` that injects the scheduled faults on ``complete``/
  ``chat`` and delegates everything else, so every consumer system in the
  repo accepts it unchanged.

No wall clock is involved anywhere: timeouts and rate limits carry
*simulated* latencies that resilience policies charge against simulated
deadlines (see :mod:`repro.core.resilience`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, NoReturn, Optional, Sequence, Tuple

from repro.core.observability import NULL_OBS
from repro.llm.model import (
    ChatMessage,
    LLMResponse,
    SimulatedLLM,
    _stable_unit,
    complete_all,
)
from repro.llm.streaming import stream_chunks
from repro.llm import prompts as P


class LLMTransientError(RuntimeError):
    """Base class for retryable operational LLM failures.

    Attributes carry everything a resilience policy needs: the call index
    (the position in the wrapper's fault schedule) and the simulated
    latency the failed call consumed before failing.
    """

    kind = "transient"

    def __init__(self, message: str, *, call_index: Optional[int] = None,
                 simulated_latency: float = 0.0):
        super().__init__(message)
        self.call_index = call_index
        self.simulated_latency = simulated_latency


class LLMTimeoutError(LLMTransientError):
    """The upstream call exceeded its (simulated) time budget."""

    kind = "timeout"


class LLMRateLimitError(LLMTransientError):
    """HTTP-429 analogue; ``retry_after`` is the server's simulated hint."""

    kind = "rate_limit"

    def __init__(self, message: str, *, retry_after: float = 1.0, **kwargs):
        super().__init__(message, **kwargs)
        self.retry_after = retry_after


class LLMTruncatedOutputError(LLMTransientError):
    """The stream dropped mid-completion; ``partial_text`` is what arrived."""

    kind = "truncated"

    def __init__(self, message: str, *, partial_text: str = "", **kwargs):
        super().__init__(message, **kwargs)
        self.partial_text = partial_text


class LLMMalformedOutputError(LLMTransientError):
    """The completion arrived but is structurally garbled.

    ``corrupted_text`` preserves the corrupted payload so callers can log
    or attempt salvage; resilience policies should treat the call as failed.
    """

    kind = "malformed"

    def __init__(self, message: str, *, corrupted_text: str = "", **kwargs):
        super().__init__(message, **kwargs)
        self.corrupted_text = corrupted_text


#: The fault kinds a profile can schedule, in draw order.
FAULT_KINDS = ("timeout", "rate_limit", "truncated", "malformed")


@dataclass(frozen=True)
class FaultProfile:
    """A seeded, per-call-deterministic schedule of operational faults.

    Rates are independent per-call probabilities resolved by one stable
    draw keyed on ``(seed, call index, prompt)`` — rerunning the same
    workload with the same seed reproduces the exact same schedule, while
    a retry of the same prompt at a later call index gets a fresh draw
    (so retries can succeed, as they do against real APIs).

    ``outages`` are hard ``[start, stop)`` windows over the call index in
    which every call times out (a provider incident); ``burst_period`` /
    ``burst_length`` model periodic rate-limit bursts: the first
    ``burst_length`` calls of every ``burst_period``-call cycle are
    rejected with :class:`LLMRateLimitError`.
    """

    timeout_rate: float = 0.0
    rate_limit_rate: float = 0.0
    truncation_rate: float = 0.0
    malformed_rate: float = 0.0
    outages: Tuple[Tuple[int, int], ...] = ()
    burst_period: int = 0
    burst_length: int = 0
    retry_after: float = 1.0
    timeout_latency: float = 30.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("timeout_rate", "rate_limit_rate", "truncation_rate",
                     "malformed_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
        if self.total_rate > 1.0:
            raise ValueError(
                f"fault rates sum to {self.total_rate}, must be <= 1")

    @property
    def total_rate(self) -> float:
        """The per-call probability of any scheduled fault (outside bursts)."""
        return (self.timeout_rate + self.rate_limit_rate
                + self.truncation_rate + self.malformed_rate)

    @classmethod
    def uniform(cls, rate: float, seed: int = 0, **overrides) -> "FaultProfile":
        """Split an overall fault ``rate`` across the four modes
        (40% timeout, 30% rate limit, 15% truncation, 15% malformed)."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate!r}")
        fields = dict(
            timeout_rate=0.40 * rate,
            rate_limit_rate=0.30 * rate,
            truncation_rate=0.15 * rate,
            malformed_rate=0.15 * rate,
            seed=seed,
        )
        fields.update(overrides)
        return cls(**fields)

    def fault_for(self, call_index: int, prompt: str) -> Optional[str]:
        """The fault kind scheduled for this call, or None for a clean call.

        Pure and deterministic: no state is read or written, so the whole
        schedule can be previewed before running a workload.
        """
        for start, stop in self.outages:
            if start <= call_index < stop:
                return "timeout"
        if self.burst_period > 0 and self.burst_length > 0 and \
                call_index % self.burst_period < self.burst_length:
            return "rate_limit"
        draw = _stable_unit(str(self.seed), "fault", str(call_index), prompt)
        edge = 0.0
        for kind, rate in zip(FAULT_KINDS,
                              (self.timeout_rate, self.rate_limit_rate,
                               self.truncation_rate, self.malformed_rate)):
            edge += rate
            if draw < edge:
                return kind
        return None


def _corrupt(text: str, seed: int, call_index: int) -> str:
    """Deterministically garble a completion (the malformed-output mode):
    structural separators are destroyed and word order is locally swapped,
    so downstream parsers see plausible-looking but unusable text."""
    stripped = re.sub(r"[|;\[\]{}]", " ", text)
    words = stripped.split()
    for i in range(0, len(words) - 1, 2):
        if _stable_unit(str(seed), "swap", str(call_index), str(i)) < 0.5:
            words[i], words[i + 1] = words[i + 1], words[i]
    return " ".join(words)


def _truncated_stream(partial: str, index: int):
    """Yield the clean prefix of a truncated completion, then drop the
    stream with the same typed error (and ``partial_text``) the blob path
    raises."""
    for chunk in stream_chunks(partial):
        yield chunk
    raise LLMTruncatedOutputError(
        f"call {index}: output truncated mid-stream",
        partial_text=partial, call_index=index)


class FaultInjectingLLM:
    """Wrap a :class:`SimulatedLLM` with a deterministic fault schedule.

    The wrapper quacks like the model it wraps: every attribute other than
    the inference entry points is delegated to ``inner``, so retrieval
    components keep using ``find_mentions``/``find_relations``/lexicons
    directly (those are local computations — only *API calls*, i.e.
    ``complete``/``chat``, can fault).

    ``fault_log`` records ``(call index, fault kind or "ok")`` per call;
    two runs of the same workload with the same profile produce identical
    logs, which is what the chaos suite asserts.
    """

    def __init__(self, inner: SimulatedLLM,
                 profile: Optional[FaultProfile] = None):
        self.inner = inner
        self.profile = profile or FaultProfile()
        self.fault_calls = 0
        self.faults_injected = 0
        self.fault_log: List[Tuple[int, str]] = []
        # Observability recorder (no-op by default; swapped in by
        # ``Observability.bind_llm``).
        self.obs = NULL_OBS

    def __getattr__(self, name: str):
        return getattr(self.inner, name)

    def planned_fault(self, call_index: int, prompt: str) -> Optional[str]:
        """Preview the schedule without consuming a call."""
        return self.profile.fault_for(call_index, prompt)

    def complete(self, prompt: str, max_tokens: int = 256) -> LLMResponse:
        """Complete a prompt, or raise the scheduled typed transient error."""
        index = self.fault_calls
        self.fault_calls += 1
        kind = self.profile.fault_for(index, prompt)
        if kind is None:
            self.fault_log.append((index, "ok"))
            return self.inner.complete(prompt, max_tokens=max_tokens)
        self.faults_injected += 1
        self.fault_log.append((index, kind))
        self.obs.count("llm.faults", kind=kind)
        self._raise_fault(kind, index, prompt, max_tokens)

    def complete_stream(self, prompt: str, max_tokens: int = 256):
        """Stream a completion under the same per-call fault schedule.

        The call index is consumed and logged when the stream is *created*
        (exactly as ``complete`` does), so a workload driven through
        ``complete_stream`` reproduces the identical ``fault_log`` —
        byte-identical faults, per the streaming contract:

        * clean calls return the inner model's metered stream unchanged;
        * ``timeout``/``rate_limit``/``malformed`` raise synchronously,
          exactly like ``complete`` (the stream never starts — for the
          corruption mode the full completion is still charged against the
          inner model and delivered as ``corrupted_text``, matching the
          blob path);
        * ``truncated`` is the genuinely mid-stream fault: the inner model
          is charged for the full completion up front (as in the blob
          path), the deterministic clean prefix is yielded chunk by chunk,
          and then :class:`LLMTruncatedOutputError` is raised with the
          same ``partial_text`` the blob call would have carried.
        """
        index = self.fault_calls
        self.fault_calls += 1
        kind = self.profile.fault_for(index, prompt)
        if kind is None:
            self.fault_log.append((index, "ok"))
            return self.inner.complete_stream(prompt, max_tokens=max_tokens)
        self.faults_injected += 1
        self.fault_log.append((index, kind))
        self.obs.count("llm.faults", kind=kind)
        if kind != "truncated":
            self._raise_fault(kind, index, prompt, max_tokens)
        response = self.inner.complete(prompt, max_tokens=max_tokens)
        fraction = 0.2 + 0.6 * _stable_unit(
            str(self.profile.seed), "cut", str(index))
        partial = response.text[:int(len(response.text) * fraction)]
        return _truncated_stream(partial, index)

    def complete_batch(self, prompts: Sequence[str],
                       max_tokens: int = 256) -> List[LLMResponse]:
        """Batch completion under the same per-call fault schedule.

        Call indices are assigned to the prompts *in batch order*, one per
        prompt, before any inner work happens — so the schedule stays a
        pure function of ``(seed, call index, prompt)`` and a batched
        workload consumes exactly the indices (and logs exactly the
        ``fault_log`` entries) the equivalent ``complete`` loop would.

        The clean prefix before the first scheduled fault is completed
        through the inner model (keeping its call/token counters identical
        to the sequential loop) and attached to the raised error as
        ``batch_prefix``, so caching layers can bank the work that
        succeeded before the fault — exactly what a sequential caller
        caching response-by-response would have kept.
        """
        prompts = list(prompts)
        responses: List[LLMResponse] = []
        clean: List[str] = []

        def flush() -> None:
            if clean:
                responses.extend(
                    complete_all(self.inner, clean, max_tokens=max_tokens))
                clean.clear()

        for prompt in prompts:
            index = self.fault_calls
            self.fault_calls += 1
            kind = self.profile.fault_for(index, prompt)
            if kind is None:
                self.fault_log.append((index, "ok"))
                clean.append(prompt)
                continue
            flush()
            self.faults_injected += 1
            self.fault_log.append((index, kind))
            self.obs.count("llm.faults", kind=kind)
            try:
                self._raise_fault(kind, index, prompt, max_tokens)
            except LLMTransientError as error:
                error.batch_prefix = tuple(responses)  # type: ignore[attr-defined]
                raise
        flush()
        return responses

    def _raise_fault(self, kind: str, index: int, prompt: str,
                     max_tokens: int) -> NoReturn:
        """Raise the typed error for an already-logged scheduled fault."""
        if kind == "timeout":
            raise LLMTimeoutError(
                f"call {index}: simulated upstream timeout",
                call_index=index,
                simulated_latency=self.profile.timeout_latency)
        if kind == "rate_limit":
            raise LLMRateLimitError(
                f"call {index}: simulated rate limit",
                retry_after=self.profile.retry_after, call_index=index)
        # Corruption modes deliver (part of) the real completion inside the
        # exception — the stream started, then went wrong.
        response = self.inner.complete(prompt, max_tokens=max_tokens)
        if kind == "truncated":
            fraction = 0.2 + 0.6 * _stable_unit(
                str(self.profile.seed), "cut", str(index))
            partial = response.text[:int(len(response.text) * fraction)]
            raise LLMTruncatedOutputError(
                f"call {index}: output truncated mid-stream",
                partial_text=partial, call_index=index)
        raise LLMMalformedOutputError(
            f"call {index}: malformed output",
            corrupted_text=_corrupt(response.text, self.profile.seed, index),
            call_index=index)

    def chat(self, messages: Sequence[ChatMessage],
             max_tokens: int = 256) -> LLMResponse:
        """Chat entry point, routed through the fault-injecting ``complete``
        (mirrors :meth:`SimulatedLLM.chat`)."""
        last_user = next(
            (m.content for m in reversed(messages) if m.role == "user"), "")
        if P.parse_prompt(last_user).get("Task"):
            return self.complete(last_user, max_tokens=max_tokens)
        return self.complete(P.chat_prompt(last_user), max_tokens=max_tokens)
