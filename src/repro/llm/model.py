"""The simulated LLM.

:class:`SimulatedLLM` is a deterministic stand-in for GPT-3/ChatGPT/BERT/T5:
it *performs* the linguistic tasks the surveyed architectures delegate to an
LLM, against a bounded internal "parametric memory" absorbed from a world
KG, with realistic and controllable error behaviour:

* **knowledge coverage** — only a deterministic fraction of world facts is
  memorized, so closed-book answers miss things retrieval would find;
* **hallucination** — when the memory has no answer, the model sometimes
  fabricates a type-plausible one instead of abstaining;
* **parameter scaling** — task error rates shrink with ``log(parameters)``,
  so BERT-sized and GPT-3-sized configurations behave differently;
* **in-context learning** — few-shot examples and instructions in the
  prompt reduce error rates; ``fine_tune`` reduces them further and
  persistently (the supervised regime);
* **grounding** — facts or context supplied *in the prompt* are read
  reliably, which is precisely why RAG/KAPING-style architectures win.

Every call is deterministic: the per-call RNG is seeded from the model seed
and the prompt text, so identical calls give identical responses across
processes, while different prompts decorrelate.
"""

from __future__ import annotations

import hashlib
import json
import math
import random
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.observability import NULL_OBS
from repro.kg.graph import KnowledgeGraph, _humanize_relation
from repro.kg.store import TripleStore
from repro.kg.triples import IRI, Literal, OWL, RDF, RDFS, Term, Triple
from repro.llm import prompts as P
from repro.llm.ngram import NGramLanguageModel
from repro.llm.streaming import stream_chunks
from repro.llm.tokenizer import count_tokens, word_tokens


@dataclass
class LLMConfig:
    """Capability profile of a simulated model."""

    name: str = "sim-llm"
    n_parameters: float = 175e9
    knowledge_coverage: float = 0.75
    hallucination_rate: float = 0.3
    base_error_rate: float = 0.9
    instruction_tuned: bool = True
    context_window: int = 4096
    seed: int = 0

    @property
    def skill(self) -> float:
        """0..1 competence derived from parameter count (log scaling)."""
        raw = 0.35 + 0.105 * math.log10(max(self.n_parameters, 1e6) / 1e6)
        if self.instruction_tuned:
            raw += 0.05
        return max(0.05, min(0.97, raw))


@dataclass
class LLMResponse:
    """One completion plus its token accounting."""

    text: str
    prompt_tokens: int
    completion_tokens: int
    model: str

    @property
    def total_tokens(self) -> int:
        """prompt + completion tokens."""
        return self.prompt_tokens + self.completion_tokens


@dataclass
class ChatMessage:
    """A chat turn (role is 'user', 'assistant' or 'system')."""

    role: str
    content: str


@dataclass
class _Mention:
    """An entity-label match inside a text span."""

    label: str
    iri: Optional[IRI]
    start: int
    end: int


def _stable_hash(*parts: str) -> int:
    digest = hashlib.blake2b("\x00".join(parts).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def _stable_unit(*parts: str) -> float:
    """Deterministic float in [0, 1) keyed by the parts."""
    return _stable_hash(*parts) / 2 ** 64


_SCHEMA_MARKERS = (RDF.prefix, RDFS.prefix, OWL.prefix)


class SimulatedLLM:
    """A deterministic, offline large-language-model simulator."""

    def __init__(self, config: Optional[LLMConfig] = None):
        self.config = config or LLMConfig()
        # Parametric memory: the subset of world facts the model "knows".
        self.memory = TripleStore()
        # Language knowledge: label → IRI lexicons (always complete — the
        # model can *name* everything even when it doesn't know facts).
        self.entity_lexicon: Dict[str, IRI] = {}
        self.relation_lexicon: Dict[str, IRI] = {}
        self.entity_types: Dict[IRI, Set[IRI]] = {}
        self.labels: Dict[IRI, str] = {}
        self._fine_tuned: Dict[str, float] = {}
        # Surface forms learned from fine-tuning data: phrase → relation IRI.
        self.learned_phrases: Dict[str, IRI] = {}
        self._generator = NGramLanguageModel(order=3)
        self._generator_trained = False
        self.calls = 0
        self.prompt_tokens = 0
        self.completion_tokens = 0
        # Prompts in a complete_batch call that were answered by reusing the
        # completion of an identical earlier prompt in the same batch.
        self.batch_dedup_hits = 0
        # Observability recorder (no-op by default; swapped in by
        # ``Observability.bind_llm``).
        self.obs = NULL_OBS

    # ------------------------------------------------------------------
    # Knowledge absorption ("pre-training")
    # ------------------------------------------------------------------
    def absorb_knowledge(self, kg: KnowledgeGraph,
                         coverage: Optional[float] = None) -> int:
        """Memorize a deterministic ``coverage`` fraction of the KG's facts.

        Labels, types and schema triples are always absorbed (they are
        "language", not "facts"); instance facts are kept when a stable
        hash of the triple falls under the coverage threshold. Returns the
        number of instance facts memorized.
        """
        if coverage is None:
            coverage = self.config.knowledge_coverage
        memorized = 0
        for triple in kg.store:
            is_language = (
                triple.predicate in (RDFS.label, RDFS.comment, RDF.type)
                or any(triple.subject.value.startswith(m) for m in _SCHEMA_MARKERS)
                or triple.predicate.value.startswith(RDFS.prefix)
                or triple.predicate.value.startswith(OWL.prefix)
            )
            if is_language:
                self.memory.add(triple)
            else:
                gate = _stable_unit(str(self.config.seed), "memorize", triple.n3())
                if gate < coverage:
                    self.memory.add(triple)
                    memorized += 1
        self._index_language(kg)
        return memorized

    def _index_language(self, kg: KnowledgeGraph) -> None:
        for triple in kg.store.match(None, RDFS.label, None):
            if not isinstance(triple.object, Literal):
                continue
            label = triple.object.lexical
            iri = triple.subject
            self.labels[iri] = label
            is_property = bool(kg.store.match(iri, RDF.type, OWL.ObjectProperty)) \
                or kg.store.match_count(None, iri, None) > 0
            if is_property:
                self.relation_lexicon[label.lower()] = iri
                self.relation_lexicon[_humanize_relation(label).lower()] = iri
            else:
                is_class = bool(kg.store.match(iri, RDF.type, OWL.Class))
                if not is_class:
                    self.entity_lexicon[label.lower()] = iri
        for triple in kg.store.match(None, RDF.type, None):
            if isinstance(triple.object, IRI):
                self.entity_types.setdefault(triple.subject, set()).add(triple.object)

    def knows(self, triple: Triple) -> bool:
        """Whether the fact is in parametric memory."""
        return triple in self.memory

    def fine_tune(self, task: str, n_examples: int) -> None:
        """Supervised fine-tuning: persistently reduce the error rate of
        ``task``. Strength saturates with the log of the training-set size."""
        strength = min(0.92, 0.3 * math.log10(max(n_examples, 1) + 1))
        self._fine_tuned[task] = max(self._fine_tuned.get(task, 0.0), strength)

    def learn_relation_phrases(self, pairs: Iterable[Tuple[str, str]]) -> int:
        """Teach the model paraphrase surface forms for known relations.

        ``pairs`` are (surface phrase, relation label). Called by supervised
        fine-tuning wrappers: a fine-tuned extractor has seen the training
        corpus's paraphrases, a zero-shot one has not. Returns the number of
        new phrases learned.
        """
        learned = 0
        for phrase, relation_label in pairs:
            rel = self.relation_lexicon.get(relation_label.lower())
            if rel is None:
                continue
            key = phrase.strip().lower()
            if key and key not in self.relation_lexicon and \
                    key not in self.learned_phrases:
                self.learned_phrases[key] = rel
                learned += 1
        return learned

    def train_generator(self, corpus: Iterable[str]) -> None:
        """Train the free-text decoder (used for chat small talk)."""
        self._generator.fit(corpus)
        self._generator_trained = True

    # ------------------------------------------------------------------
    # Error model
    # ------------------------------------------------------------------
    def _error_rate(self, task: str, n_examples: int = 0,
                    has_instructions: bool = False) -> float:
        """Task error probability after skill, ICL and fine-tuning effects."""
        rate = self.config.base_error_rate * (1.0 - self.config.skill)
        if n_examples:
            rate *= 0.72 ** min(n_examples, 8)
        if has_instructions:
            rate *= 0.85
        if task in self._fine_tuned:
            rate *= 1.0 - self._fine_tuned[task]
        return max(0.01, min(0.95, rate))

    def _rng(self, prompt: str) -> random.Random:
        return random.Random(_stable_hash(str(self.config.seed), self.config.name, prompt))

    # ------------------------------------------------------------------
    # Public inference API
    # ------------------------------------------------------------------
    def _task_handlers(self):
        """Task name → handler routing table (one dict, shared by the
        single-prompt and batched entry points)."""
        return {
            "entity extraction": self._handle_ner,
            "relation extraction": self._handle_relation_extraction,
            "fact verification": self._handle_fact_check,
            "question answering": self._handle_qa,
            "graph verbalization": self._handle_kg2text,
            "sparql generation": self._handle_sparql,
            "question generation": self._handle_question_generation,
            "summarization": self._handle_summarization,
            "rule mining": self._handle_rule_mining,
            "chat": self._handle_chat,
            "agent step": self._handle_agent_step,
        }

    def _generate(self, prompt: str, max_tokens: int) -> str:
        """Route a prompt to its task handler and produce the completion
        text (pure: no counter side effects)."""
        parsed = P.parse_prompt(prompt)
        task = (parsed.get("Task") or "").strip().lower()
        rng = self._rng(prompt)
        handler = self._task_handlers().get(task)
        if handler is not None:
            text = handler(parsed, rng)
        else:
            text = self._freeform(prompt, rng, max_tokens)
        return text.strip()

    def complete(self, prompt: str, max_tokens: int = 256) -> LLMResponse:
        """Complete a prompt. Structured prompts (see :mod:`repro.llm.prompts`)
        are routed to the matching task behaviour; free text falls back to the
        n-gram generator."""
        self.calls += 1
        text = self._generate(prompt, max_tokens)
        in_tokens = count_tokens(prompt)
        out_tokens = count_tokens(text)
        self.prompt_tokens += in_tokens
        self.completion_tokens += out_tokens
        return LLMResponse(text=text, prompt_tokens=in_tokens,
                           completion_tokens=out_tokens, model=self.config.name)

    def complete_stream(self, prompt: str, max_tokens: int = 256):
        """Stream a completion as decode-step chunks.

        The drained stream is byte-identical to ``complete(prompt).text``
        (completions are pure functions of the model seed and the prompt,
        so the text is produced eagerly and chunked with
        :func:`repro.llm.streaming.stream_chunks`).

        Usage accounting is **exactly-once**: the call and the prompt
        tokens are charged when the stream is created (prefill), and each
        completion-token charge lands when its chunk is *consumed* — a
        fully drained stream advances :attr:`usage` exactly as
        ``complete()`` would (per-chunk token counts sum to the blob
        charge; see :mod:`repro.llm.streaming`), while a stream abandoned
        after *k* chunks charges only those *k* chunks, never the rest
        and never anything twice.
        """
        self.calls += 1
        text = self._generate(prompt, max_tokens)
        self.prompt_tokens += count_tokens(prompt)
        return self._metered_stream(text)

    def _metered_stream(self, text: str):
        for chunk in stream_chunks(text):
            self.completion_tokens += count_tokens(chunk)
            yield chunk

    def complete_batch(self, prompts: Sequence[str],
                       max_tokens: int = 256) -> List[LLMResponse]:
        """Complete many prompts in one call.

        Response-for-response identical to ``[complete(p) for p in prompts]``
        (every completion is a pure function of the model seed and the prompt
        text), but computed batch-wise:

        * identical prompts are parsed, routed and generated **once** — the
          remaining occurrences reuse the completion (``batch_dedup_hits``
          counts the savings);
        * each distinct prompt is parsed and token-counted once, and the
          distinct prompts are grouped by routed task so a batch walks each
          handler family together (the shape a real serving stack exploits
          for per-task setup; here the heavy sharing — context embedding —
          is amortized upstream by
          :meth:`repro.llm.embedding.TextEncoder.encode_batch`, which the
          batched retrieval/extraction consumers delegate to).

        Call/token counters advance exactly as the sequential loop would:
        one call and one prompt/completion token charge per *occurrence*.
        """
        prompts = list(prompts)
        if not prompts:
            return []
        self.obs.observe("llm.batch_size", len(prompts))
        first_row: Dict[str, int] = {}
        row_of = [first_row.setdefault(p, len(first_row)) for p in prompts]
        distinct = list(first_row)
        self.batch_dedup_hits += len(prompts) - len(distinct)

        parsed = [P.parse_prompt(p) for p in distinct]
        by_task: Dict[str, List[int]] = {}
        for i, sections in enumerate(parsed):
            task = (sections.get("Task") or "").strip().lower()
            by_task.setdefault(task, []).append(i)
        handlers = self._task_handlers()
        texts: List[str] = [""] * len(distinct)
        for task, indices in by_task.items():
            handler = handlers.get(task)
            for i in indices:
                rng = self._rng(distinct[i])
                if handler is not None:
                    texts[i] = handler(parsed[i], rng).strip()
                else:
                    texts[i] = self._freeform(distinct[i], rng,
                                              max_tokens).strip()
        in_tokens = [count_tokens(p) for p in distinct]
        out_tokens = [count_tokens(t) for t in texts]

        responses: List[LLMResponse] = []
        for row in row_of:
            self.calls += 1
            self.prompt_tokens += in_tokens[row]
            self.completion_tokens += out_tokens[row]
            responses.append(LLMResponse(
                text=texts[row], prompt_tokens=in_tokens[row],
                completion_tokens=out_tokens[row], model=self.config.name))
        return responses

    def chat(self, messages: Sequence[ChatMessage], max_tokens: int = 256) -> LLMResponse:
        """Chat interface: concatenates turns and completes."""
        prompt = "\n".join(f"{m.role}: {m.content}" for m in messages)
        last_user = next((m.content for m in reversed(messages) if m.role == "user"), "")
        # Route through the structured path when the last user turn is one of
        # our structured prompts; otherwise treat as chat.
        if P.parse_prompt(last_user).get("Task"):
            return self.complete(last_user, max_tokens=max_tokens)
        return self.complete(P.chat_prompt(last_user), max_tokens=max_tokens)

    @property
    def usage(self) -> Dict[str, int]:
        """Cumulative token accounting across all calls."""
        return {
            "calls": self.calls,
            "prompt_tokens": self.prompt_tokens,
            "completion_tokens": self.completion_tokens,
            "total_tokens": self.prompt_tokens + self.completion_tokens,
        }

    # ------------------------------------------------------------------
    # Mention & relation grounding
    # ------------------------------------------------------------------
    def find_mentions(self, text: str) -> List[_Mention]:
        """Longest-match entity mentions against the lexicon."""
        tokens = _span_tokens(text)
        lowered = [t[0].lower() for t in tokens]
        mentions: List[_Mention] = []
        i = 0
        max_len = 6
        while i < len(tokens):
            matched = None
            for length in range(min(max_len, len(tokens) - i), 0, -1):
                candidate = " ".join(lowered[i:i + length])
                if candidate in self.entity_lexicon:
                    matched = (length, candidate)
                    break
            if matched:
                length, candidate = matched
                mentions.append(_Mention(
                    label=text[tokens[i][1]:tokens[i + length - 1][2]],
                    iri=self.entity_lexicon[candidate],
                    start=tokens[i][1], end=tokens[i + length - 1][2],
                ))
                i += length
            else:
                i += 1
        return mentions

    def find_relations(self, text: str,
                       extra_phrases: Optional[Dict[str, IRI]] = None
                       ) -> List[Tuple[str, IRI, int]]:
        """Relation-phrase matches in the text as (phrase, IRI, position).

        The lexicon is the union of the base relation vocabulary, phrases
        learned through fine-tuning, and any call-local ``extra_phrases``
        (harvested from in-context examples).
        """
        lexicon: Dict[str, IRI] = dict(self.relation_lexicon)
        lexicon.update(self.learned_phrases)
        if extra_phrases:
            lexicon.update(extra_phrases)
        lowered = text.lower()
        found: List[Tuple[str, IRI, int]] = []
        taken: List[Tuple[int, int]] = []
        for phrase in sorted(lexicon, key=len, reverse=True):
            start = 0
            while True:
                index = lowered.find(phrase, start)
                if index < 0:
                    break
                span = (index, index + len(phrase))
                if not any(s < span[1] and span[0] < e for s, e in taken):
                    found.append((phrase, lexicon[phrase], index))
                    taken.append(span)
                start = index + 1
        found.sort(key=lambda item: item[2])
        return found

    def _type_label(self, iri: IRI) -> Optional[str]:
        types = self.entity_types.get(iri, set())
        best: Optional[str] = None
        for cls in types:
            label = self.labels.get(cls, cls.local_name)
            # Prefer the most specific (deepest/narrowest) looking label:
            # shorter generic labels like "Agent"/"Person" lose to "Actor".
            if best is None or len(label) > len(best):
                best = label
        return best

    def _entities_of_type_label(self, type_label: str) -> List[IRI]:
        wanted = type_label.strip().lower()
        out = []
        for iri, types in sorted(self.entity_types.items(), key=lambda kv: kv[0].value):
            for cls in types:
                if self.labels.get(cls, cls.local_name).lower() == wanted:
                    out.append(iri)
                    break
        return out

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _handle_ner(self, prompt: P.Prompt, rng: random.Random) -> str:
        sentence = prompt.get("Sentence") or ""
        allowed = [t.strip() for t in (prompt.get("Entity types") or "").split(",") if t.strip()]
        examples = (prompt.get("Examples") or "")
        n_examples = examples.count("->")
        has_defs = "Type definitions" in (prompt.get("Instructions") or "")
        miss = self._error_rate("ner", n_examples, has_defs)
        confusion = miss * 0.6
        hallucination = self.config.hallucination_rate * (1 - self.config.skill) * 0.5
        if n_examples:
            hallucination *= 0.5

        out: List[str] = []
        for mention in self.find_mentions(sentence):
            if rng.random() < miss * 0.55:
                continue  # the model overlooked this mention
            type_label = self._type_label(mention.iri) if mention.iri else None
            chosen = _align_type(type_label, allowed)
            if chosen is None:
                continue  # not one of the requested types
            if allowed and rng.random() < confusion * 0.4:
                alternatives = [t for t in allowed if t != chosen]
                if alternatives:
                    chosen = rng.choice(alternatives)
            out.append(f"{mention.label} [{chosen}]")
        if rng.random() < hallucination and allowed:
            etype = rng.choice(allowed)
            candidates = self._entities_of_type_label(etype)
            in_sentence = sentence.lower()
            candidates = [c for c in candidates
                          if self.labels.get(c, "").lower() not in in_sentence]
            if candidates:
                ghost = candidates[rng.randrange(len(candidates))]
                out.append(f"{self.labels.get(ghost, ghost.local_name)} [{etype}]")
        return "; ".join(out) if out else "none"

    def _handle_relation_extraction(self, prompt: P.Prompt, rng: random.Random) -> str:
        sentence = prompt.get("Sentence") or ""
        allowed = [r.strip() for r in (prompt.get("Relations") or "").split(",") if r.strip()]
        examples = prompt.get("Examples") or ""
        n_examples = examples.count("->")
        cot = "step by step" in (prompt.get("Instructions") or "").lower()
        error = self._error_rate("relation extraction", n_examples, cot)
        hallucination = self.config.hallucination_rate * (1 - self.config.skill) * 0.4

        mentions = self.find_mentions(sentence)
        # In-context learning: paraphrase surface forms present in the
        # demonstrations become usable for this call.
        extra_phrases = self._phrases_from_examples(examples)
        relations = self.find_relations(sentence, extra_phrases=extra_phrases)
        triples: List[Tuple[str, str, str]] = []
        allowed_lower = {a.lower() for a in allowed}
        for phrase, rel_iri, position in relations:
            rel_label = self.labels.get(rel_iri, rel_iri.local_name)
            if allowed and rel_label.lower() not in allowed_lower \
                    and phrase not in allowed_lower:
                continue
            before = [m for m in mentions if m.end <= position]
            after = [m for m in mentions if m.start >= position + len(phrase)]
            if not before or not after:
                continue
            subject = before[-1]
            obj = after[0]
            if rng.random() < error * 0.5:
                continue  # missed this relation instance
            if rng.random() < error * 0.25 and len(after) > 1:
                obj = after[1]  # attachment error: picked the wrong argument
            triples.append((subject.label, rel_label, obj.label))
        if rng.random() < hallucination and mentions and allowed:
            rel_label = rng.choice(allowed)
            a = rng.choice(mentions)
            b = rng.choice(mentions)
            if a.label != b.label:
                triples.append((a.label, rel_label, b.label))
        if not triples:
            return "none"
        return "; ".join(f"{s} | {r} | {o}" for s, r, o in triples)

    def _phrases_from_examples(self, examples_text: str) -> Dict[str, IRI]:
        """Harvest (phrase → relation) mappings from ICL demonstrations.

        Each demonstration line is ``- <sentence> -> s | r | o; ...``; when
        the subject and object of a gold triple flank a short span of the
        example sentence, that span is a usable surface form for ``r``.
        """
        out: Dict[str, IRI] = {}
        for line in examples_text.splitlines():
            if "->" not in line:
                continue
            sentence_part, triples_part = line.lstrip("- ").split("->", 1)
            sentence_lower = sentence_part.strip().lower()
            for chunk in triples_part.split(";"):
                parts = [p.strip() for p in chunk.split("|")]
                if len(parts) != 3 or not all(parts):
                    continue
                subject, relation_label, obj = parts
                rel = self.relation_lexicon.get(relation_label.lower())
                if rel is None:
                    continue
                s_index = sentence_lower.find(subject.lower())
                o_index = sentence_lower.find(obj.lower())
                if 0 <= s_index and s_index + len(subject) < o_index:
                    between = sentence_lower[s_index + len(subject):o_index]
                    between = between.strip().strip(",").strip()
                    if 0 < len(between.split()) <= 5:
                        out.setdefault(between, rel)
        return out

    def _handle_fact_check(self, prompt: P.Prompt, rng: random.Random) -> str:
        statement = prompt.get("Statement") or ""
        context = prompt.get("Context")
        grounded = self._ground_statement(statement)
        if context:
            verdict = self._verify_against_text(statement, grounded, context)
            if verdict is not None:
                # Reading comprehension is reliable but not perfect.
                if rng.random() < self._error_rate("fact verification", 1) * 0.15:
                    verdict = not verdict
                return ("true" if verdict else "false") + " (based on the provided context)"
        if grounded is not None:
            subject, relation, obj = grounded
            if Triple(subject, relation, obj) in self.memory:
                return "true (recalled from memory)"
            # Conflicting value for a one-valued relation → confident false.
            existing = self.memory.match(subject, relation, None)
            if existing and all(t.object != obj for t in existing):
                return "false (memory holds a different value)"
            if existing:
                return "true (recalled from memory)"
        # No grounded knowledge: hallucinate or abstain.
        if rng.random() < self.config.hallucination_rate:
            return rng.choice(["true (plausible)", "false (implausible)"])
        return "unknown"

    def _handle_qa(self, prompt: P.Prompt, rng: random.Random) -> str:
        question = prompt.get("Question") or ""
        facts = prompt.get("Facts")
        context = prompt.get("Context")
        # 1) Grounded facts in the prompt dominate (the RAG/KAPING effect).
        if facts:
            answer = self._answer_from_facts(question, facts)
            if answer is not None:
                return answer
        if context:
            answer = self._answer_from_context(question, context)
            if answer is not None:
                return answer
        # 2) Parametric memory.
        answer = self._answer_from_memory(question)
        if answer is not None:
            return answer
        # 3) Hallucinate a type-plausible answer or abstain.
        if rng.random() < self.config.hallucination_rate:
            relations = self.find_relations(question)
            candidates: List[IRI] = []
            if relations:
                rel = relations[0][1]
                candidates = [t.object for t in self.memory.match(None, rel, None)
                              if isinstance(t.object, IRI)]
            if not candidates:
                candidates = sorted(self.entity_types, key=lambda e: e.value)[:50]
            if candidates:
                ghost = candidates[rng.randrange(len(candidates))]
                return self.labels.get(ghost, ghost.local_name)
        return "unknown"

    def _handle_kg2text(self, prompt: P.Prompt, rng: random.Random) -> str:
        raw = prompt.get("Triples") or ""
        n_examples = (prompt.get("Examples") or "").count("->")
        error = self._error_rate("graph verbalization", n_examples)
        triples: List[Tuple[str, str, str]] = []
        for chunk in raw.split(";"):
            parts = [p.strip() for p in chunk.split("|")]
            if len(parts) == 3 and all(parts):
                triples.append((parts[0], parts[1], parts[2]))
        sentences: List[str] = []
        grouped: Dict[str, List[Tuple[str, str]]] = {}
        for s, p, o in triples:
            if rng.random() < error * 0.35:
                continue  # coverage slip: the model skipped a triple
            grouped.setdefault(s, []).append((p, o))
        for subject, pairs in grouped.items():
            if len(pairs) > 1 and self.config.skill > 0.6:
                clauses = ", and ".join(f"{_humanize_relation(p)} {o}" for p, o in pairs)
                sentences.append(f"{subject} {clauses}.")
            else:
                for p, o in pairs:
                    sentences.append(f"{subject} {_humanize_relation(p)} {o}.")
        if rng.random() < self.config.hallucination_rate * (1 - self.config.skill):
            # Hallucinated extra "fact" about one of the subjects.
            if grouped:
                subject = sorted(grouped)[0]
                iri = self.entity_lexicon.get(subject.lower())
                if iri is not None:
                    extra = [t for t in self.memory.match(iri, None, None)
                             if t.predicate not in (RDFS.label, RDFS.comment, RDF.type)]
                    if extra:
                        t = extra[rng.randrange(len(extra))]
                        obj_label = self.labels.get(t.object, str(t.object)) \
                            if isinstance(t.object, IRI) else t.object.lexical
                        rel_label = self.labels.get(t.predicate, t.predicate.local_name)
                        sentences.append(f"{subject} {_humanize_relation(rel_label)} {obj_label}.")
        return " ".join(sentences) if sentences else "No description available."

    def _handle_sparql(self, prompt: P.Prompt, rng: random.Random) -> str:
        question = prompt.get("Question") or ""
        schema = prompt.get("Schema")
        subgraph = prompt.get("Subgraph")
        example = prompt.get("Example query")
        n_support = sum(1 for s in (schema, subgraph, example) if s)
        error = self._error_rate("sparql generation", n_support)

        relations = self.find_relations(question)
        mentions = self.find_mentions(question)
        if not relations:
            return "SELECT ?x WHERE { ?x ?p ?o }"  # give up gracefully

        schema_map = _parse_schema_map(schema) if schema else {}

        def predicate_iri(rel: IRI) -> str:
            label = self.labels.get(rel, rel.local_name).lower()
            if schema_map.get(label):
                return f"<{schema_map[label]}>"
            if schema or rng.random() > error * 0.6:
                return f"<{rel.value}>"
            # Without schema grounding the model may mint a wrong IRI.
            return f"<http://repro.dev/schema/{label.replace(' ', '')}>"

        anchor: Optional[str] = None
        if mentions and mentions[-1].iri is not None:
            if subgraph is None and rng.random() < error * 0.3:
                anchor = None  # failed to ground the entity
            else:
                anchor = f"<{mentions[-1].iri.value}>"
        if anchor is None and mentions:
            escaped = mentions[-1].label.replace('"', '\\"')
            anchor = None  # fall through to label-based pattern below
            label_pattern = (
                f'?e <http://www.w3.org/2000/01/rdf-schema#label> "{escaped}" .'
            )
        else:
            label_pattern = None

        interrogative = question.strip().lower().split()[0] if question.strip() else "what"
        subject_position = interrogative in ("who", "which", "what") and \
            relations[0][2] < (mentions[-1].start if mentions else len(question))

        lines: List[str] = []
        if len(relations) >= 2 and self.config.skill > 0.5:
            # Two-hop chain: ?x r1 ?m . ?m r2 anchor (or the mirrored form).
            r1 = predicate_iri(relations[0][1])
            r2 = predicate_iri(relations[1][1])
            if label_pattern:
                lines.append(label_pattern)
                tail = "?e"
            else:
                tail = anchor or "?e"
            if subject_position:
                lines.append(f"?x {r1} ?m .")
                lines.append(f"?m {r2} {tail} .")
            else:
                lines.append(f"?m {r1} {tail} .")
                lines.append(f"?x {r2} ?m .")
        else:
            r1 = predicate_iri(relations[0][1])
            if label_pattern:
                lines.append(label_pattern)
                tail = "?e"
            else:
                tail = anchor or "?e"
            if subject_position:
                lines.append(f"?x {r1} {tail} .")
            else:
                lines.append(f"{tail} {r1} ?x .")
        body = " ".join(lines).rstrip(". ") + " ."
        query = f"SELECT ?x WHERE {{ {body} }}"
        if example is None and rng.random() < error * 0.35:
            query = query[:-1]  # syntax slip: dropped the closing brace
        return query

    def _handle_question_generation(self, prompt: P.Prompt, rng: random.Random) -> str:
        raw = prompt.get("Path") or ""
        instructions = prompt.get("Instructions") or ""
        multi_hop = "multi-hop" in instructions
        hops = []
        for chunk in raw.split("->"):
            parts = [p.strip() for p in chunk.split("|")]
            if len(parts) == 3:
                hops.append(tuple(parts))
        if not hops:
            return "What is this?"
        if not multi_hop or len(hops) == 1:
            s, r, _ = hops[0]
            return f"Who or what does {s} relate to via {_humanize_relation(r)}?" \
                if rng.random() < 0.2 else f"What {_humanize_relation(r)} {s}?"
        # Compose the chain inside-out: deepest entity appears, intermediate
        # entities are replaced by relative clauses — the KGEL recipe.
        s0, r0, _ = hops[0]
        clause = f"the one that {s0} {_humanize_relation(r0)}"
        for _, r, _ in hops[1:-1]:
            clause = f"the one that {clause} {_humanize_relation(r)}"
        _, r_last, _ = hops[-1]
        return f"What does {clause} {_humanize_relation(r_last)}?"

    def _handle_summarization(self, prompt: P.Prompt, rng: random.Random) -> str:
        text = prompt.get("Text") or ""
        focus = (prompt.get("Instructions") or "").replace("Focus on:", "").strip()
        sentences = _split_sentences(text)
        if not sentences:
            return ""
        # Extractive: score sentences by token overlap with the whole text
        # (centrality) plus the focus terms, keep the top few, original order.
        # Focus terms match on stems (shared 4+-char prefixes) so e.g.
        # "managers" in the focus matches "manages" in the text.
        all_tokens = set(word_tokens(text))
        focus_tokens = set(word_tokens(focus)) if focus else set()

        def focus_hits(tokens: set) -> int:
            hits = 0
            for token in tokens:
                for focus_token in focus_tokens:
                    stem = min(len(token), len(focus_token))
                    if stem >= 4 and token[:stem] == focus_token[:stem]:
                        hits += 1
                        break
            return hits

        scored = []
        for index, sentence in enumerate(sentences):
            tokens = set(word_tokens(sentence))
            score = len(tokens & all_tokens) / (len(tokens) + 1)
            score += 2.0 * focus_hits(tokens)
            scored.append((score, index, sentence))
        cap = 8 if focus_tokens else 4
        keep = max(1, min(cap, len(sentences) // 2 + 1))
        top = sorted(scored, key=lambda t: (-t[0], t[1]))[:keep]
        top.sort(key=lambda t: t[1])
        return " ".join(sentence for _, _, sentence in top)

    def _handle_rule_mining(self, prompt: P.Prompt, rng: random.Random) -> str:
        facts_text = prompt.get("Facts") or ""
        allowed = [r.strip() for r in (prompt.get("Relations") or "").split(",") if r.strip()]
        # Parse sample facts "a | r | b" into edges.
        edges: List[Tuple[str, str, str]] = []
        for line in facts_text.splitlines():
            parts = [p.strip() for p in line.lstrip("- ").split("|")]
            if len(parts) == 3:
                edges.append((parts[0], parts[1], parts[2]))
        rules: List[str] = []
        seen: Set[Tuple[str, str, str]] = set()
        by_subject: Dict[str, List[Tuple[str, str]]] = {}
        for s, r, o in edges:
            by_subject.setdefault(s, []).append((r, o))
        # Composition rules r3(x,z) :- r1(x,y), r2(y,z) observed in samples.
        for s, r1, mid in edges:
            for r2, obj in by_subject.get(mid, []):
                for s2, r3, o2 in edges:
                    if s2 == s and o2 == obj and r3 not in (r1, r2):
                        key = (r3, r1, r2)
                        if key not in seen:
                            seen.add(key)
                            rules.append(f"{_snake(r3)}(X,Z) :- {_snake(r1)}(X,Y), {_snake(r2)}(Y,Z)")
        # Symmetry rules from observed mutual edges.
        edge_set = {(s, r, o) for s, r, o in edges}
        for s, r, o in edges:
            if (o, r, s) in edge_set and ("sym", r, r) not in seen:
                seen.add(("sym", r, r))
                rules.append(f"{_snake(r)}(X,Y) :- {_snake(r)}(Y,X)")
        # A low-skill model pads the list with junk compositions.
        if allowed and rng.random() < (1 - self.config.skill):
            r = rng.choice(allowed)
            r2 = rng.choice(allowed)
            rules.append(f"{_snake(r)}(X,Z) :- {_snake(r2)}(X,Y), {_snake(r)}(Y,Z)")
        return "\n".join(rules) if rules else "none"

    def _handle_chat(self, prompt: P.Prompt, rng: random.Random) -> str:
        question = prompt.get("Question") or ""
        facts = prompt.get("Facts")
        if facts or self.find_relations(question):
            return self._handle_qa(prompt, rng)
        lowered = question.lower()
        if any(greeting in lowered for greeting in ("hello", "hi ", "hey", "good morning")):
            return "Hello! Ask me anything about the knowledge graph."
        if "thank" in lowered:
            return "You're welcome!"
        if "how are you" in lowered:
            return "I'm a language model — always ready to talk about knowledge graphs."
        if self._generator_trained:
            return self._generator.generate(rng, max_tokens=20, prompt=question) or \
                "Could you tell me more?"
        return "Could you tell me more?"

    def _handle_agent_step(self, prompt: P.Prompt, rng: random.Random) -> str:
        """One ReAct decision over the graph-tool registry.

        The decision is a pure function of the prompt (question + tool
        catalogue + scratchpad) and the model's language knowledge: the
        scratchpad carries all episode state, so replaying the same
        prompts reproduces the same decisions whatever executed them.
        The emitted surface is what :func:`repro.llm.prompts.
        parse_agent_response` parses — one ``Thought:`` line, then one
        ``Action:``/``Final:`` line with canonical (sorted-key) JSON.
        """
        question = prompt.get("Question") or ""
        tools: Set[str] = set()
        for line in (prompt.get("Tools") or "").splitlines():
            name = line.strip().lstrip("-").strip().split(":", 1)[0].strip()
            if name:
                tools.add(name)
        observations = _scratchpad_observations(prompt.get("Scratchpad") or "")

        def act(thought: str, tool: str, **args) -> str:
            if tool not in tools:
                return (f"Thought: the {tool} tool is unavailable\n"
                        f"Final: unknown")
            rendered = json.dumps(args, sort_keys=True)
            return f"Thought: {thought}\nAction: {tool} {rendered}"

        def final(thought: str, answer: str) -> str:
            return f"Thought: {thought}\nFinal: {answer}"

        def labels_of(items: Sequence[Tuple[str, str]]) -> str:
            names = sorted({label or IRI(ident).local_name
                            for ident, label in items})
            return ", ".join(names)

        mentions = [m for m in self.find_mentions(question)
                    if m.iri is not None]
        relations = self.find_relations(question)
        # Chain phrasing puts the outermost relation first; traversal
        # order from the anchor is the reverse of surface order.
        chain = [iri for _, iri, _ in reversed(relations)]
        lowered = question.lower()
        if not mentions:
            return final("the question names no entity I can ground",
                         "unknown")
        anchor = mentions[-1]

        if lowered.startswith("via which entity") and len(mentions) >= 2:
            source, target = mentions[0], mentions[-1]
            if not observations:
                return act("ground the source entity", "entity_search",
                           query=source.label)
            if len(observations) == 1:
                return act("ground the target entity", "entity_search",
                           query=target.label)
            if len(observations) == 2:
                return act("search for connecting paths", "find_path",
                           source=source.iri.value, target=target.iri.value,
                           max_hops=2)
            last = observations[-1]
            if last.items:
                return final("the connecting entities are in hand",
                             labels_of(last.items))
            return final("no path evidence was found", "unknown")

        if lowered.startswith("which entities") and relations:
            relation = relations[0][1]
            phrase = relations[0][0]
            if not observations:
                return act("ground the anchor entity", "entity_search",
                           query=anchor.label)
            if len(observations) == 1:
                return act(f"look for {phrase} links from the anchor",
                           "neighbors", entities=[anchor.iri.value],
                           relation=relation.value, direction="out")
            last = observations[-1]
            if len(observations) == 2:
                # The forward expansion answers "anchor R whom?", not
                # "who R anchor?" — whatever it held, the question wants
                # the inverse set, which only a drafted query delivers.
                query = (f"SELECT ?x WHERE {{ ?x <{relation.value}> "
                         f"<{anchor.iri.value}> }}")
                thought = ("the forward expansion was empty — draft the "
                           "inverse structured query instead"
                           if not last.items else
                           "those are forward links; the question asks "
                           "for the inverse set — draft a structured query")
                return act(thought, "sparql", query=query)
            if last.items:
                return final("collected the matching entities",
                             labels_of(last.items))
            return final("neither direction produced evidence", "unknown")

        # Default: relation-chain traversal, optionally counted.
        count_mode = lowered.startswith("how many")
        hops = len(chain)
        if not chain:
            return final("no relation phrase to follow", "unknown")
        if not observations:
            return act("ground the anchor entity", "entity_search",
                       query=anchor.label)
        walked = 0
        frontier: List[str] = [anchor.iri.value]
        frontier_items: List[Tuple[str, str]] = \
            [(anchor.iri.value, anchor.label)]
        flipped = False
        scalar: Optional[str] = None
        for observation in observations[1:]:
            if observation.scalar is not None:
                scalar = observation.scalar
                break
            if observation.items:
                walked += 1
                frontier_items = list(observation.items)
                frontier = sorted({ident for ident, _ in
                                   observation.items})[:24]
                flipped = False
            else:
                if flipped:
                    return final("both directions came back empty",
                                 "unknown")
                flipped = True
        if walked < hops:
            relation = chain[walked]
            phrase = self.labels.get(relation, relation.local_name)
            direction = "in" if flipped else "out"
            thought = ("the last expansion was empty — retry in the "
                       "inverse direction") if flipped else f"follow {phrase}"
            return act(thought, "neighbors", entities=frontier,
                       relation=relation.value, direction=direction)
        if count_mode:
            if scalar is not None:
                return final("report the count", scalar)
            return act("count the resulting entities", "aggregate",
                       op="count", values=frontier)
        return final("enough evidence gathered", labels_of(frontier_items))

    def _freeform(self, prompt: str, rng: random.Random, max_tokens: int) -> str:
        if self._generator_trained:
            text = self._generator.generate(rng, max_tokens=max_tokens, prompt=prompt)
            if text:
                return text
        words = word_tokens(prompt)[-8:]
        return " ".join(words) if words else "..."

    # ------------------------------------------------------------------
    # Grounding helpers
    # ------------------------------------------------------------------
    def _ground_statement(self, statement: str) -> Optional[Tuple[IRI, IRI, Term]]:
        """Parse a verbalized triple back into (s, p, o) via the lexicons."""
        relations = self.find_relations(statement)
        mentions = self.find_mentions(statement)
        if not relations:
            return None
        phrase, rel_iri, position = relations[0]
        before = [m for m in mentions if m.end <= position and m.iri is not None]
        after = [m for m in mentions if m.start >= position + len(phrase) and m.iri is not None]
        if before and after:
            return (before[-1].iri, rel_iri, after[0].iri)  # type: ignore[return-value]
        if before:
            # Literal-valued object: take the text after the relation phrase.
            tail = statement[position + len(phrase):].strip().rstrip(".").strip()
            if tail:
                return (before[-1].iri, rel_iri, Literal(tail))  # type: ignore[return-value]
        return None

    def _verify_against_text(self, statement: str,
                             grounded: Optional[Tuple[IRI, IRI, Term]],
                             context: str) -> Optional[bool]:
        """Does the context text support the statement?"""
        normalized_context = _normalize(context)
        normalized_statement = _normalize(statement)
        if normalized_statement and normalized_statement in normalized_context:
            return True
        if grounded is not None:
            subject, relation, obj = grounded
            subject_label = self.labels.get(subject, subject.local_name)
            rel_phrase = _humanize_relation(self.labels.get(relation, relation.local_name))
            obj_label = self.labels.get(obj, str(obj)) if isinstance(obj, IRI) else obj.lexical
            for sentence in _split_sentences(context):
                lowered = sentence.lower()
                if subject_label.lower() in lowered and rel_phrase.lower() in lowered:
                    return obj_label.lower() in lowered
        return None

    def _answer_from_facts(self, question: str, facts_text: str) -> Optional[str]:
        list_mode = question.strip().lower().startswith("list")
        relations = self.find_relations(question)
        mentions = [m for m in self.find_mentions(question) if m.iri is not None]
        fact_lines = [line.lstrip("- ").strip() for line in facts_text.splitlines() if line.strip()]
        if not relations:
            return None
        rel_phrases = [_humanize_relation(self.labels.get(r[1], r[1].local_name)).lower()
                       for r in relations]
        anchor_labels = [m.label.lower() for m in mentions]
        answers: List[str] = []
        for line in fact_lines:
            lowered = line.lower()
            if not any(p in lowered for p in rel_phrases):
                continue
            if anchor_labels and not any(a in lowered for a in anchor_labels):
                continue
            grounded = self._ground_statement(line)
            if grounded is None:
                continue
            subject, _, obj = grounded
            subject_label = self.labels.get(subject, subject.local_name)
            obj_label = self.labels.get(obj, str(obj)) if isinstance(obj, IRI) \
                else obj.lexical
            if anchor_labels and subject_label.lower() in anchor_labels:
                answers.append(obj_label)
            elif isinstance(obj, IRI) and anchor_labels and \
                    obj_label.lower() in anchor_labels:
                answers.append(subject_label)
            elif not anchor_labels:
                answers.append(obj_label)
            if answers and not list_mode:
                return answers[0]
        if answers:
            return ", ".join(dict.fromkeys(answers))
        return None

    def _answer_from_context(self, question: str, context: str) -> Optional[str]:
        relations = self.find_relations(question)
        mentions = [m for m in self.find_mentions(question)]
        if not relations:
            return None
        rel_phrase = _humanize_relation(
            self.labels.get(relations[0][1], relations[0][1].local_name)).lower()
        anchors = [m.label.lower() for m in mentions]
        for sentence in _split_sentences(context):
            lowered = sentence.lower()
            if rel_phrase in lowered and (not anchors or any(a in lowered for a in anchors)):
                grounded = self._ground_statement(sentence)
                if grounded is not None:
                    subject, _, obj = grounded
                    subject_label = self.labels.get(subject, subject.local_name).lower()
                    if anchors and subject_label in anchors:
                        return self.labels.get(obj, str(obj)) if isinstance(obj, IRI) \
                            else obj.lexical
                    return self.labels.get(subject, subject.local_name)
        return None

    def _answer_from_memory(self, question: str) -> Optional[str]:
        list_mode = question.strip().lower().startswith("list")
        relations = self.find_relations(question)
        mentions = [m for m in self.find_mentions(question) if m.iri is not None]
        if not relations or not mentions:
            return None
        rel = relations[0][1]
        anchor = mentions[-1].iri
        assert anchor is not None
        forward = self.memory.match(anchor, rel, None)
        if forward:
            labels = [self.labels.get(t.object, str(t.object))
                      if isinstance(t.object, IRI) else t.object.lexical
                      for t in forward]
            return ", ".join(dict.fromkeys(labels)) if list_mode else labels[0]
        backward = self.memory.match(None, rel, anchor)
        if backward:
            labels = [self.labels.get(t.subject, t.subject.local_name)
                      for t in backward]
            return ", ".join(dict.fromkeys(labels)) if list_mode else labels[0]
        return None


# ---------------------------------------------------------------------------
# Batch entry-point resolution
# ---------------------------------------------------------------------------

def complete_all(llm, prompts: Sequence[str],
                 max_tokens: int = 256) -> List[LLMResponse]:
    """Complete ``prompts`` through the model's best available entry point.

    Uses ``llm.complete_batch`` when the model (or wrapper) provides one,
    falling back to a plain ``complete`` loop otherwise — so batched
    pipelines accept any LLM-shaped object without feature detection at
    every call site. Exceptions propagate exactly as the underlying entry
    point raises them.
    """
    prompts = list(prompts)
    batch = getattr(llm, "complete_batch", None)
    if callable(batch):
        return batch(prompts, max_tokens=max_tokens)
    return [llm.complete(p, max_tokens=max_tokens) for p in prompts]


# ---------------------------------------------------------------------------
# Small text utilities
# ---------------------------------------------------------------------------

def _span_tokens(text: str) -> List[Tuple[str, int, int]]:
    return [(m.group(), m.start(), m.end())
            for m in re.finditer(r"[A-Za-z0-9_'-]+", text)]


@dataclass
class _AgentObservation:
    """One parsed ``Observation:`` scratchpad line.

    ``items`` are ``(identifier, label)`` pairs from ``id|label`` entries;
    ``scalar`` is the value of a ``name=value`` observation (aggregates).
    An empty/``none``/``error`` observation parses to neither.
    """

    items: List[Tuple[str, str]] = field(default_factory=list)
    scalar: Optional[str] = None


def _scratchpad_observations(text: str) -> List[_AgentObservation]:
    """Every observation in a rendered scratchpad, in episode order."""
    out: List[_AgentObservation] = []
    for line in text.splitlines():
        line = line.strip()
        if not line.startswith("Observation:"):
            continue
        body = line[len("Observation:"):].strip()
        observation = _AgentObservation()
        if body and body != "none" and not body.startswith("error"):
            if "|" not in body and "=" in body:
                observation.scalar = body.split("=", 1)[1].strip()
            else:
                for chunk in body.split(";"):
                    ident, _, label = chunk.strip().partition("|")
                    if ident:
                        observation.items.append((ident.strip(),
                                                  label.strip()))
        out.append(observation)
    return out


def _split_sentences(text: str) -> List[str]:
    parts = re.split(r"(?<=[.!?])\s+", text.strip())
    return [p.strip() for p in parts if p.strip()]


def _normalize(text: str) -> str:
    return re.sub(r"\s+", " ", text.strip().lower())


def _snake(label: str) -> str:
    return re.sub(r"[^a-z0-9]+", "_", label.strip().lower()).strip("_")


def _align_type(type_label: Optional[str], allowed: Sequence[str]) -> Optional[str]:
    """Map the model's internal type label onto the prompt's allowed list."""
    if not allowed:
        return type_label
    if type_label is None:
        return None
    lowered = type_label.lower()
    for candidate in allowed:
        if candidate.lower() == lowered:
            return candidate
    for candidate in allowed:
        if candidate.lower() in lowered or lowered in candidate.lower():
            return candidate
    return None


def _parse_schema_map(schema: str) -> Dict[str, str]:
    """Parse ``label = <iri>`` lines from a Schema prompt section."""
    out: Dict[str, str] = {}
    for line in schema.splitlines():
        match = re.match(r"\s*(.+?)\s*=\s*<([^>]+)>", line)
        if match:
            out[match.group(1).strip().lower()] = match.group(2)
    return out
