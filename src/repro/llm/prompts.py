"""Prompt templates and response parsers.

Every surveyed prompting pattern (zero-shot, few-shot/ICL, chain-of-thought,
instruction) is expressed as a *builder* producing a structured prompt with
labelled sections, plus a *parser* for the model's response. Task packages
call the builders; the simulator's router (``repro.llm.model``) reads the
same sections; benchmarks call the parsers. Keeping both sides of the
contract in one module is what makes the simulation honest: the model only
sees what the prompt actually contains.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Recognized section headers, in canonical order of appearance.
SECTIONS = [
    "Task", "Instructions", "Entity types", "Relations", "Schema",
    "Context", "Facts", "Examples", "Example query", "Subgraph",
    "Dictionary", "Sentence", "Statement", "Question", "Triples", "Path",
    "Text", "Rules", "Options", "Answer format", "History", "Tools",
    "Scratchpad",
]

_SECTION_RE = re.compile(
    r"^(" + "|".join(re.escape(s) for s in SECTIONS) + r"):\s*(.*)$"
)


@dataclass
class Prompt:
    """A structured prompt: ordered (section, content) pairs."""

    fields: List[Tuple[str, str]] = field(default_factory=list)

    def add(self, section: str, content: str) -> "Prompt":
        """Append a section (validated against the canonical list)."""
        if section not in SECTIONS:
            raise ValueError(f"unknown prompt section {section!r}")
        self.fields.append((section, content))
        return self

    def render(self) -> str:
        """The prompt text sent to the model."""
        lines = []
        for section, content in self.fields:
            lines.append(f"{section}: {content}")
        return "\n".join(lines)

    def get(self, section: str) -> Optional[str]:
        """The first content for ``section``, or None."""
        for s, content in self.fields:
            if s == section:
                return content
        return None

    def get_all(self, section: str) -> List[str]:
        """All contents for ``section``."""
        return [content for s, content in self.fields if s == section]


def parse_prompt(text: str) -> Prompt:
    """Reconstruct the structured form from rendered prompt text.

    Continuation lines (not starting a known section) are folded into the
    preceding section with ``\\n`` separators.
    """
    prompt = Prompt()
    current: Optional[str] = None
    buffer: List[str] = []
    for line in text.splitlines():
        match = _SECTION_RE.match(line)
        if match:
            if current is not None:
                prompt.fields.append((current, "\n".join(buffer).strip()))
            current = match.group(1)
            buffer = [match.group(2)]
        else:
            buffer.append(line)
    if current is not None:
        prompt.fields.append((current, "\n".join(buffer).strip()))
    return prompt


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------

def ner_prompt(sentence: str, entity_types: Sequence[str],
               examples: Sequence[Tuple[str, Sequence[Tuple[str, str]]]] = (),
               definitions: Optional[Dict[str, str]] = None) -> str:
    """PromptNER-style prompt: type list, optional definitions, ICL examples.

    ``examples`` are (sentence, [(mention, type), ...]) pairs.
    """
    prompt = Prompt().add("Task", "entity extraction")
    prompt.add("Entity types", ", ".join(entity_types))
    if definitions:
        defs = "; ".join(f"{name}: {text}" for name, text in sorted(definitions.items()))
        prompt.add("Instructions", f"Type definitions — {defs}")
    if examples:
        rendered = []
        for text, entities in examples:
            tagged = "; ".join(f"{mention} [{etype}]" for mention, etype in entities)
            rendered.append(f"- {text} -> {tagged if tagged else 'none'}")
        prompt.add("Examples", "\n".join(rendered))
    prompt.add("Sentence", sentence)
    prompt.add("Answer format", "mention [Type]; mention [Type]; ... or 'none'")
    return prompt.render()


def parse_ner_response(text: str) -> List[Tuple[str, str]]:
    """Parse ``mention [Type]; ...`` into (mention, type) pairs."""
    text = text.strip()
    if not text or text.lower() == "none":
        return []
    out = []
    for chunk in text.split(";"):
        match = re.match(r"\s*(.+?)\s*\[([^\]]+)\]\s*$", chunk)
        if match:
            out.append((match.group(1).strip(), match.group(2).strip()))
    return out


def relation_extraction_prompt(
    sentence: str, relations: Sequence[str],
    examples: Sequence[Tuple[str, Sequence[Tuple[str, str, str]]]] = (),
    chain_of_thought: bool = False,
) -> str:
    """Relation-extraction prompt with optional ICL examples and CoT cue.

    ``examples`` are (sentence, [(subject, relation, object), ...]) pairs.
    """
    prompt = Prompt().add("Task", "relation extraction")
    prompt.add("Relations", ", ".join(relations))
    if chain_of_thought:
        prompt.add("Instructions", "Think step by step about which entities are "
                                    "connected before answering.")
    if examples:
        rendered = []
        for text, triples in examples:
            tagged = "; ".join(f"{s} | {r} | {o}" for s, r, o in triples)
            rendered.append(f"- {text} -> {tagged if tagged else 'none'}")
        prompt.add("Examples", "\n".join(rendered))
    prompt.add("Sentence", sentence)
    prompt.add("Answer format", "subject | relation | object; ... or 'none'")
    return prompt.render()


def parse_relation_response(text: str) -> List[Tuple[str, str, str]]:
    """Parse ``subject | relation | object; ...`` triples."""
    text = text.strip()
    if not text or text.lower() == "none":
        return []
    out = []
    for chunk in text.split(";"):
        parts = [p.strip() for p in chunk.split("|")]
        if len(parts) == 3 and all(parts):
            out.append((parts[0], parts[1], parts[2]))
    return out


def fact_check_prompt(statement: str, context: Optional[str] = None) -> str:
    """Triple-verbalization fact-checking prompt (RQ4); context optional."""
    prompt = Prompt().add("Task", "fact verification")
    if context:
        prompt.add("Context", context)
    prompt.add("Statement", statement)
    prompt.add("Answer format", "'true' or 'false', optionally followed by a reason")
    return prompt.render()


def parse_fact_check_response(text: str) -> Optional[bool]:
    """'true'/'false' (leading) → bool; anything else → None (abstain)."""
    head = text.strip().lower().split()
    if not head:
        return None
    if head[0].startswith("true"):
        return True
    if head[0].startswith("false"):
        return False
    return None


def qa_prompt(question: str, facts: Optional[Sequence[str]] = None,
              context: Optional[str] = None,
              examples: Sequence[Tuple[str, str]] = ()) -> str:
    """Question-answering prompt; ``facts`` are verbalized KG triples
    (KAPING-style), ``context`` is free text (RAG-style)."""
    prompt = Prompt().add("Task", "question answering")
    if context:
        prompt.add("Context", context)
    if facts:
        prompt.add("Facts", "\n".join(f"- {f}" for f in facts))
    if examples:
        prompt.add("Examples", "\n".join(f"- Q: {q} -> A: {a}" for q, a in examples))
    prompt.add("Question", question)
    prompt.add("Answer format", "a short answer, or 'unknown'")
    return prompt.render()


def parse_qa_response(text: str) -> str:
    """Normalize the model's answer line."""
    return text.strip().splitlines()[0].strip() if text.strip() else "unknown"


def kg2text_prompt(triples: Sequence[Tuple[str, str, str]],
                   examples: Sequence[Tuple[str, str]] = ()) -> str:
    """KG-to-text prompt over linearized triples (RQ1).

    ``examples`` are (linearized triples, reference text) pairs for the
    few-shot setting.
    """
    prompt = Prompt().add("Task", "graph verbalization")
    if examples:
        prompt.add("Examples", "\n".join(f"- {src} -> {tgt}" for src, tgt in examples))
    linearized = " ; ".join(f"{s} | {p} | {o}" for s, p, o in triples)
    prompt.add("Triples", linearized)
    prompt.add("Answer format", "fluent English sentences covering every triple")
    return prompt.render()


def sparql_prompt(question: str, schema: Optional[str] = None,
                  subgraph: Optional[str] = None,
                  example_query: Optional[str] = None) -> str:
    """Text-to-SPARQL prompt (RQ6).

    SPARQLGEN-style one-shot prompting passes all three optional sections:
    the schema, an RDF subgraph relevant to the question, and one example of
    a correct query for a *different* question.
    """
    prompt = Prompt().add("Task", "sparql generation")
    if schema:
        prompt.add("Schema", schema)
    if subgraph:
        prompt.add("Subgraph", subgraph)
    if example_query:
        prompt.add("Example query", example_query)
    prompt.add("Question", question)
    prompt.add("Answer format", "a single SPARQL SELECT or ASK query")
    return prompt.render()


def question_generation_prompt(path: Sequence[Tuple[str, str, str]],
                               answer: str, multi_hop: bool = True) -> str:
    """Multi-hop question-generation prompt from a KG path (KGEL-style)."""
    prompt = Prompt().add("Task", "question generation")
    rendered = " -> ".join(f"{s} | {r} | {o}" for s, r, o in path)
    prompt.add("Path", rendered)
    hops = "multi-hop (the question must traverse every edge)" if multi_hop else "single-hop"
    prompt.add("Instructions", f"Generate one {hops} question whose answer is: {answer}")
    prompt.add("Answer format", "a single question ending with '?'")
    return prompt.render()


def summarization_prompt(text: str, focus: Optional[str] = None) -> str:
    """Summarization prompt (GraphRAG community summaries, chat history)."""
    prompt = Prompt().add("Task", "summarization")
    if focus:
        prompt.add("Instructions", f"Focus on: {focus}")
    prompt.add("Text", text)
    prompt.add("Answer format", "a concise summary")
    return prompt.render()


def rule_mining_prompt(relations: Sequence[str],
                       sample_paths: Sequence[str] = ()) -> str:
    """ChatRule-style prompt: propose Horn rules over the KG's relations."""
    prompt = Prompt().add("Task", "rule mining")
    prompt.add("Relations", ", ".join(relations))
    if sample_paths:
        prompt.add("Facts", "\n".join(f"- {p}" for p in sample_paths))
    prompt.add("Answer format",
               "one rule per line: head(X,Y) :- body1(X,Z), body2(Z,Y)")
    return prompt.render()


def parse_rules_response(text: str) -> List[Tuple[str, List[str]]]:
    """Parse Horn rules into (head_relation, [body_relations]) pairs.

    Variable structure is validated by the consumer; here we extract the
    relation names in order.
    """
    rules = []
    for line in text.splitlines():
        line = line.strip().lstrip("-").strip()
        if ":-" not in line:
            continue
        head_text, body_text = line.split(":-", 1)
        head_match = re.match(r"\s*([A-Za-z_][\w]*)\s*\(", head_text)
        if head_match is None:
            continue
        body_relations = re.findall(r"([A-Za-z_][\w]*)\s*\(", body_text)
        if body_relations:
            rules.append((head_match.group(1), body_relations))
    return rules


def chat_prompt(user_message: str, history: Sequence[Tuple[str, str]] = (),
                facts: Optional[Sequence[str]] = None) -> str:
    """Chatbot turn prompt with dialogue history and optional KG facts."""
    prompt = Prompt().add("Task", "chat")
    if history:
        prompt.add("History", "\n".join(f"{role}: {text}" for role, text in history))
    if facts:
        prompt.add("Facts", "\n".join(f"- {f}" for f in facts))
    prompt.add("Question", user_message)
    return prompt.render()


def triple_classification_prompt(subject: str, relation: str, obj: str,
                                 context: Optional[str] = None) -> str:
    """KG-BERT-style triple plausibility prompt."""
    return fact_check_prompt(f"{subject} {relation} {obj}.", context=context)


def agent_step_prompt(question: str, tools: str,
                      scratchpad: Sequence[str] = ()) -> str:
    """One ReAct decision step over a typed graph-tool registry.

    ``tools`` is the registry's rendered catalogue (``name: description``
    per line); ``scratchpad`` is the episode transcript so far, one line
    per prior Thought/Action/Observation/Reflection event. The model
    answers with exactly one ``Thought:`` line followed by either an
    ``Action:`` line (tool name + JSON arguments) or a ``Final:`` line.
    """
    prompt = Prompt().add("Task", "agent step")
    prompt.add("Tools", tools)
    prompt.add("Question", question)
    if scratchpad:
        prompt.add("Scratchpad", "\n".join(scratchpad))
    prompt.add("Answer format",
               "Thought: ... then Action: <tool> <json args> "
               "or Final: <answer>")
    return prompt.render()


@dataclass
class AgentDecision:
    """A parsed agent step: either one tool call or a final answer.

    ``tool``/``args`` are set for action steps, ``final`` for answer
    steps; a response matching neither (e.g. a corrupted completion)
    parses to a decision with all three unset, which the loop records as
    a malformed step rather than crashing the episode.
    """

    thought: str = ""
    tool: Optional[str] = None
    args: Dict[str, object] = field(default_factory=dict)
    final: Optional[str] = None


def parse_agent_response(text: str) -> AgentDecision:
    """Parse ``Thought:``/``Action:``/``Final:`` lines into a decision."""
    import json

    decision = AgentDecision()
    for line in text.splitlines():
        line = line.strip()
        if line.startswith("Thought:"):
            decision.thought = line[len("Thought:"):].strip()
        elif line.startswith("Final:") and decision.final is None:
            decision.final = line[len("Final:"):].strip()
        elif line.startswith("Action:") and decision.tool is None:
            body = line[len("Action:"):].strip()
            name, _, rest = body.partition(" ")
            args: Dict[str, object] = {}
            rest = rest.strip()
            if rest:
                try:
                    parsed = json.loads(rest)
                except ValueError:
                    # Garbled arguments degrade to a malformed step.
                    continue
                if not isinstance(parsed, dict):
                    continue
                args = parsed
            decision.tool = name or None
            decision.args = args
    return decision
