"""A trainable n-gram language model with stupid backoff.

This is the generative core behind the simulator's free-form text: KG-to-text
surface realization variation, chatbot small talk, and the perplexity-based
fluency metric. It is deliberately classical — a seeded, inspectable stand-in
for the autoregressive decoder of a real LLM.
"""

from __future__ import annotations

import math
import random
from collections import Counter, defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.llm.tokenizer import BOS, EOS, word_tokens


class NGramLanguageModel:
    """An order-``n`` language model with stupid-backoff scoring."""

    def __init__(self, order: int = 3, backoff: float = 0.4):
        if order < 1:
            raise ValueError("order must be >= 1")
        self.order = order
        self.backoff = backoff
        # counts[k] maps a context tuple of length k to a Counter of next tokens.
        self._counts: List[Dict[Tuple[str, ...], Counter]] = [
            defaultdict(Counter) for _ in range(order)
        ]
        self._vocab: Counter = Counter()

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(self, corpus: Iterable[str]) -> "NGramLanguageModel":
        """Count n-grams over an iterable of documents (sentences ok too)."""
        for document in corpus:
            tokens = [BOS] * (self.order - 1) + word_tokens(document) + [EOS]
            self._vocab.update(tokens)
            for i in range(self.order - 1, len(tokens)):
                token = tokens[i]
                for k in range(self.order):
                    context = tuple(tokens[i - k:i])
                    self._counts[k][context][token] += 1
        return self

    @property
    def vocab_size(self) -> int:
        """Number of token types seen in training."""
        return len(self._vocab)

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def probability(self, context: Sequence[str], token: str) -> float:
        """Stupid-backoff score of ``token`` after ``context``.

        Not a true probability across orders, but positive, bounded by 1,
        and adequate for ranking and perplexity-style comparison.
        """
        context = tuple(context[-(self.order - 1):]) if self.order > 1 else ()
        penalty = 1.0
        for k in range(len(context), -1, -1):
            sub_context = context[len(context) - k:]
            bucket = self._counts[k].get(tuple(sub_context))
            if bucket:
                total = sum(bucket.values())
                count = bucket.get(token, 0)
                if count:
                    return penalty * count / total
            penalty *= self.backoff
        # Unseen everywhere: uniform over an open vocabulary.
        return penalty / (self.vocab_size + 1 or 1)

    def log_likelihood(self, text: str) -> float:
        """Sum of log scores over the tokens of ``text``."""
        tokens = [BOS] * (self.order - 1) + word_tokens(text) + [EOS]
        total = 0.0
        for i in range(self.order - 1, len(tokens)):
            p = self.probability(tokens[max(0, i - self.order + 1):i], tokens[i])
            total += math.log(max(p, 1e-12))
        return total

    def perplexity(self, text: str) -> float:
        """exp(-mean log score) — lower is more fluent under the model."""
        tokens = word_tokens(text)
        if not tokens:
            return float("inf")
        return math.exp(-self.log_likelihood(text) / (len(tokens) + 1))

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def generate(self, rng: random.Random, max_tokens: int = 30,
                 prompt: str = "", temperature: float = 1.0) -> str:
        """Sample a continuation; deterministic given the RNG state.

        ``temperature`` < 1 sharpens toward the most frequent continuations.
        """
        context = [BOS] * (self.order - 1) + word_tokens(prompt)
        output: List[str] = []
        for _ in range(max_tokens):
            token = self._sample_next(context, rng, temperature)
            if token == EOS or token is None:
                break
            output.append(token)
            context.append(token)
        return " ".join(output)

    def _sample_next(self, context: Sequence[str], rng: random.Random,
                     temperature: float) -> Optional[str]:
        for k in range(self.order - 1, -1, -1):
            sub_context = tuple(context[len(context) - k:]) if k else ()
            bucket = self._counts[k].get(sub_context)
            if bucket:
                tokens = sorted(bucket)
                weights = [bucket[t] for t in tokens]
                if temperature != 1.0 and temperature > 0:
                    weights = [w ** (1.0 / temperature) for w in weights]
                total = sum(weights)
                threshold = rng.random() * total
                cumulative = 0.0
                for token, weight in zip(tokens, weights):
                    cumulative += weight
                    if cumulative >= threshold:
                        return token
        return None
