"""KG Question Answering (survey §4.1) — the LLM-KG cooperation arm.

* :mod:`multihop` — complex/multi-hop KGQA (RQ5): ReLMKG-style path
  reasoning, KAPING fact-retrieval prompting, retrieve-and-read, LLM-only.
* :mod:`question_generation` — multi-hop question generation (KGEL-style)
  plus a single-hop baseline, with answerability evaluation.
* :mod:`text2sparql` — query generation from text (RQ6): SGPT-style trained
  generation, SPARQLGEN one-shot prompting, zero-shot baseline; execution
  accuracy scoring; text-to-Cypher.
* :mod:`llm_sparql` — querying LLMs with SPARQL (Galois-style hybrid
  execution over a virtual LLM predicate).
* :mod:`chatbot` — KG chatbots (Omar et al.): a dialog manager fusing a
  KGQA backend with LLM conversation.
"""

from repro.qa.multihop import (
    MultiHopQuestion, generate_multihop_questions,
    LLMOnlyQA, KapingQA, RetrieveAndReadQA, ReLMKGQA, evaluate_qa,
)
from repro.qa.question_generation import (
    KGELQuestionGenerator, SingleHopQuestionGenerator, answerability,
)
from repro.qa.text2sparql import (
    Text2SparqlTask, ZeroShotText2Sparql, SparqlGenText2Sparql,
    SGPTText2Sparql, Text2Cypher, evaluate_text2sparql,
    ResilientText2SparqlQA, repair_query,
)
from repro.qa.llm_sparql import HybridSparqlEngine
from repro.qa.chatbot import KGChatbot, ChatTurn

__all__ = [
    "MultiHopQuestion", "generate_multihop_questions",
    "LLMOnlyQA", "KapingQA", "RetrieveAndReadQA", "ReLMKGQA", "evaluate_qa",
    "KGELQuestionGenerator", "SingleHopQuestionGenerator", "answerability",
    "Text2SparqlTask", "ZeroShotText2Sparql", "SparqlGenText2Sparql",
    "SGPTText2Sparql", "Text2Cypher", "evaluate_text2sparql",
    "ResilientText2SparqlQA", "repair_query",
    "HybridSparqlEngine",
    "KGChatbot", "ChatTurn",
]
