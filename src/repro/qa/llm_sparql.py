"""Querying LLMs with SPARQL (survey §4.1.4, after Saeed et al.'s Galois).

The DB-first hybrid execution model: the query planner evaluates ordinary
triple patterns against the KG, and patterns over *virtual predicates* (or
patterns the KG cannot satisfy) are answered by prompting the LLM per
binding — the structured query language becomes an interface to the model's
parametric knowledge, surfacing "hidden relations in unstructured data".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.core.resilience import RetryPolicy
from repro.kg.graph import KnowledgeGraph, _humanize_relation
from repro.kg.triples import IRI, Term
from repro.llm import prompts as P
from repro.llm.faults import LLMTransientError
from repro.llm.model import SimulatedLLM
from repro.sparql import SparqlEngine, parse_query
from repro.sparql import algebra as alg
from repro.sparql.evaluator import Solution


class HybridSparqlEngine:
    """SPARQL over KG ∪ LLM: DB-first, LLM for the virtual predicates.

    Per-binding LLM probes are retried on transient faults; a probe whose
    retries are exhausted contributes no bindings instead of failing the
    query, and ``degraded_probes`` counts how many did so.
    """

    def __init__(self, kg: KnowledgeGraph, llm: SimulatedLLM,
                 virtual_predicates: Optional[Sequence[IRI]] = None,
                 retry: Optional[RetryPolicy] = None):
        self.kg = kg
        self.llm = llm
        self.engine = SparqlEngine(kg.store)
        self.virtual_predicates: Set[IRI] = set(virtual_predicates or ())
        self.retry = retry or RetryPolicy(max_attempts=3,
                                          retry_on=(LLMTransientError,))
        self.llm_calls = 0
        self.degraded_probes = 0

    def select(self, query_text: str) -> List[Solution]:
        """Evaluate a SELECT query with LLM fallback for virtual patterns.

        Supported shape: a single group of triple patterns (the common
        text-to-SPARQL output); KG patterns evaluate first (DB-first), then
        each virtual pattern extends the bindings via one LLM call per
        solution.
        """
        parsed = parse_query(query_text)
        if not isinstance(parsed, alg.SelectQuery):
            raise ValueError("hybrid execution supports SELECT queries only")
        bgp_patterns: List[alg.TriplePattern] = []
        for element in parsed.where.elements:
            if isinstance(element, alg.BGP):
                bgp_patterns.extend(element.patterns)
            else:
                raise ValueError(
                    "hybrid execution supports plain basic graph patterns only")
        kg_patterns = [p for p in bgp_patterns if not self._is_virtual(p)]
        llm_patterns = [p for p in bgp_patterns if self._is_virtual(p)]

        solutions: List[Solution] = [{}]
        if kg_patterns:
            kg_query = alg.SelectQuery(variables=[],
                                       where=alg.GroupPattern([alg.BGP(kg_patterns)]))
            solutions = self.engine.select(kg_query)
        for pattern in llm_patterns:
            solutions = self._extend_with_llm(solutions, pattern)
        # Apply the original projection/modifiers.
        if parsed.variables:
            names = [v.name for v in parsed.variables]
            solutions = [{n: s[n] for n in names if n in s} for s in solutions]
        if parsed.distinct:
            unique: List[Solution] = []
            seen = set()
            for solution in solutions:
                key = tuple(sorted((k, v.n3()) for k, v in solution.items()))
                if key not in seen:
                    seen.add(key)
                    unique.append(solution)
            solutions = unique
        if parsed.limit is not None:
            solutions = solutions[parsed.offset:parsed.offset + parsed.limit]
        elif parsed.offset:
            solutions = solutions[parsed.offset:]
        return solutions

    def _is_virtual(self, pattern: alg.TriplePattern) -> bool:
        predicate = pattern.predicate
        if isinstance(predicate, alg.Var):
            return False
        if predicate in self.virtual_predicates:
            return True
        # DB-first: a concrete predicate absent from the KG falls through
        # to the LLM.
        return isinstance(predicate, IRI) and \
            self.kg.store.match_count(None, predicate, None) == 0

    def _extend_with_llm(self, solutions: List[Solution],
                         pattern: alg.TriplePattern) -> List[Solution]:
        out: List[Solution] = []
        for solution in solutions:
            subject = self._resolve(pattern.subject, solution)
            obj = self._resolve(pattern.object, solution)
            predicate = pattern.predicate
            assert isinstance(predicate, IRI)
            if isinstance(subject, IRI) and isinstance(pattern.object, alg.Var):
                for answer in self._ask_llm(subject, predicate):
                    extended = dict(solution)
                    extended[pattern.object.name] = answer
                    out.append(extended)
            elif isinstance(subject, IRI) and isinstance(obj, (IRI,)):
                answers = self._ask_llm(subject, predicate)
                if obj in answers:
                    out.append(solution)
            # Patterns with unbound subjects are unanswerable by prompting —
            # an honest limitation of LLM-as-database (no reverse index).
        return out

    @staticmethod
    def _resolve(term, solution: Solution):
        if isinstance(term, alg.Var):
            return solution.get(term.name, term)
        return term

    def _ask_llm(self, subject: IRI, predicate: IRI) -> List[Term]:
        """One LLM probe: 'List what <relation> <subject>?'"""
        self.llm_calls += 1
        phrase = _humanize_relation(self.kg.label(predicate))
        question = f"List what {phrase} {self.kg.label(subject)}?"
        outcome = self.retry.run(lambda: self.llm.complete(P.qa_prompt(question)),
                                 key=question)
        if outcome.error is not None:
            self.degraded_probes += 1
            return []
        answer = P.parse_qa_response(outcome.value.text)
        if not answer or answer.lower() == "unknown":
            return []
        out: List[Term] = []
        for part in answer.split(","):
            matches = self.kg.find_by_label(part.strip())
            if matches:
                out.append(matches[0])
        return out
