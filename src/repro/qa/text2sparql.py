"""Query generation from text (survey §4.1.3, RQ6): text → SPARQL/Cypher.

Systems, in the survey's order of increasing grounding:

* :class:`ZeroShotText2Sparql` — bare prompting; the model must guess
  predicate IRIs and entity groundings, and may emit malformed queries.
* :class:`SparqlGenText2Sparql` — SPARQLGEN one-shot prompting: the prompt
  carries the RDF subgraph relevant to the question, the schema, and one
  correct example query for a *different* question. Pliukhin et al.'s
  improvement (wider subgraph extraction) is the ``subgraph_hops`` knob.
* :class:`SGPTText2Sparql` — SGPT: a generator *trained* on (question,
  query) pairs, prompted with the schema it learned.
* :class:`Text2Cypher` — the Cypher half of RQ6, executed through the
  Cypher→SPARQL translator.

Execution accuracy is the paper-standard metric: parse the generated query,
run it on the KG, compare answer sets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.resilience import RetryPolicy
from repro.kg.datasets import Dataset
from repro.kg.graph import KnowledgeGraph, _humanize_relation
from repro.kg.rdf import dumps_ntriples
from repro.kg.triples import IRI, OWL, RDF, RDFS
from repro.llm import prompts as P
from repro.llm.faults import LLMTransientError
from repro.llm.model import SimulatedLLM
from repro.sparql import SparqlEngine, SparqlParseError, parse_query
from repro.sparql.cypher import CypherEngine, CypherParseError
from repro.qa.multihop import (
    MultiHopQuestion, ReLMKGQA, generate_multihop_questions,
)


@dataclass
class Text2SparqlInstance:
    """One (question, gold SPARQL, gold answers) item."""

    question: str
    gold_query: str
    answers: Set[IRI]


class Text2SparqlTask:
    """Build evaluation instances from a dataset's generated questions."""

    def __init__(self, dataset: Dataset, n: int = 20, hops: int = 1,
                 seed: int = 0):
        self.dataset = dataset
        self.kg = dataset.kg
        self.engine = SparqlEngine(self.kg.store)
        self.instances = [
            self._to_instance(q)
            for q in generate_multihop_questions(dataset, n=n, hops=hops,
                                                 seed=seed)
        ]

    def _to_instance(self, question: MultiHopQuestion) -> Text2SparqlInstance:
        patterns = []
        subject = question.anchor.n3()
        for index, relation in enumerate(question.relations):
            var = "?x" if index == len(question.relations) - 1 else f"?m{index}"
            patterns.append(f"{subject} {relation.n3()} {var} .")
            subject = var
        gold_query = "SELECT ?x WHERE { " + " ".join(patterns) + " }"
        return Text2SparqlInstance(question=question.text,
                                   gold_query=gold_query,
                                   answers=question.answers)

    def schema_text(self) -> str:
        """``label = <iri>`` lines for every relation (the Schema section)."""
        lines = []
        for relation, prop in sorted(self.dataset.ontology.properties.items(),
                                     key=lambda kv: kv[0].value):
            lines.append(f"{_humanize_relation(prop.label)} = <{relation.value}>")
        return "\n".join(lines)

    def subgraph_text(self, question: str, llm: SimulatedLLM,
                      hops: int = 1) -> Optional[str]:
        """The N-Triples subgraph around the question's entities."""
        mentions = llm.find_mentions(question)
        seeds = [m.iri for m in mentions if m.iri is not None]
        if not seeds:
            return None
        subgraph = self.kg.subgraph(seeds, hops=hops, max_triples=60)
        return dumps_ntriples(subgraph)


_EXAMPLE_QUERY = ('SELECT ?x WHERE { <http://repro.dev/kg/Example> '
                  '<http://repro.dev/schema/exampleOf> ?x . }')


def _default_draft_retry() -> RetryPolicy:
    """The drafting retry policy: three attempts over transient faults."""
    return RetryPolicy(max_attempts=3, retry_on=(LLMTransientError,))


class ZeroShotText2Sparql:
    """Bare prompting, no grounding material."""

    def __init__(self, llm: SimulatedLLM, retry: Optional[RetryPolicy] = None):
        self.llm = llm
        self.retry = retry or _default_draft_retry()

    def generate(self, question: str) -> str:
        """Bare prompt → query text (may be malformed; callers must parse).

        Transient LLM faults are retried; the final fault propagates."""
        return self.retry.call(
            lambda: self.llm.complete(P.sparql_prompt(question)).text,
            key=question)


class SparqlGenText2Sparql:
    """SPARQLGEN: one-shot prompt with subgraph + schema + example query."""

    def __init__(self, llm: SimulatedLLM, task: Text2SparqlTask,
                 subgraph_hops: int = 1, retry: Optional[RetryPolicy] = None):
        self.llm = llm
        self.task = task
        self.subgraph_hops = subgraph_hops
        self.retry = retry or _default_draft_retry()

    def generate(self, question: str) -> str:
        """One-shot prompt with subgraph + schema + example query."""
        prompt = P.sparql_prompt(
            question,
            schema=self.task.schema_text(),
            subgraph=self.task.subgraph_text(question, self.llm,
                                             hops=self.subgraph_hops),
            example_query=_EXAMPLE_QUERY,
        )
        return self.retry.call(lambda: self.llm.complete(prompt).text,
                               key=question)


class SGPTText2Sparql:
    """SGPT: fine-tuned generation with the learned schema."""

    def __init__(self, llm: SimulatedLLM, task: Text2SparqlTask,
                 retry: Optional[RetryPolicy] = None):
        self.llm = llm
        self.task = task
        self.trained_on = 0
        self.retry = retry or _default_draft_retry()

    def fit(self, training_questions: Sequence[str]) -> None:
        """Train on (question, query) pairs."""
        self.llm.fine_tune("sparql generation", len(training_questions))
        self.trained_on = len(training_questions)

    def generate(self, question: str) -> str:
        """Trained generation with the learned schema in the prompt."""
        prompt = P.sparql_prompt(
            question,
            schema=self.task.schema_text(),
            example_query=_EXAMPLE_QUERY,
        )
        return self.retry.call(lambda: self.llm.complete(prompt).text,
                               key=question)


def evaluate_text2sparql(system, task: Text2SparqlTask,
                         instances: Optional[Sequence[Text2SparqlInstance]] = None
                         ) -> Dict[str, float]:
    """Parse rate, execution accuracy (exact answer-set match) and mean F1."""
    instances = list(instances if instances is not None else task.instances)
    if not instances:
        raise ValueError("no instances to evaluate")
    parsed = exact = 0
    total_f1 = 0.0
    for instance in instances:
        query_text = system.generate(instance.question)
        try:
            parse_query(query_text)
        except SparqlParseError:
            continue
        parsed += 1
        try:
            rows = task.engine.select(query_text)
        except Exception:
            continue
        predicted: Set[IRI] = set()
        for row in rows:
            for value in row.values():
                if isinstance(value, IRI):
                    predicted.add(value)
        gold = instance.answers
        if predicted == gold:
            exact += 1
        if predicted and gold:
            tp = len(predicted & gold)
            precision = tp / len(predicted)
            recall = tp / len(gold)
            if precision + recall:
                total_f1 += 2 * precision * recall / (precision + recall)
        elif not predicted and not gold:
            total_f1 += 1.0
    n = len(instances)
    return {"parse_rate": parsed / n, "execution_accuracy": exact / n,
            "f1": total_f1 / n, "instances": float(n)}


def repair_query(query_text: str) -> str:
    """One deterministic repair round for near-miss SPARQL drafts.

    Handles the malformations the simulated drafting model (and its
    fault-injected variants) actually produce: unbalanced braces and
    trailing garbage after the last brace.
    """
    repaired = query_text.strip()
    opened = repaired.count("{")
    closed = repaired.count("}")
    if opened > closed:
        repaired += " }" * (opened - closed)
    elif closed > opened and repaired.endswith("}"):
        while repaired.count("}") > opened and repaired.endswith("}"):
            repaired = repaired[:-1].rstrip()
    last = repaired.rfind("}")
    if 0 <= last < len(repaired) - 1:
        repaired = repaired[:last + 1]
    return repaired


class ResilientText2SparqlQA:
    """Drafting with retry → parse-repair loop → path-reasoning fallback.

    The full degradation ladder for the text→query workload: (1) draft a
    query with the wrapped generator (which already retries transient LLM
    faults); (2) if the draft does not parse, run bounded repair rounds;
    (3) if drafting or execution still fails, fall back to
    :class:`~repro.qa.multihop.ReLMKGQA` path reasoning over the KG, which
    needs no query language at all. ``answer`` never raises for
    operational faults; ``last_degraded`` records whether the structured
    path was abandoned.
    """

    def __init__(self, system, task: Text2SparqlTask, llm: SimulatedLLM,
                 max_repairs: int = 2):
        self.system = system
        self.task = task
        self.llm = llm
        self.max_repairs = max_repairs
        self.path_fallback = ReLMKGQA(llm, task.kg)
        self.last_degraded = False
        self.last_route = "sparql"

    def draft(self, question: str) -> Optional[str]:
        """A parseable query, after repairs — or None when drafting failed."""
        try:
            query_text = self.system.generate(question)
        except LLMTransientError:
            return None
        for _ in range(self.max_repairs + 1):
            try:
                parse_query(query_text)
                return query_text
            except SparqlParseError:
                repaired = repair_query(query_text)
                if repaired == query_text:
                    return None
                query_text = repaired
        return None

    def answer(self, question: str) -> Set[IRI]:
        """Entities answering the question, degrading through the ladder."""
        self.last_degraded = False
        self.last_route = "sparql"
        query_text = self.draft(question)
        if query_text is not None:
            try:
                rows = self.task.engine.select(query_text)
            except Exception:
                rows = None
            if rows is not None:
                out: Set[IRI] = set()
                for row in rows:
                    for value in row.values():
                        if isinstance(value, IRI):
                            out.add(value)
                return out
        # Structured querying failed outright: fall back to path reasoning
        # (which itself degrades to closed-book QA).
        self.last_degraded = True
        self.last_route = "path-reasoning"
        try:
            return self.path_fallback.answer(question)
        except LLMTransientError:
            return set()

    def answer_with_route(self, question: str) -> Tuple[Set[IRI], str]:
        """Answer plus the route that produced it, as one atomic result.

        ``last_route`` is instance state and races when one QA system is
        shared by concurrent serving workers; this returns the pair
        captured immediately after the call, which is what the gateway's
        per-tier accounting needs.
        """
        answers = self.answer(question)
        return answers, self.last_route


class Text2Cypher:
    """Text → Cypher, executed through the Cypher front-end.

    The generator grounds the question with the backbone's lexicons and
    emits a ``MATCH`` pattern; faithfulness of the grounding carries the
    same failure modes as the SPARQL path.
    """

    def __init__(self, llm: SimulatedLLM, kg: KnowledgeGraph):
        self.llm = llm
        self.kg = kg
        self.engine = CypherEngine(kg.store)

    def generate(self, question: str) -> Optional[str]:
        """A Cypher query, or None when the question cannot be grounded."""
        mentions = [m for m in self.llm.find_mentions(question)
                    if m.iri is not None]
        relations = [hit[1] for hit in self.llm.find_relations(question)]
        if not mentions or not relations:
            return None
        anchor = mentions[-1]
        label = self.kg.label(anchor.iri).replace('"', '\\"')  # type: ignore[arg-type]
        chain = list(reversed(relations))
        pattern = f'(a {{name: "{label}"}})'
        for index, relation in enumerate(chain):
            var = "x" if index == len(chain) - 1 else f"m{index}"
            pattern += f"-[:{relation.local_name}]->({var})"
        return f"MATCH {pattern} RETURN x"

    def answer(self, question: str) -> Set[IRI]:
        """Generate, execute, and collect the bound entities."""
        cypher = self.generate(question)
        if cypher is None:
            return set()
        try:
            rows = self.engine.execute(cypher)
        except (CypherParseError, SparqlParseError):
            return set()
        out: Set[IRI] = set()
        if isinstance(rows, list):
            for row in rows:
                for value in row.values():
                    if isinstance(value, IRI):
                        out.add(value)
        return out
