"""Complex / multi-hop KGQA (survey §4.1.2, RQ5).

Question generation: seeded relation walks produce (question text, relation
chain, gold answers) triples, with 1–3 hops.

Systems, ordered by how tightly they couple the LLM to the KG:

* :class:`LLMOnlyQA` — the question goes straight to the model.
* :class:`KapingQA` — Baek et al.: retrieve the facts most similar to the
  question (embedding metric) and prepend them to the prompt.
* :class:`RetrieveAndReadQA` — Sen et al.: a KGQA retrieval model extracts
  candidate facts via relation grounding; the LLM reads question + facts.
* :class:`ReLMKGQA` — Cao & Liu: textualize candidate KG paths, score them
  against the question (the path-centric reasoning module), then let the
  LLM answer over the best paths.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.executor import ParallelExecutor, chunked
from repro.core.observability import resolve_obs
from repro.kg.datasets import Dataset
from repro.kg.graph import KnowledgeGraph, _humanize_relation
from repro.kg.triples import IRI, OWL, RDF, RDFS
from repro.llm import prompts as P
from repro.llm.caching import maybe_cached
from repro.llm.embedding import TextEncoder
from repro.llm.model import SimulatedLLM, complete_all
from repro.llm.tokenizer import word_tokens
from repro.vector import VectorIndex


@dataclass
class MultiHopQuestion:
    """One generated question with its gold structure."""

    text: str
    anchor: IRI
    relations: Tuple[IRI, ...]
    answers: Set[IRI]

    @property
    def hops(self) -> int:
        """Number of traversal steps the question requires."""
        return len(self.relations)


def _chain_answers(kg: KnowledgeGraph, anchor: IRI,
                   relations: Sequence[IRI]) -> Set[IRI]:
    frontier: Set[IRI] = {anchor}
    for relation in relations:
        next_frontier: Set[IRI] = set()
        for node in frontier:
            for triple in kg.store.match(node, relation, None):
                if isinstance(triple.object, IRI):
                    next_frontier.add(triple.object)
        frontier = next_frontier
        if not frontier:
            break
    return frontier


def _question_text(kg: KnowledgeGraph, anchor: IRI,
                   relations: Sequence[IRI]) -> str:
    """Surface form: outermost relation first, as humans phrase chains."""
    phrases = [_humanize_relation(kg.label(r)) for r in relations]
    anchor_label = kg.label(anchor)
    if len(relations) == 1:
        return f"List what {phrases[0]} {anchor_label}?"
    inner = anchor_label
    for phrase in phrases[:-1]:
        connective = "" if phrase.endswith(" of") or phrase.endswith(" in") \
            else " of"
        inner = f"the {phrase}{connective} {inner}"
    return f"List what {phrases[-1]} {inner}?"


def generate_multihop_questions(dataset: Dataset, n: int = 30, hops: int = 2,
                                seed: int = 0) -> List[MultiHopQuestion]:
    """Seeded questions whose relation chains are guaranteed non-empty."""
    rng = random.Random(seed)
    kg = dataset.kg
    instance_relations = [
        r for r in kg.store.relations()
        if not r.value.startswith(RDFS.prefix)
        and not r.value.startswith(OWL.prefix) and r != RDF.type
    ]
    anchors = sorted({t.subject for r in instance_relations
                      for t in kg.store.match(None, r, None)},
                     key=lambda e: e.value)
    rng.shuffle(anchors)
    questions: List[MultiHopQuestion] = []

    def extend(node: IRI, chain: List[IRI]) -> Optional[List[IRI]]:
        """Randomized DFS for a relation chain of exactly ``hops`` steps."""
        if len(chain) == hops:
            return chain
        steps = [(t.predicate, t.object) for r in instance_relations
                 for t in kg.store.match(node, r, None)
                 if isinstance(t.object, IRI)]
        steps = [s for s in steps if not chain or s[0] != chain[-1]]
        steps.sort(key=lambda s: (s[0].value, s[1].value))
        rng.shuffle(steps)
        for relation, neighbour in steps:
            found = extend(neighbour, chain + [relation])  # type: ignore[arg-type]
            if found is not None:
                return found
        return None

    for anchor in anchors:
        if len(questions) >= n:
            break
        chain = extend(anchor, [])
        if chain is None:
            continue
        answers = _chain_answers(kg, anchor, chain)
        if not answers:
            continue
        questions.append(MultiHopQuestion(
            text=_question_text(kg, anchor, chain),
            anchor=anchor, relations=tuple(chain), answers=answers))
    return questions


# ---------------------------------------------------------------------------
# Systems
# ---------------------------------------------------------------------------

def _bind_qa(system, obs):
    """Resolve a QA system's ``obs`` knob; bind its LLM stack and KG as
    metric sources when the recorder is live."""
    resolved = resolve_obs(obs)
    if resolved.enabled:
        resolved.bind_llm(system.llm)
        resolved.bind_kg(system.kg)
    return resolved


class LLMOnlyQA:
    """The question goes straight to the backbone — no KG coupling."""

    def __init__(self, llm: SimulatedLLM, kg: KnowledgeGraph, cache=False,
                 obs=None):
        self.llm = maybe_cached(llm, cache)
        self.kg = kg
        self.obs = _bind_qa(self, obs)

    def answer(self, question: str) -> Set[IRI]:
        """One closed-book LLM call, answers resolved to entities."""
        response = self.llm.complete(P.qa_prompt(question))
        return _resolve(self.kg, P.parse_qa_response(response.text))

    def answer_batch(self, questions: Sequence[str],
                     batch_size: Optional[int] = None,
                     executor: Optional[ParallelExecutor] = None
                     ) -> List[Set[IRI]]:
        """Result-identical batched :meth:`answer` (one completion batch
        per chunk; entity resolution fans out across the executor)."""
        executor = executor or ParallelExecutor(obs=self.obs)
        answers: List[Set[IRI]] = []
        for chunk in chunked(list(questions), batch_size):
            prompts = executor.map(chunk, P.qa_prompt)
            responses = complete_all(self.llm, prompts)
            answers.extend(executor.map(
                responses,
                lambda r: _resolve(self.kg, P.parse_qa_response(r.text))))
        return answers


class KapingQA:
    """KAPING: similarity-retrieved KG facts prepended to the prompt."""

    def __init__(self, llm: SimulatedLLM, kg: KnowledgeGraph,
                 top_k: int = 12, encoder: Optional[TextEncoder] = None,
                 cache=False, obs=None):
        self.llm = maybe_cached(llm, cache)
        self.kg = kg
        self.top_k = top_k
        self.encoder = encoder or TextEncoder(dim=96)
        self._index: Optional[VectorIndex] = None
        self._facts: List[str] = []
        self.obs = _bind_qa(self, obs)

    def _build_index(self) -> None:
        self._index = VectorIndex(dim=self.encoder.dim)
        self.obs.bind_index("kaping.index", self._index)
        for triple in self.kg.store:
            if triple.predicate in (RDFS.label, RDFS.comment, RDF.type):
                continue
            if triple.predicate.value.startswith(RDFS.prefix) or \
                    triple.predicate.value.startswith(OWL.prefix):
                continue
            fact = self.kg.verbalize_triple(triple)
            self._facts.append(fact)
            self._index.add(len(self._facts) - 1, self.encoder.encode(fact))

    def retrieve(self, question: str) -> List[str]:
        """The top-k facts most similar to the question."""
        if self._index is None:
            self._build_index()
        assert self._index is not None
        hits = self._index.search(self.encoder.encode(question), k=self.top_k)
        return [self._facts[hit.key] for hit in hits]

    def answer(self, question: str) -> Set[IRI]:
        """Retrieve the top-k similar facts, then answer over them."""
        facts = self.retrieve(question)
        response = self.llm.complete(P.qa_prompt(question, facts=facts))
        return _resolve(self.kg, P.parse_qa_response(response.text))

    def answer_batch(self, questions: Sequence[str],
                     batch_size: Optional[int] = None,
                     executor: Optional[ParallelExecutor] = None
                     ) -> List[Set[IRI]]:
        """Batched KAPING: per chunk, distinct questions are retrieved
        once (fanned out — retrieval is pure), all reads go through one
        batched completion, and resolution fans out again. Identical
        output to ``[answer(q) for q in questions]``."""
        executor = executor or ParallelExecutor(obs=self.obs)
        if self._index is None:
            self._build_index()
        answers: List[Set[IRI]] = []
        for chunk in chunked(list(questions), batch_size):
            first_row: Dict[str, int] = {}
            row_of = [first_row.setdefault(q, len(first_row)) for q in chunk]
            fact_lists = executor.map(list(first_row), self.retrieve)
            prompts = [P.qa_prompt(q, facts=fact_lists[row])
                       for q, row in zip(chunk, row_of)]
            responses = complete_all(self.llm, prompts)
            answers.extend(executor.map(
                responses,
                lambda r: _resolve(self.kg, P.parse_qa_response(r.text))))
        return answers


class RetrieveAndReadQA:
    """Sen et al.: relation-grounded KGQA retrieval + an LLM reader."""

    def __init__(self, llm: SimulatedLLM, kg: KnowledgeGraph,
                 facts_budget: int = 40, cache=False, obs=None):
        self.llm = maybe_cached(llm, cache)
        self.kg = kg
        self.facts_budget = facts_budget
        self.obs = _bind_qa(self, obs)

    def retrieve(self, question: str,
                 executor: Optional[ParallelExecutor] = None) -> List[str]:
        """Facts for the question's entities restricted to its relations.

        With an ``executor``, each expansion round fans its frontier nodes
        out in parallel (node expansion is a pure KG read); the facts
        budget is then applied in node order over the collected results,
        so the returned facts are identical to the sequential walk.
        """
        executor = executor or ParallelExecutor(obs=self.obs)
        mentions = self.llm.find_mentions(question)
        relations = {hit[1] for hit in self.llm.find_relations(question)}
        seeds = [m.iri for m in mentions if m.iri is not None]
        facts: List[str] = []
        frontier = list(seeds)
        for _ in range(2):  # two expansion rounds cover 2-hop questions
            expansions = executor.map(
                frontier, lambda node: self._expand_node(node, relations))
            next_frontier: List[IRI] = []
            for pairs in expansions:
                for fact, neighbour in pairs:
                    facts.append(fact)
                    next_frontier.append(neighbour)
                    if len(facts) >= self.facts_budget:
                        return facts
            frontier = next_frontier
        return facts

    def _expand_node(self, node: IRI,
                     relations: Set[IRI]) -> List[Tuple[str, IRI]]:
        """One node's (fact, neighbour) expansion — a pure KG read."""
        out: List[Tuple[str, IRI]] = []
        for triple in self.kg.store.match(node, None, None):
            if relations and triple.predicate not in relations:
                continue
            if not isinstance(triple.object, IRI):
                continue
            out.append((self.kg.verbalize_triple(triple), triple.object))
        return out

    def answer(self, question: str) -> Set[IRI]:
        """Relation-grounded retrieval, then an LLM read over the facts."""
        facts = self.retrieve(question)
        response = self.llm.complete(P.qa_prompt(question, facts=facts))
        return _resolve(self.kg, P.parse_qa_response(response.text))

    def answer_batch(self, questions: Sequence[str],
                     batch_size: Optional[int] = None,
                     executor: Optional[ParallelExecutor] = None
                     ) -> List[Set[IRI]]:
        """Batched retrieve-and-read: retrieval fans out per question,
        all reads share one batched completion per chunk. Identical
        output to ``[answer(q) for q in questions]``."""
        executor = executor or ParallelExecutor(obs=self.obs)
        answers: List[Set[IRI]] = []
        for chunk in chunked(list(questions), batch_size):
            fact_lists = executor.map(chunk, self.retrieve)
            prompts = [P.qa_prompt(q, facts=facts)
                       for q, facts in zip(chunk, fact_lists)]
            responses = complete_all(self.llm, prompts)
            answers.extend(executor.map(
                responses,
                lambda r: _resolve(self.kg, P.parse_qa_response(r.text))))
        return answers


class ReLMKGQA:
    """ReLMKG: textualized path scoring + LLM reading over the best paths.

    The path-centric reasoning module enumerates bounded paths from the
    question's anchor, scores each textualized path against the question
    (token-overlap over relation phrases — the explicit-structure signal the
    textual encoder alone lacks), and keeps chains whose relations all occur
    in the question.
    """

    def __init__(self, llm: SimulatedLLM, kg: KnowledgeGraph,
                 max_hops: int = 3, beam: int = 200, cache=False, obs=None):
        self.llm = maybe_cached(llm, cache)
        self.kg = kg
        self.max_hops = max_hops
        self.beam = beam
        self.obs = _bind_qa(self, obs)

    def _analyze(self, question: str
                 ) -> Tuple[Optional[str], str, Set[IRI]]:
        """The pure reasoning phase: path enumeration and scoring.

        Returns ``(prompt, mode, fallback_answers)``: the completion the
        question needs (``None`` when no paths exist at all), whether the
        response resolves closed-book (``"closed"``) or confirms paths
        (``"read"``), and the path endpoints a ``"read"`` falls back to.
        """
        mentions = [m for m in self.llm.find_mentions(question)
                    if m.iri is not None]
        if not mentions:
            return P.qa_prompt(question), "closed", set()
        anchor = mentions[-1].iri
        assert anchor is not None
        question_relations = [hit[1] for hit in self.llm.find_relations(question)]
        hops = max(1, len(question_relations))
        # The question phrases the chain outermost-first; traversal order is
        # the reverse.
        plan = list(reversed(question_relations))[: self.max_hops]
        paths = self._expand_paths(anchor, min(hops, self.max_hops))
        scored: List[Tuple[float, Tuple[IRI, ...], IRI]] = []
        for relations_path, endpoint in paths:
            score = self._path_score(relations_path, plan, question)
            scored.append((score, relations_path, endpoint))
        if not scored:
            return None, "empty", set()
        scored.sort(key=lambda item: (-item[0], item[1], item[2].value))
        best_score = scored[0][0]
        if best_score <= 0:
            return P.qa_prompt(question), "closed", set()
        top = [item for item in scored if item[0] >= best_score - 1e-9]
        facts = []
        answers: Set[IRI] = set()
        anchor_label = self.kg.label(anchor)
        for _, relations_path, endpoint in top:
            answers.add(endpoint)
            chain = " then ".join(_humanize_relation(self.kg.label(r))
                                  for r in relations_path)
            facts.append(f"{anchor_label} {chain} {self.kg.label(endpoint)}.")
        # The reader confirms over the textualized paths (keeps the LLM in
        # the loop; with a strong model this is a no-op validation).
        reader_question = question if question.lower().startswith("list") \
            else "List " + question
        return P.qa_prompt(reader_question, facts=facts), "read", answers

    def _resolve_outcome(self, response, mode: str,
                         fallback: Set[IRI]) -> Set[IRI]:
        read = _resolve(self.kg, P.parse_qa_response(response.text))
        return (read or fallback) if mode == "read" else read

    def answer(self, question: str) -> Set[IRI]:
        """Enumerate and score textualized paths, then read the best ones."""
        prompt, mode, fallback = self._analyze(question)
        if prompt is None:
            return set()
        response = self.llm.complete(prompt)
        return self._resolve_outcome(response, mode, fallback)

    def answer_batch(self, questions: Sequence[str],
                     batch_size: Optional[int] = None,
                     executor: Optional[ParallelExecutor] = None
                     ) -> List[Set[IRI]]:
        """Batched ReLMKG: per chunk, the pure path-reasoning phase fans
        out per question, then every needed completion (closed-book
        resolutions and path-confirming reads alike) goes through one
        batched call. Identical output to ``[answer(q) for q in
        questions]``."""
        executor = executor or ParallelExecutor(obs=self.obs)
        answers: List[Set[IRI]] = []
        for chunk in chunked(list(questions), batch_size):
            analyses = executor.map(chunk, self._analyze)
            rows = [i for i, (prompt, _, _) in enumerate(analyses)
                    if prompt is not None]
            responses = complete_all(self.llm,
                                     [analyses[i][0] for i in rows])
            resolved = executor.map(
                list(zip(responses, rows)),
                lambda pair: self._resolve_outcome(
                    pair[0], analyses[pair[1]][1], analyses[pair[1]][2]))
            chunk_answers: List[Set[IRI]] = [set() for _ in chunk]
            for i, answer in zip(rows, resolved):
                chunk_answers[i] = answer
            answers.extend(chunk_answers)
        return answers

    def _expand_paths(self, anchor: IRI, hops: int
                      ) -> List[Tuple[Tuple[IRI, ...], IRI]]:
        frontier: List[Tuple[Tuple[IRI, ...], IRI]] = [((), anchor)]
        out: List[Tuple[Tuple[IRI, ...], IRI]] = []
        for _ in range(hops):
            next_frontier: List[Tuple[Tuple[IRI, ...], IRI]] = []
            for relations_path, node in frontier:
                for triple in self.kg.store.match(node, None, None):
                    if not isinstance(triple.object, IRI):
                        continue
                    if triple.predicate in (RDFS.label, RDFS.comment, RDF.type):
                        continue
                    if triple.predicate.value.startswith(RDFS.prefix) or \
                            triple.predicate.value.startswith(OWL.prefix):
                        continue
                    extended = (relations_path + (triple.predicate,), triple.object)
                    next_frontier.append(extended)
                    if len(next_frontier) >= self.beam:
                        break
                if len(next_frontier) >= self.beam:
                    break
            frontier = next_frontier
        out.extend(frontier)
        return out

    def _path_score(self, path: Sequence[IRI], plan: Sequence[IRI],
                    question: str) -> float:
        score = 0.0
        if list(path) == list(plan):
            score += 10.0  # exact chain match with the grounded plan
        question_tokens = set(word_tokens(question))
        for relation in path:
            phrase_tokens = set(word_tokens(
                _humanize_relation(self.kg.label(relation))))
            if phrase_tokens <= question_tokens:
                score += 1.0
        score -= 0.1 * len(path)  # prefer shorter chains on ties
        return score


def _resolve(kg: KnowledgeGraph, answer_text: str) -> Set[IRI]:
    if not answer_text or answer_text.lower() == "unknown":
        return set()
    out: Set[IRI] = set()
    for part in answer_text.split(","):
        for entity in kg.find_by_label(part.strip()):
            out.add(entity)
    return out


def evaluate_qa(system, questions: Sequence[MultiHopQuestion],
                batch_size: Optional[int] = None,
                executor: Optional[ParallelExecutor] = None
                ) -> Dict[str, float]:
    """Mean answer-set F1 and exact-hit rate over a question set.

    ``batch_size``/``executor`` route answering through the system's
    batched entry point when it has one; scores are identical to the
    sequential default (the batch paths are result-identical).
    """
    if not questions:
        raise ValueError("no questions to evaluate")
    texts = [question.text for question in questions]
    batch = getattr(system, "answer_batch", None)
    if callable(batch) and (batch_size is not None or executor is not None):
        predictions = batch(texts, batch_size=batch_size, executor=executor)
    else:
        predictions = [system.answer(text) for text in texts]
    total_f1 = 0.0
    hits = 0
    for question, predicted in zip(questions, predictions):
        gold = question.answers
        if predicted == gold:
            hits += 1
        if predicted or gold:
            tp = len(predicted & gold)
            precision = tp / len(predicted) if predicted else 0.0
            recall = tp / len(gold) if gold else 0.0
            if precision + recall:
                total_f1 += 2 * precision * recall / (precision + recall)
        else:
            total_f1 += 1.0
    return {"f1": total_f1 / len(questions), "exact": hits / len(questions),
            "questions": float(len(questions))}
