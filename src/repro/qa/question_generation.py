"""Multi-hop question generation (survey §4.1.1).

* :class:`KGELQuestionGenerator` — Li et al.'s KGEL recipe: take a KG path,
  let the language model compose a question that traverses every edge, and
  keep only questions that are *answerable* (the generated question, run
  through a QA executor, must yield the intended answer).
* :class:`SingleHopQuestionGenerator` — the Aigo et al. style baseline: the
  T5-with-masked-self-attention setup targets single-hop questions, so a
  multi-hop path degrades to a question about its first edge.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.kg.datasets import Dataset
from repro.kg.graph import KnowledgeGraph, _humanize_relation
from repro.kg.triples import IRI, OWL, RDF, RDFS, Triple
from repro.llm import prompts as P
from repro.llm.model import SimulatedLLM
from repro.qa.multihop import MultiHopQuestion, _chain_answers, _question_text


@dataclass
class GeneratedQuestion:
    """A generated question with the path and the answer it encodes."""

    text: str
    path: List[Tuple[IRI, IRI, IRI]]     # (subject, relation, object) hops
    answer: IRI

    @property
    def hops(self) -> int:
        """Edges the question is supposed to traverse."""
        return len(self.path)


def sample_paths(dataset: Dataset, n: int = 20, hops: int = 2,
                 seed: int = 0) -> List[List[Tuple[IRI, IRI, IRI]]]:
    """Seeded directed paths of exactly ``hops`` edges from the dataset."""
    rng = random.Random(seed)
    kg = dataset.kg
    instance_relations = [
        r for r in kg.store.relations()
        if not r.value.startswith(RDFS.prefix)
        and not r.value.startswith(OWL.prefix) and r != RDF.type
    ]
    anchors = sorted({t.subject for r in instance_relations
                      for t in kg.store.match(None, r, None)},
                     key=lambda e: e.value)
    rng.shuffle(anchors)
    paths: List[List[Tuple[IRI, IRI, IRI]]] = []

    def extend(node: IRI, path: List[Tuple[IRI, IRI, IRI]]) -> Optional[List]:
        """Randomized DFS for a path of exactly ``hops`` edges."""
        if len(path) == hops:
            return path
        steps = [t for r in instance_relations
                 for t in kg.store.match(node, r, None)
                 if isinstance(t.object, IRI)]
        steps = [t for t in steps if not path or t.predicate != path[-1][1]]
        steps.sort(key=lambda t: t.n3())
        rng.shuffle(steps)
        for chosen in steps:
            found = extend(chosen.object,  # type: ignore[arg-type]
                           path + [(chosen.subject, chosen.predicate,
                                    chosen.object)])  # type: ignore[list-item]
            if found is not None:
                return found
        return None

    for anchor in anchors:
        if len(paths) >= n:
            break
        path = extend(anchor, [])
        if path is not None:
            paths.append(path)
    return paths


class KGELQuestionGenerator:
    """Multi-hop question generation from KG paths (KGEL-style)."""

    def __init__(self, llm: SimulatedLLM, kg: KnowledgeGraph):
        self.llm = llm
        self.kg = kg

    def generate(self, path: Sequence[Tuple[IRI, IRI, IRI]]) -> GeneratedQuestion:
        """One question whose answer is the path's endpoint.

        The LLM handles surface realization (via the question-generation
        prompt); the structured chain phrasing guarantees the question
        traverses every edge.
        """
        answer = path[-1][2]
        labelled = [(self.kg.label(s), self.kg.label(r), self.kg.label(o))
                    for s, r, o in path]
        prompt = P.question_generation_prompt(labelled,
                                              answer=self.kg.label(answer),
                                              multi_hop=len(path) > 1)
        response = self.llm.complete(prompt)
        text = response.text.strip()
        if not text.endswith("?"):
            # Fall back to the deterministic chain template.
            text = _question_text(self.kg, path[0][0], [r for _, r, _ in path])
        return GeneratedQuestion(text=text, path=list(path), answer=answer)

    def generate_answerable(self, path: Sequence[Tuple[IRI, IRI, IRI]],
                            executor) -> Optional[GeneratedQuestion]:
        """Generate and keep only if the executor recovers the answer."""
        question = self.generate(path)
        predicted = executor.answer(question.text)
        if question.answer in predicted:
            return question
        # One repair round: fall back to the canonical chain phrasing.
        question = GeneratedQuestion(
            text=_question_text(self.kg, path[0][0], [r for _, r, _ in path]),
            path=list(path), answer=question.answer)
        predicted = executor.answer(question.text)
        if question.answer in predicted:
            return question
        return None


class SingleHopQuestionGenerator:
    """Single-hop baseline: only the first edge of the path is asked about."""

    def __init__(self, llm: SimulatedLLM, kg: KnowledgeGraph):
        self.llm = llm
        self.kg = kg

    def generate(self, path: Sequence[Tuple[IRI, IRI, IRI]]) -> GeneratedQuestion:
        """A question about the path's first edge only (the baseline gap)."""
        subject, relation, obj = path[0]
        text = (f"List what {_humanize_relation(self.kg.label(relation))} "
                f"{self.kg.label(subject)}?")
        # The *intended* answer is still the path endpoint — the baseline's
        # question simply fails to encode the later hops.
        return GeneratedQuestion(text=text, path=list(path), answer=path[-1][2])


def answerability(questions: Sequence[GeneratedQuestion], executor) -> float:
    """Fraction of questions the executor answers with the intended answer.

    This is the metric that separates true multi-hop generation from
    single-hop generation evaluated on multi-hop paths.
    """
    if not questions:
        return 0.0
    good = 0
    for question in questions:
        predicted = executor.answer(question.text)
        if question.answer in predicted:
            good += 1
    return good / len(questions)
