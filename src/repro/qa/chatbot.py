"""KG chatbots (survey §4.1.5, after Omar et al.).

Omar et al. compare conversational LLMs (fluent, stateful, hallucination-
prone) with traditional KGQA systems (precise, stateless, brittle on chit-
chat) and propose merging them. :class:`KGChatbot` is that merge: an intent
router sends factual turns to a KGQA backend, conversational turns to the
LLM, and a dialogue state resolves follow-up references ("who starred in
*it*?") against the entities of previous turns.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import IRI
from repro.llm import prompts as P
from repro.llm.caching import maybe_cached
from repro.llm.faults import LLMTransientError
from repro.llm.model import SimulatedLLM


@dataclass
class ChatTurn:
    """One exchanged turn with routing metadata.

    ``degraded`` marks replies produced under operational LLM faults — the
    dialogue survived, but with an explicit apology instead of an answer.
    """

    user: str
    reply: str
    intent: str                       # greeting | thanks | factual | followup | chitchat | observation
    entities: List[IRI] = field(default_factory=list)
    degraded: bool = False


_DEGRADED_REPLY = ("I'm having trouble reaching my knowledge backend right "
                   "now — please ask again in a moment.")


_GREETING = re.compile(r"\b(hello|hi|hey|good (morning|afternoon|evening))\b", re.I)
_THANKS = re.compile(r"\b(thanks|thank you|cheers)\b", re.I)
_PRONOUN = re.compile(r"\b(it|its|he|she|him|her|they|them|that one)\b", re.I)


class KGChatbot:
    """Dialogue manager fusing LLM conversation with a KGQA backend."""

    def __init__(self, llm: SimulatedLLM, kg: KnowledgeGraph, qa_backend,
                 cache=False, max_history: Optional[int] = None):
        """``qa_backend`` answers factual questions: ``answer(text) -> Set[IRI]``.

        ``max_history`` bounds the retained dialogue state: once the
        history exceeds it, the oldest turns are dropped. Serving many
        long-lived sessions needs this — an unbounded per-session
        transcript is exactly the queue-growth failure mode the gateway
        exists to prevent. ``None`` keeps the library default of an
        unbounded transcript.
        """
        if max_history is not None and max_history < 1:
            raise ValueError("max_history must be >= 1 (or None)")
        self.llm = maybe_cached(llm, cache)
        self.kg = kg
        self.qa_backend = qa_backend
        self.max_history = max_history
        self.history: List[ChatTurn] = []
        self.turns_dropped = 0

    # ------------------------------------------------------------------
    # Dialogue state
    # ------------------------------------------------------------------
    @property
    def focus_entity(self) -> Optional[IRI]:
        """The most recently discussed entity (for coreference).

        The *topic* of a factual turn is the entity the user mentioned, not
        the answer — "who directed X?" followed by "who starred in it?"
        refers to X.
        """
        for turn in reversed(self.history):
            if turn.entities:
                return turn.entities[0]
        return None

    def reset(self) -> None:
        """Forget the conversation."""
        self.history.clear()

    # ------------------------------------------------------------------
    # Turn processing
    # ------------------------------------------------------------------
    def chat(self, message: str) -> ChatTurn:
        """Process one user turn and append it to the history."""
        intent = self._detect_intent(message)
        if intent == "greeting":
            turn = ChatTurn(message, "Hello! Ask me anything about the "
                                     "knowledge graph.", intent)
        elif intent == "thanks":
            turn = ChatTurn(message, "You're welcome!", intent)
        elif intent in ("factual", "followup"):
            question = message
            if intent == "followup":
                question = self._resolve_followup(message)
            try:
                answers = self.qa_backend.answer(question)
            except LLMTransientError:
                # Stay in the dialogue: an explicit degraded turn instead of
                # a crash, with the state (history, focus) intact.
                turn = ChatTurn(message, _DEGRADED_REPLY, intent,
                                degraded=True)
                self._append(turn)
                return turn
            entities = sorted(answers, key=lambda e: e.value)
            if entities:
                reply = ", ".join(self.kg.label(e) for e in entities) + "."
            else:
                reply = "I could not find that in the knowledge graph."
            mentioned = [m.iri for m in self.llm.find_mentions(question)
                         if m.iri is not None]
            turn = ChatTurn(message, reply, intent,
                            entities=mentioned + entities)
        else:
            try:
                response = self.llm.complete(P.chat_prompt(
                    message,
                    history=[(("user" if i % 2 == 0 else "assistant"), text)
                             for i, text in enumerate(self._flat_history())]))
                turn = ChatTurn(message, response.text, intent)
            except LLMTransientError:
                turn = ChatTurn(message, _DEGRADED_REPLY, intent,
                                degraded=True)
        self._append(turn)
        return turn

    def record_observation(self, note: str) -> ChatTurn:
        """Append an agent tool observation to the transcript.

        Agent episodes run *inside* a chat session and their tool
        observations become part of its dialogue state. They go through
        :meth:`_append`, so they count toward ``max_history`` exactly
        like user turns — an agent-heavy session cannot grow its
        transcript past the bound the store sized sessions by.
        """
        turn = ChatTurn(user="", reply=note, intent="observation")
        self._append(turn)
        return turn

    def _append(self, turn: ChatTurn) -> None:
        """Record a turn, evicting the oldest past ``max_history``."""
        self.history.append(turn)
        if self.max_history is not None and \
                len(self.history) > self.max_history:
            drop = len(self.history) - self.max_history
            del self.history[:drop]
            self.turns_dropped += drop

    def _flat_history(self) -> List[str]:
        out: List[str] = []
        for turn in self.history[-3:]:
            out.append(turn.user)
            out.append(turn.reply)
        return out

    # ------------------------------------------------------------------
    # Intent routing
    # ------------------------------------------------------------------
    def _detect_intent(self, message: str) -> str:
        if _GREETING.search(message):
            return "greeting"
        if _THANKS.search(message):
            return "thanks"
        has_relation = bool(self.llm.find_relations(message))
        has_entity = any(m.iri is not None
                         for m in self.llm.find_mentions(message))
        if has_relation and has_entity:
            return "factual"
        if has_relation and _PRONOUN.search(message) and \
                self.focus_entity is not None:
            return "followup"
        return "chitchat"

    def _resolve_followup(self, message: str) -> str:
        """Substitute the focus entity's label for the pronoun."""
        focus = self.focus_entity
        assert focus is not None
        return _PRONOUN.sub(self.kg.label(focus), message, count=1)
