"""Table 1: categorizations addressed by previous survey papers vs. this one.

The matrix is transcribed from the paper. Columns are the four earlier
surveys — Pan et al. [68], Pan et al. [67], Hu et al. [41], Yang et al.
[90] — plus this survey. The rows unique to this survey (validation and the
KGQA subtopics) are exactly the starred topics of Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Survey column labels, in the paper's order.
SURVEY_COLUMNS = ["[68]", "[67]", "[41]", "[90]", "ours"]


@dataclass(frozen=True)
class Table1Row:
    """One (main category, subcategory) row of the coverage matrix."""

    main_category: str
    subcategory: str
    coverage: Tuple[bool, bool, bool, bool, bool]  # aligned with SURVEY_COLUMNS

    def covered_by(self, column: str) -> bool:
        """Whether the given survey column covers this topic."""
        return self.coverage[SURVEY_COLUMNS.index(column)]


TABLE1: List[Table1Row] = [
    Table1Row("KG Construction", "Relation and Attribute Extraction",
              (True, True, False, False, True)),
    Table1Row("KG Construction", "Entity Extraction and Alignment",
              (True, True, False, False, True)),
    Table1Row("KG Construction", "Event Detection or Extraction",
              (False, False, False, False, False)),
    Table1Row("KG Construction", "Ontology Creation",
              (False, True, False, False, True)),
    Table1Row("KG-to-Text Generation", "KG-to-Text Generation",
              (True, False, False, False, True)),
    Table1Row("KG Reasoning", "KG Reasoning",
              (True, True, False, False, True)),
    Table1Row("KG Completion", "Entity, Relation and Triple Classification",
              (True, True, False, False, True)),
    Table1Row("KG Completion", "Entity Prediction",
              (True, True, False, False, True)),
    Table1Row("KG Completion", "Relation Prediction",
              (False, True, False, False, True)),
    Table1Row("KG Embedding", "KG Embedding",
              (True, False, False, False, True)),
    Table1Row("KG-enhanced LLM", "KG-enhanced LLM",
              (True, True, True, True, True)),
    Table1Row("KG Validation", "Fact Checking",
              (False, False, False, False, True)),
    Table1Row("KG Validation", "Inconsistency Detection",
              (False, False, False, False, True)),
    Table1Row("KG Question Answering", "Complex Question Answering",
              (False, False, False, False, True)),
    Table1Row("KG Question Answering", "Multi-Hop Question Generation",
              (False, False, False, False, True)),
    Table1Row("KG Question Answering", "Knowledge Graph Chatbots",
              (False, False, False, False, True)),
    Table1Row("KG Question Answering", "Query Generation from natural text",
              (False, False, False, False, True)),
    Table1Row("KG Question Answering",
              "Querying Large Language Models with SPARQL",
              (False, False, False, False, True)),
]


def render_table1() -> str:
    """The coverage matrix as aligned text (✓/✗ like the paper)."""
    main_width = max(len(row.main_category) for row in TABLE1)
    sub_width = max(len(row.subcategory) for row in TABLE1)
    header = (f"{'Main Category':<{main_width}} | {'Subcategory':<{sub_width}} | "
              + " | ".join(f"{c:<5}" for c in SURVEY_COLUMNS))
    lines = ["Table 1 — categorizations addressed by previous survey papers",
             header, "-" * len(header)]
    for row in TABLE1:
        marks = " | ".join(f"{'✓' if covered else '✗':<5}"
                           for covered in row.coverage)
        lines.append(f"{row.main_category:<{main_width}} | "
                     f"{row.subcategory:<{sub_width}} | {marks}")
    return "\n".join(lines)


def unique_to_this_survey() -> List[Table1Row]:
    """Rows covered only by this survey — the claimed novel coverage."""
    return [row for row in TABLE1
            if row.coverage[4] and not any(row.coverage[:4])]


def coverage_totals() -> Dict[str, int]:
    """Topics covered per survey column — 'ours' must be the maximum."""
    return {
        column: sum(1 for row in TABLE1 if row.covered_by(column))
        for column in SURVEY_COLUMNS
    }
