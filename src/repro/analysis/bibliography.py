"""Machine-readable bibliography of the survey's cited approach papers.

Each :class:`CitedApproach` records which LLMs and KGs a cited approach
uses and which taxonomy category the survey discusses it under — the raw
data behind Figure 2 ("Statistics of the usage of LLMs and KGs in cited
papers per category"). Model and KG names are normalized the way the figure
normalizes them (benchmark subsets map to their source KG: FB15k-237 →
Freebase, WN18RR → WordNet, WebNLG → DBpedia, GPT-3.5-API papers → GPT-3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

#: Category labels, matching the Figure-1 taxonomy node names.
NER = "Entity Extraction and Alignment"
RE = "Relation Extraction"
ONTOLOGY = "Ontology Creation"
KG2TEXT = "KG-to-Text Generation"
REASONING = "KG Reasoning"
COMPLETION = "KG Completion"
EMBEDDING = "KG Embedding"
VALIDATION = "KG Validation"
ENHANCED = "KG-enhanced LLM"
KGQA = "KG Question Answering"


@dataclass(frozen=True)
class CitedApproach:
    """One cited approach paper with its LLM/KG usage."""

    key: str
    reference: int            # number in the survey's reference list
    category: str
    llms: Tuple[str, ...] = ()
    kgs: Tuple[str, ...] = ()
    year: int = 2023


BIBLIOGRAPHY: List[CitedApproach] = [
    # --- KG Construction: entity extraction -------------------------------
    CitedApproach("promptner", 3, NER, llms=("GPT-4",), year=2023),
    CitedApproach("fewshot-ner", 42, NER, llms=("BERT",), year=2020),
    CitedApproach("spires", 11, NER, llms=("GPT-3",), kgs=("Wikidata",), year=2023),
    CitedApproach("chatie", 85, NER, llms=("ChatGPT",), year=2023),
    CitedApproach("universalner", 96, NER, llms=("LLaMA", "ChatGPT"), year=2023),
    CitedApproach("artgraph-alignment", 59, EMBEDDING, llms=("ChatGPT",),
                  kgs=("Wikidata",), year=2023),
    # --- KG Construction: relation extraction -----------------------------
    CitedApproach("gpt-re", 79, RE, llms=("GPT-3",), year=2023),
    CitedApproach("rebel", 43, RE, llms=("BART",), kgs=("Wikidata",), year=2021),
    CitedApproach("deepstruct", 81, RE, llms=("GLM",), kgs=("Wikidata",), year=2023),
    CitedApproach("unleash-fewshot-re", 89, RE, llms=("GPT-3",), year=2023),
    CitedApproach("revisiting-re", 78, RE, llms=("GPT-3", "Flan-T5"), year=2023),
    CitedApproach("zeroshot-re", 54, RE, llms=("ChatGPT",), year=2023),
    CitedApproach("temporal-re", 94, RE, llms=("ChatGPT",), year=2023),
    CitedApproach("docre-enhance", 55, RE, llms=("ChatGPT",), year=2023),
    # --- KG Construction: ontology creation -------------------------------
    CitedApproach("llms4ol", 4, ONTOLOGY, llms=("GPT-3", "BERT"),
                  kgs=("WordNet",), year=2023),
    CitedApproach("ontology-construction-lm", 29, ONTOLOGY, llms=("GPT-3",),
                  year=2023),
    CitedApproach("olaf", 73, ONTOLOGY, llms=("BERT",), year=2023),
    CitedApproach("text2onto-map", 50, ONTOLOGY, llms=("BERT",), year=2023),
    CitedApproach("event-ontology-extend", 76, ONTOLOGY, llms=("T5",), year=2023),
    CitedApproach("enterprise-finetune", 6, ONTOLOGY, llms=("GPT-3",),
                  kgs=("Enterprise KG",), year=2023),
    CitedApproach("covid-kg-llm", 28, ONTOLOGY, llms=("ChatGPT",),
                  kgs=("Wikidata",), year=2024),
    CitedApproach("subsumption-bert", 16, ONTOLOGY, llms=("BERT",),
                  kgs=("WordNet",), year=2023),
    # --- KG-to-Text --------------------------------------------------------
    CitedApproach("gap", 22, KG2TEXT, llms=("BERT",), kgs=("DBpedia",), year=2022),
    CitedApproach("kgpt", 17, KG2TEXT, llms=("GPT-2",), kgs=("Wikidata",), year=2020),
    CitedApproach("jointgt", 45, KG2TEXT, llms=("BART", "T5"), kgs=("DBpedia",),
                  year=2021),
    CitedApproach("plm-graph2text", 70, KG2TEXT, llms=("BART", "T5"),
                  kgs=("DBpedia",), year=2020),
    CitedApproach("fewshot-kg2text", 56, KG2TEXT, llms=("GPT-2",),
                  kgs=("Wikidata",), year=2021),
    # --- KG Reasoning -------------------------------------------------------
    CitedApproach("lark", 21, REASONING, llms=("LLaMA",), kgs=("Freebase",),
                  year=2023),
    CitedApproach("rog", 62, REASONING, llms=("LLaMA",), kgs=("Freebase",),
                  year=2023),
    CitedApproach("kg-gpt", 48, REASONING, llms=("ChatGPT",), kgs=("Wikidata",),
                  year=2023),
    # --- KG Completion ------------------------------------------------------
    CitedApproach("transe", 9, COMPLETION, kgs=("Freebase", "WordNet"), year=2013),
    CitedApproach("transr", 58, COMPLETION, kgs=("Freebase", "WordNet"), year=2015),
    CitedApproach("complex", 77, COMPLETION, kgs=("Freebase", "WordNet"), year=2016),
    CitedApproach("kg-bert", 92, COMPLETION, llms=("BERT",),
                  kgs=("Freebase", "WordNet"), year=2019),
    CitedApproach("mtl-kgc", 47, COMPLETION, llms=("BERT",), kgs=("Freebase",),
                  year=2020),
    CitedApproach("star", 80, COMPLETION, llms=("BERT",),
                  kgs=("Freebase", "WordNet"), year=2021),
    CitedApproach("simkgc", 82, COMPLETION, llms=("BERT",),
                  kgs=("Freebase", "Wikidata"), year=2022),
    CitedApproach("kg-s2s", 15, COMPLETION, llms=("T5",), kgs=("Freebase",),
                  year=2022),
    CitedApproach("genkgc", 87, COMPLETION, llms=("BART",), kgs=("Freebase",),
                  year=2022),
    CitedApproach("kicgpt", 86, COMPLETION, llms=("ChatGPT",), kgs=("Freebase",),
                  year=2023),
    CitedApproach("contextual-lm-kgc", 8, COMPLETION, llms=("GPT-2",),
                  kgs=("Freebase",), year=2021),
    CitedApproach("semantic-embeddings-kgc", 2, COMPLETION, llms=("BERT",),
                  kgs=("Freebase",), year=2023),
    # --- KG Validation ------------------------------------------------------
    CitedApproach("chatgpt-eval", 7, VALIDATION, llms=("ChatGPT",), year=2023),
    CitedApproach("llm-misinfo-detect", 13, VALIDATION, llms=("GPT-3",), year=2023),
    CitedApproach("combat-misinfo", 14, VALIDATION, llms=("GPT-3",), year=2023),
    CitedApproach("factool", 19, VALIDATION, llms=("ChatGPT",), year=2023),
    CitedApproach("factllama", 20, VALIDATION, llms=("LLaMA",), year=2023),
    CitedApproach("chatrule", 61, VALIDATION, llms=("ChatGPT",),
                  kgs=("Freebase", "YAGO"), year=2023),
    # --- KG-enhanced LLM ----------------------------------------------------
    CitedApproach("k-bert", 60, ENHANCED, llms=("BERT",), kgs=("DBpedia",),
                  year=2020),
    CitedApproach("sem-k-bert", 88, ENHANCED, llms=("BERT",), kgs=("DBpedia",),
                  year=2021),
    CitedApproach("kcf-net", 31, ENHANCED, llms=("BERT",), kgs=("ConceptNet",),
                  year=2020),
    CitedApproach("concept-pretrain", 44, ENHANCED, llms=("BERT",),
                  kgs=("ConceptNet",), year=2020),
    CitedApproach("dict-bert", 93, ENHANCED, llms=("BERT",), year=2022),
    CitedApproach("rag-survey", 30, ENHANCED, llms=("GPT-3",), year=2023),
    CitedApproach("knowledgegpt", 84, ENHANCED, llms=("GPT-3",),
                  kgs=("Wikidata",), year=2023),
    CitedApproach("graphrag", 26, ENHANCED, llms=("GPT-4",), year=2024),
    CitedApproach("rome", 63, ENHANCED, llms=("GPT-2",), year=2022),
    # --- KG Question Answering ----------------------------------------------
    CitedApproach("kgel", 57, KGQA, llms=("GPT-2",), kgs=("Wikidata",), year=2023),
    CitedApproach("aigo-qg", 1, KGQA, llms=("T5",), kgs=("Wikidata",), year=2021),
    CitedApproach("relmkg", 10, KGQA, llms=("GPT-2", "BERT"), kgs=("Freebase",),
                  year=2023),
    CitedApproach("kgqa-augmented-lm", 74, KGQA, llms=("T5",), kgs=("Freebase",),
                  year=2023),
    CitedApproach("kaping", 5, KGQA, llms=("GPT-3",),
                  kgs=("Freebase", "Wikidata"), year=2023),
    CitedApproach("sgpt", 71, KGQA, llms=("GPT-2",), kgs=("DBpedia",), year=2022),
    CitedApproach("sparqlgen", 51, KGQA, llms=("GPT-3",),
                  kgs=("DBpedia", "Wikidata"), year=2023),
    CitedApproach("pliukhin-subgraph", 69, KGQA, llms=("GPT-3",),
                  kgs=("Wikidata",), year=2023),
    CitedApproach("galois", 72, KGQA, llms=("GPT-3",), year=2023),
    CitedApproach("chatgpt-vs-qas", 65, KGQA, llms=("ChatGPT",),
                  kgs=("DBpedia", "Freebase"), year=2023),
]


def llms_in_bibliography() -> List[str]:
    """Distinct LLM names, most cited first (ties alphabetical)."""
    counts: Dict[str, int] = {}
    for entry in BIBLIOGRAPHY:
        for llm in entry.llms:
            counts[llm] = counts.get(llm, 0) + 1
    return sorted(counts, key=lambda name: (-counts[name], name))


def kgs_in_bibliography() -> List[str]:
    """Distinct KG names, most cited first (ties alphabetical)."""
    counts: Dict[str, int] = {}
    for entry in BIBLIOGRAPHY:
        for kg in entry.kgs:
            counts[kg] = counts.get(kg, 0) + 1
    return sorted(counts, key=lambda name: (-counts[name], name))
