"""Figure 2: statistics of LLM and KG usage in the cited approaches.

The figure plots, per category, how often each LLM and each KG appears in
the reviewed literature; the text reports the headline findings — Freebase
is the most common KG, BERT and GPT-3 the most frequent LLMs — which the
``figure2`` output reproduces from the embedded bibliography.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.bibliography import BIBLIOGRAPHY, CitedApproach


def usage_counts(entries: Optional[Sequence[CitedApproach]] = None
                 ) -> Tuple[Counter, Counter]:
    """(LLM usage counter, KG usage counter) over the bibliography."""
    entries = BIBLIOGRAPHY if entries is None else entries
    llms: Counter = Counter()
    kgs: Counter = Counter()
    for entry in entries:
        llms.update(entry.llms)
        kgs.update(entry.kgs)
    return llms, kgs


def usage_by_category(entries: Optional[Sequence[CitedApproach]] = None
                      ) -> Dict[str, Tuple[Counter, Counter]]:
    """Per-category (LLM counter, KG counter) — the x-axis groups of Fig. 2."""
    entries = BIBLIOGRAPHY if entries is None else entries
    out: Dict[str, Tuple[Counter, Counter]] = {}
    for entry in entries:
        llms, kgs = out.setdefault(entry.category, (Counter(), Counter()))
        llms.update(entry.llms)
        kgs.update(entry.kgs)
    return out


def most_common(counter: Counter, n: int = 3) -> List[Tuple[str, int]]:
    """Top-n with deterministic alphabetical tie-breaking."""
    return sorted(counter.items(), key=lambda kv: (-kv[1], kv[0]))[:n]


def figure2(entries: Optional[Sequence[CitedApproach]] = None) -> Dict[str, object]:
    """The full Figure-2 payload: overall and per-category histograms plus
    the headline findings stated in §5.1."""
    llms, kgs = usage_counts(entries)
    per_category = usage_by_category(entries)
    top_llms = most_common(llms, n=2)
    top_kgs = most_common(kgs, n=1)
    return {
        "llm_usage": dict(sorted(llms.items(), key=lambda kv: (-kv[1], kv[0]))),
        "kg_usage": dict(sorted(kgs.items(), key=lambda kv: (-kv[1], kv[0]))),
        "per_category": {
            category: {
                "llms": dict(sorted(c_llms.items(), key=lambda kv: (-kv[1], kv[0]))),
                "kgs": dict(sorted(c_kgs.items(), key=lambda kv: (-kv[1], kv[0]))),
            }
            for category, (c_llms, c_kgs) in sorted(per_category.items())
        },
        "most_used_kg": top_kgs[0][0] if top_kgs else None,
        "most_used_llms": [name for name, _ in top_llms],
    }


def render_figure2(entries: Optional[Sequence[CitedApproach]] = None) -> str:
    """An ASCII bar-chart rendering of Figure 2 for benchmark output."""
    llms, kgs = usage_counts(entries)
    lines = ["Figure 2 — usage of LLMs and KGs in cited papers"]
    lines.append("LLMs:")
    for name, count in sorted(llms.items(), key=lambda kv: (-kv[1], kv[0])):
        lines.append(f"  {name:<10} {'#' * count} ({count})")
    lines.append("KGs:")
    for name, count in sorted(kgs.items(), key=lambda kv: (-kv[1], kv[0])):
        lines.append(f"  {name:<14} {'#' * count} ({count})")
    return "\n".join(lines)
