"""Statistics analysis (survey §5): the machine-readable bibliography of the
survey's cited approaches, the Figure-2 usage statistics, and the Table-1
survey-coverage matrix."""

from repro.analysis.bibliography import (
    CitedApproach, BIBLIOGRAPHY, llms_in_bibliography, kgs_in_bibliography,
)
from repro.analysis.statistics import (
    usage_counts, usage_by_category, figure2, most_common,
)
from repro.analysis.surveys import TABLE1, Table1Row, render_table1, SURVEY_COLUMNS

__all__ = [
    "CitedApproach", "BIBLIOGRAPHY",
    "llms_in_bibliography", "kgs_in_bibliography",
    "usage_counts", "usage_by_category", "figure2", "most_common",
    "TABLE1", "Table1Row", "render_table1", "SURVEY_COLUMNS",
]
