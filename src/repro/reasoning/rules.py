"""Horn rules over KG relations: representation, mining support, and
forward-chaining inference.

A rule is ``head(X0, Xn) :- r1(X0, X1), r2(X1, X2), ..., rn(Xn-1, Xn)`` — a
chain whose body composes to the head — or the special symmetry form
``head(X, Y) :- head(Y, X)``. This is exactly the fragment ChatRule mines
and the KG-completion literature calls path rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.kg.store import TripleStore
from repro.kg.triples import IRI, Triple


@dataclass(frozen=True)
class Rule:
    """A chain rule: body relations compose (left to right) into the head.

    ``inverse_body`` marks the symmetry form ``head(X,Y) :- head(Y,X)`` when
    the body is the single head relation.
    """

    head: IRI
    body: Tuple[IRI, ...]
    inverse_body: bool = False

    def __post_init__(self) -> None:
        if not self.body:
            raise ValueError("rule body must not be empty")
        if self.inverse_body and (len(self.body) != 1):
            raise ValueError("inverse rules must have exactly one body atom")

    def describe(self, labeller=None) -> str:
        """Human-readable rendering, e.g. ``a(X,Z) :- b(X,Y), c(Y,Z)``."""
        name = labeller or (lambda iri: iri.local_name)
        if self.inverse_body:
            return f"{name(self.head)}(X,Y) :- {name(self.body[0])}(Y,X)"
        variables = ["X"] + [f"Y{i}" for i in range(1, len(self.body))] + ["Z"]
        atoms = [f"{name(rel)}({variables[i]},{variables[i + 1]})"
                 for i, rel in enumerate(self.body)]
        return f"{name(self.head)}(X,Z) :- " + ", ".join(atoms)


@dataclass
class RuleStats:
    """Mining statistics of a rule on a KG."""

    rule: Rule
    support: int          # body instances
    positives: int        # body instances where the head also holds
    confidence: float     # positives / support

    @property
    def is_sound(self) -> bool:
        """Heuristic soundness: confident and non-trivially supported."""
        return self.support >= 2 and self.confidence >= 0.7


def _body_pairs(store: TripleStore, rule: Rule) -> List[Tuple[IRI, IRI]]:
    """All (X, Z) pairs for which the rule body holds."""
    if rule.inverse_body:
        return [(t.object, t.subject) for t in store.match(None, rule.body[0], None)
                if isinstance(t.object, IRI)]
    frontier: List[Tuple[IRI, IRI]] = [
        (t.subject, t.object) for t in store.match(None, rule.body[0], None)
        if isinstance(t.object, IRI)
    ]
    for relation in rule.body[1:]:
        next_frontier: List[Tuple[IRI, IRI]] = []
        for start, middle in frontier:
            for t in store.match(middle, relation, None):
                if isinstance(t.object, IRI):
                    next_frontier.append((start, t.object))
        frontier = next_frontier
        if not frontier:
            break
    return frontier


def score_rule(store: TripleStore, rule: Rule) -> RuleStats:
    """Support and confidence of a rule on the KG."""
    pairs = _body_pairs(store, rule)
    unique_pairs = list(dict.fromkeys(pairs))
    positives = sum(1 for x, z in unique_pairs
                    if Triple(x, rule.head, z) in store)
    support = len(unique_pairs)
    confidence = positives / support if support else 0.0
    return RuleStats(rule=rule, support=support, positives=positives,
                     confidence=confidence)


def forward_chain(store: TripleStore, rules: Sequence[Rule],
                  max_rounds: int = 10) -> TripleStore:
    """Materialize the consequences of the rules (new store returned).

    Runs to fixpoint or ``max_rounds``, whichever first — chain rules can
    feed each other (e.g. ancestor composition).
    """
    out = store.copy()
    for _ in range(max_rounds):
        added = 0
        for rule in rules:
            for x, z in _body_pairs(out, rule):
                if x != z and out.add(Triple(x, rule.head, z)):
                    added += 1
        if not added:
            break
    return out


def derive_facts(store: TripleStore, rules: Sequence[Rule]) -> List[Triple]:
    """Only the *new* facts the rules imply (not present in the input)."""
    closed = forward_chain(store, rules)
    return [t for t in closed if t not in store]


def candidate_chain_rules(store: TripleStore, max_body: int = 2,
                          min_support: int = 2) -> List[Rule]:
    """Enumerate structurally plausible chain rules from the KG itself.

    The structural-only miner (the baseline ChatRule is compared against):
    every head relation × every body chain of length ≤ ``max_body`` with at
    least ``min_support`` co-occurring instances.
    """
    relations = sorted(store.relations(), key=lambda r: r.value)
    instance_relations = [r for r in relations
                          if not r.value.startswith("http://www.w3.org/")]
    out: List[Rule] = []
    for head in instance_relations:
        for r1 in instance_relations:
            rule1 = Rule(head=head, body=(r1,))
            if r1 != head and score_rule(store, rule1).support >= min_support:
                out.append(rule1)
            if max_body >= 2:
                for r2 in instance_relations:
                    rule2 = Rule(head=head, body=(r1, r2))
                    stats = score_rule(store, rule2)
                    if stats.support >= min_support and stats.positives > 0:
                        out.append(rule2)
        inverse = Rule(head=head, body=(head,), inverse_body=True)
        if score_rule(store, inverse).support >= min_support:
            out.append(inverse)
    return out
