"""KG-GPT (Kim et al.): sentence segmentation → graph retrieval → inference.

The framework verifies multi-fact claims against a KG: split the claim into
atomic segments, retrieve each segment's relevant subgraph, and infer each
segment's truth with the LLM, aggregating conjunctively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.pipeline import Pipeline, PipelineContext
from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import IRI, RDF, RDFS
from repro.llm import prompts as P
from repro.llm.model import SimulatedLLM
from repro.text import split_sentences


@dataclass
class SegmentVerdict:
    """One claim segment with its retrieved evidence and verdict."""

    segment: str
    evidence: List[str]
    verdict: Optional[bool]


@dataclass
class ClaimVerdict:
    """The aggregated verdict for a full claim."""

    claim: str
    segments: List[SegmentVerdict]

    @property
    def supported(self) -> Optional[bool]:
        """Conjunctive aggregation: True iff every segment verifies True;
        None when any segment is undecidable (and none is False)."""
        verdicts = [s.verdict for s in self.segments]
        if any(v is False for v in verdicts):
            return False
        if all(v is True for v in verdicts) and verdicts:
            return True
        return None


class KGGPTVerifier:
    """The three-stage KG-GPT pipeline for claim verification."""

    def __init__(self, llm: SimulatedLLM, kg: KnowledgeGraph,
                 evidence_per_segment: int = 25):
        self.llm = llm
        self.kg = kg
        self.evidence_per_segment = evidence_per_segment
        self.pipeline = (
            Pipeline("kg-gpt")
            .add("sentence segmentation", self._segment)
            .add("graph retrieval", self._retrieve)
            .add("inference", self._infer)
        )

    def verify(self, claim: str) -> ClaimVerdict:
        """Verify a (possibly multi-fact) claim against the KG."""
        context = self.pipeline.execute(claim=claim)
        return context["verdict"]

    # -- stage 1 ----------------------------------------------------------
    def _segment(self, context: PipelineContext) -> None:
        claim = context["claim"]
        segments: List[str] = []
        for sentence in split_sentences(claim):
            # Further split conjunctions into atomic segments.
            for part in sentence.replace(", and ", " and ").split(" and "):
                part = part.strip().rstrip(".").strip()
                if part:
                    segments.append(part + ".")
        context["segments"] = segments

    # -- stage 2 ----------------------------------------------------------
    def _retrieve(self, context: PipelineContext) -> None:
        evidence: List[List[str]] = []
        for segment in context["segments"]:
            mentions = self.llm.find_mentions(segment)
            seeds = [m.iri for m in mentions if m.iri is not None]
            facts: List[str] = []
            if seeds:
                subgraph = self.kg.subgraph(seeds, hops=1,
                                            max_triples=self.evidence_per_segment * 2)
                for triple in subgraph:
                    if triple.predicate in (RDFS.label, RDFS.comment, RDF.type):
                        continue
                    facts.append(self.kg.verbalize_triple(triple))
                    if len(facts) >= self.evidence_per_segment:
                        break
            evidence.append(facts)
        context["evidence"] = evidence

    # -- stage 3 ----------------------------------------------------------
    def _infer(self, context: PipelineContext) -> None:
        verdicts: List[SegmentVerdict] = []
        for segment, facts in zip(context["segments"], context["evidence"]):
            evidence_text = " ".join(facts)
            prompt = P.fact_check_prompt(segment,
                                         context=evidence_text or None)
            verdict = P.parse_fact_check_response(self.llm.complete(prompt).text)
            verdicts.append(SegmentVerdict(segment=segment, evidence=facts,
                                           verdict=verdict))
        context["verdict"] = ClaimVerdict(claim=context["claim"], segments=verdicts)
