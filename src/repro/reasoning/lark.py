"""LARK-style logical reasoning over KGs with an LLM (Choudhary & Reddy).

LARK's two moves, reproduced here:

1. **Relevant subgraph context** — for every stage of the query, retrieve
   the neighbourhood of the current frontier entities and verbalize it into
   the prompt.
2. **Chain decomposition** — a k-hop logical query becomes k single-hop LLM
   calls whose intermediate answers feed the next hop; intersections and
   unions combine the chain answer sets with set logic (done in code, as
   LARK's query operators do).

:class:`SingleShotReasoner` is the comparison point: the whole composed
question in one LLM call, no retrieval — the setting where LLMs degrade as
query complexity grows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.kg.graph import KnowledgeGraph, _humanize_relation
from repro.kg.triples import IRI, RDF, RDFS
from repro.llm import prompts as P
from repro.llm.model import SimulatedLLM
from repro.reasoning.fol import (
    ChainQuery, FOLQuery, IntersectionQuery, UnionQuery, verbalize_query,
)


class LARKReasoner:
    """Chain-decomposed, subgraph-grounded FOL answering."""

    def __init__(self, llm: SimulatedLLM, kg: KnowledgeGraph,
                 facts_per_hop: int = 60):
        self.llm = llm
        self.kg = kg
        self.facts_per_hop = facts_per_hop

    def answer(self, query: FOLQuery) -> Set[IRI]:
        """Answer entities of the query (possibly empty)."""
        if isinstance(query, ChainQuery):
            return self._answer_chain(query)
        if isinstance(query, IntersectionQuery):
            out: Optional[Set[IRI]] = None
            for part in query.parts:
                answers = self._answer_chain(part)
                out = answers if out is None else (out & answers)
            return out or set()
        if isinstance(query, UnionQuery):
            out = set()
            for part in query.parts:
                out |= self._answer_chain(part)
            return out
        raise TypeError(f"unknown FOL query type {type(query).__name__}")

    def _answer_chain(self, query: ChainQuery) -> Set[IRI]:
        frontier: Set[IRI] = {query.anchor}
        for relation in query.relations:
            next_frontier: Set[IRI] = set()
            for entity in sorted(frontier, key=lambda e: e.value):
                for label in self._hop(entity, relation):
                    for resolved in self.kg.find_by_label(label):
                        next_frontier.add(resolved)
            frontier = next_frontier
            if not frontier:
                break
        return frontier

    def _hop(self, entity: IRI, relation: IRI) -> List[str]:
        """One single-hop LLM call grounded in the entity's neighbourhood."""
        facts = self._context_facts(entity, relation)
        question = (f"List what {_humanize_relation(self.kg.label(relation))} "
                    f"{self.kg.label(entity)}?")
        response = self.llm.complete(P.qa_prompt(question, facts=facts))
        answer = P.parse_qa_response(response.text)
        if answer.lower() == "unknown":
            return []
        return [part.strip() for part in answer.split(",") if part.strip()]

    def _context_facts(self, entity: IRI, relation: IRI) -> List[str]:
        facts = []
        for triple in self.kg.outgoing(entity):
            if triple.predicate in (RDFS.label, RDFS.comment, RDF.type):
                continue
            facts.append(self.kg.verbalize_triple(triple))
            if len(facts) >= self.facts_per_hop:
                break
        return facts


class SingleShotReasoner:
    """Ask the entire composed question in one call (no decomposition,
    no retrieval) — the baseline LARK improves on."""

    def __init__(self, llm: SimulatedLLM, kg: KnowledgeGraph):
        self.llm = llm
        self.kg = kg

    def answer(self, query: FOLQuery) -> Set[IRI]:
        """Verbalize the whole query and ask the backbone once."""
        question = verbalize_query(self.kg, query)
        response = self.llm.complete(P.qa_prompt(question))
        answer = P.parse_qa_response(response.text)
        if answer.lower() == "unknown":
            return set()
        out: Set[IRI] = set()
        for part in answer.split(","):
            for resolved in self.kg.find_by_label(part.strip()):
                out.add(resolved)
        return out


def answer_f1(predicted: Set[IRI], gold: Set[IRI]) -> float:
    """Set F1 between predicted and gold answer entities."""
    if not predicted and not gold:
        return 1.0
    if not predicted or not gold:
        return 0.0
    tp = len(predicted & gold)
    precision = tp / len(predicted)
    recall = tp / len(gold)
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)
