"""First-order-logic queries over a KG (the LARK workload).

Query classes follow the multi-hop KGQA literature's naming: ``1p/2p/3p``
are relation-projection chains from an anchor entity, ``2i/3i`` intersect
chains, ``2u`` unions them. :func:`execute_fol` is the gold executor used to
score the LLM-based reasoners.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple, Union

from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import IRI


@dataclass(frozen=True)
class ChainQuery:
    """A projection chain: ``?x : rn(...r2(r1(anchor))...)``."""

    anchor: IRI
    relations: Tuple[IRI, ...]

    def __post_init__(self) -> None:
        if not self.relations:
            raise ValueError("a chain query needs at least one relation")

    @property
    def hops(self) -> int:
        """Chain length (1 for 1p, 2 for 2p, ...)."""
        return len(self.relations)


@dataclass(frozen=True)
class IntersectionQuery:
    """Conjunction of chains: answers must satisfy every part."""

    parts: Tuple[ChainQuery, ...]

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise ValueError("an intersection needs at least two parts")


@dataclass(frozen=True)
class UnionQuery:
    """Disjunction of chains: answers satisfying any part."""

    parts: Tuple[ChainQuery, ...]

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise ValueError("a union needs at least two parts")


FOLQuery = Union[ChainQuery, IntersectionQuery, UnionQuery]


def execute_fol(kg: KnowledgeGraph, query: FOLQuery) -> Set[IRI]:
    """Gold answers of a FOL query by direct graph traversal."""
    if isinstance(query, ChainQuery):
        frontier: Set[IRI] = {query.anchor}
        for relation in query.relations:
            next_frontier: Set[IRI] = set()
            for node in frontier:
                for triple in kg.store.match(node, relation, None):
                    if isinstance(triple.object, IRI):
                        next_frontier.add(triple.object)
            frontier = next_frontier
            if not frontier:
                break
        return frontier
    if isinstance(query, IntersectionQuery):
        answer_sets = [execute_fol(kg, part) for part in query.parts]
        out = answer_sets[0]
        for answers in answer_sets[1:]:
            out &= answers
        return out
    if isinstance(query, UnionQuery):
        out = set()
        for part in query.parts:
            out |= execute_fol(kg, part)
        return out
    raise TypeError(f"unknown FOL query type {type(query).__name__}")


def query_class(query: FOLQuery) -> str:
    """The literature's class name for a query (1p, 2p, 3p, 2i, 3i, 2u)."""
    if isinstance(query, ChainQuery):
        return f"{query.hops}p"
    if isinstance(query, IntersectionQuery):
        return f"{len(query.parts)}i"
    if isinstance(query, UnionQuery):
        return f"{len(query.parts)}u"
    raise TypeError(f"unknown FOL query type {type(query).__name__}")


def verbalize_query(kg: KnowledgeGraph, query: FOLQuery) -> str:
    """A natural-language rendering of the query (single-shot LLM input)."""
    if isinstance(query, ChainQuery):
        from repro.kg.graph import _humanize_relation
        phrase = f"List what {_humanize_relation(kg.label(query.relations[0]))} {kg.label(query.anchor)}?"
        for relation in query.relations[1:]:
            phrase = phrase.rstrip("?")
            phrase = (f"List what {_humanize_relation(kg.label(relation))} "
                      f"the answer of ({phrase})?")
        return phrase
    if isinstance(query, IntersectionQuery):
        parts = " and also ".join(verbalize_query(kg, p).rstrip("?")
                                  for p in query.parts)
        return f"{parts}? (both conditions must hold)"
    if isinstance(query, UnionQuery):
        parts = " or ".join(verbalize_query(kg, p).rstrip("?") for p in query.parts)
        return f"{parts}? (either condition may hold)"
    raise TypeError(f"unknown FOL query type {type(query).__name__}")
