"""Reasoning on Graphs (RoG, Luo et al.): planning → retrieval → reasoning.

The planning module proposes relation paths for the question and *grounds*
them against the KG schema (only paths that can exist survive — RoG's
"faithful plans"); the retrieval module instantiates the plans from the
anchor entity; the reasoning module answers over the retrieved paths and
returns them as the interpretable explanation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from repro.core.pipeline import Pipeline, PipelineContext
from repro.kg.graph import KnowledgeGraph, _humanize_relation
from repro.kg.triples import IRI
from repro.llm import prompts as P
from repro.llm.model import SimulatedLLM


@dataclass
class ReasoningResult:
    """Answer plus the reasoning paths that justify it."""

    answers: Set[IRI]
    plans: List[Tuple[IRI, ...]]                    # relation paths planned
    paths: List[List[Tuple[IRI, IRI, IRI]]]         # grounded (s, r, o) chains
    explanation: str = ""


class RoGReasoner:
    """The three-stage planning–retrieval–reasoning pipeline."""

    def __init__(self, llm: SimulatedLLM, kg: KnowledgeGraph, max_hops: int = 2):
        self.llm = llm
        self.kg = kg
        self.max_hops = max_hops
        self.pipeline = (
            Pipeline("rog")
            .add("planning", self._plan)
            .add("retrieval", self._retrieve)
            .add("reasoning", self._reason)
        )

    def answer(self, question: str) -> ReasoningResult:
        """Run the full pipeline for a natural-language question."""
        context = self.pipeline.execute(question=question)
        return context["result"]

    # -- planning ---------------------------------------------------------
    def _plan(self, context: PipelineContext) -> None:
        question = context["question"]
        mentions = self.llm.find_mentions(question)
        anchor: Optional[IRI] = None
        for mention in reversed(mentions):
            if mention.iri is not None:
                anchor = mention.iri
                break
        relation_hits = self.llm.find_relations(question)
        relations = [hit[1] for hit in relation_hits][: self.max_hops]
        plans: List[Tuple[IRI, ...]] = []
        if relations:
            # Question surface order is outermost-first; traversal from the
            # anchor runs innermost-first, so reverse.
            candidate = tuple(reversed(relations))
            if anchor is not None and self._plan_is_groundable(anchor, candidate):
                plans.append(candidate)
            elif anchor is not None and len(candidate) > 1:
                # Back off to shorter faithful plans.
                for length in range(len(candidate) - 1, 0, -1):
                    shorter = candidate[:length]
                    if self._plan_is_groundable(anchor, shorter):
                        plans.append(shorter)
                        break
        context["anchor"] = anchor
        context["plans"] = plans

    def _plan_is_groundable(self, anchor: IRI, relations: Tuple[IRI, ...]) -> bool:
        frontier: Set[IRI] = {anchor}
        for relation in relations:
            next_frontier: Set[IRI] = set()
            for node in frontier:
                for triple in self.kg.store.match(node, relation, None):
                    if isinstance(triple.object, IRI):
                        next_frontier.add(triple.object)
                for triple in self.kg.store.match(None, relation, node):
                    next_frontier.add(triple.subject)
            frontier = next_frontier
            if not frontier:
                return False
        return True

    # -- retrieval --------------------------------------------------------
    def _retrieve(self, context: PipelineContext) -> None:
        anchor: Optional[IRI] = context.get("anchor")
        paths: List[List[Tuple[IRI, IRI, IRI]]] = []
        for plan in context.get("plans", []):
            if anchor is None:
                break
            partials: List[Tuple[IRI, List[Tuple[IRI, IRI, IRI]]]] = [(anchor, [])]
            for relation in plan:
                extended: List[Tuple[IRI, List[Tuple[IRI, IRI, IRI]]]] = []
                for node, sofar in partials:
                    for triple in self.kg.store.match(node, relation, None):
                        if isinstance(triple.object, IRI):
                            extended.append(
                                (triple.object,
                                 sofar + [(node, relation, triple.object)]))
                    for triple in self.kg.store.match(None, relation, node):
                        extended.append(
                            (triple.subject,
                             sofar + [(triple.subject, relation, node)]))
                partials = extended[:50]
            paths.extend(path for _, path in partials)
        context["paths"] = paths

    # -- reasoning --------------------------------------------------------
    def _reason(self, context: PipelineContext) -> None:
        question = context["question"]
        paths: List[List[Tuple[IRI, IRI, IRI]]] = context.get("paths", [])
        facts: List[str] = []
        for path in paths[:40]:
            for s, r, o in path:
                phrase = _humanize_relation(self.kg.label(r))
                facts.append(f"{self.kg.label(s)} {phrase} {self.kg.label(o)}.")
        answers: Set[IRI] = set()
        if facts:
            response = self.llm.complete(P.qa_prompt(question, facts=facts))
            answer_text = P.parse_qa_response(response.text)
            if answer_text.lower() != "unknown":
                for part in answer_text.split(","):
                    for resolved in self.kg.find_by_label(part.strip()):
                        answers.add(resolved)
        explanation_lines = []
        for path in paths[:3]:
            chain = " -> ".join(
                f"{self.kg.label(s)} ({self.kg.label(r)}) {self.kg.label(o)}"
                for s, r, o in path)
            explanation_lines.append(chain)
        context["result"] = ReasoningResult(
            answers=answers,
            plans=list(context.get("plans", [])),
            paths=paths,
            explanation="\n".join(explanation_lines),
        )
