"""KG Reasoning (survey §2.3): rule-based inference and the three surveyed
LLM-reasoning frameworks.

* :mod:`rules` — Horn rules over KG relations, forward chaining, and
  support/confidence scoring (shared with ChatRule in the validation
  package).
* :mod:`fol` — first-order-logic query classes (1p/2p/3p chains,
  intersections, unions) plus a gold KG executor.
* :mod:`lark` — LARK: decompose a logical query into chained subqueries,
  each answered by the LLM over a retrieved subgraph context.
* :mod:`rog` — Reasoning-on-Graphs: planning (relation paths) → retrieval
  (grounded paths) → reasoning (answer + faithful path explanation).
* :mod:`kggpt` — KG-GPT: sentence segmentation → graph retrieval →
  inference, used for claim verification over KGs.
"""

from repro.reasoning.rules import Rule, RuleStats, forward_chain, score_rule
from repro.reasoning.fol import (
    ChainQuery, IntersectionQuery, UnionQuery, execute_fol, FOLQuery,
)
from repro.reasoning.lark import LARKReasoner, SingleShotReasoner
from repro.reasoning.rog import RoGReasoner, ReasoningResult
from repro.reasoning.kggpt import KGGPTVerifier

__all__ = [
    "Rule", "RuleStats", "forward_chain", "score_rule",
    "ChainQuery", "IntersectionQuery", "UnionQuery", "execute_fol", "FOLQuery",
    "LARKReasoner", "SingleShotReasoner",
    "RoGReasoner", "ReasoningResult",
    "KGGPTVerifier",
]
