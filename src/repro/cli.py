"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``stats <dataset>``              dataset statistics
``query <dataset> <sparql>``     run a SPARQL query
``cypher <dataset> <query>``     run a Cypher query
``ask <dataset> <question>``     KGQA via the path-reasoning system
``check <dataset> <statement>``  fact-check a statement against the KG
``validate <dataset>``           consistency-check the KG
``chat <dataset>``               interactive chatbot (reads stdin)
``table1`` / ``figure2``         print the paper's artifacts
``datasets``                     list available datasets

Datasets are the seeded generators of :mod:`repro.kg.datasets`
(``encyclopedia``, ``family``, ``movie``, ``covid``, ``enterprise``);
``--seed`` selects the generation seed.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.kg.datasets import DATASET_BUILDERS, Dataset


def _build_dataset(name: str, seed: int) -> Dataset:
    try:
        builder = DATASET_BUILDERS[name]
    except KeyError:
        raise SystemExit(
            f"unknown dataset {name!r}; available: "
            f"{', '.join(sorted(DATASET_BUILDERS))}")
    return builder(seed=seed)


def _render_rows(rows, dataset: Dataset) -> str:
    if isinstance(rows, bool):
        return "yes" if rows else "no"
    if not rows:
        return "(no results)"
    lines = []
    for row in rows:
        cells = []
        for name, value in sorted(row.items()):
            label = dataset.kg.label(value)
            cells.append(f"?{name}={label}")
        lines.append("  " + "  ".join(cells))
    return "\n".join(lines)


def cmd_datasets(args) -> int:
    for name in sorted(DATASET_BUILDERS):
        print(name)
    return 0


def cmd_stats(args) -> int:
    ds = _build_dataset(args.dataset, args.seed)
    stats = ds.stats()
    print(f"dataset: {ds.name} (seed={ds.seed})")
    for key, value in stats.items():
        print(f"  {key}: {value}")
    print(f"  classes: {len(ds.ontology.classes)}")
    print(f"  properties: {len(ds.ontology.properties)}")
    return 0


def cmd_query(args) -> int:
    from repro.sparql import SparqlEngine, SparqlParseError
    ds = _build_dataset(args.dataset, args.seed)
    engine = SparqlEngine(ds.kg.store)
    try:
        rows = engine.execute(args.query)
    except SparqlParseError as exc:
        print(f"parse error: {exc}", file=sys.stderr)
        return 2
    print(_render_rows(rows, ds))
    return 0


def cmd_cypher(args) -> int:
    from repro.sparql import CypherEngine, SparqlParseError
    from repro.sparql.cypher import CypherParseError
    ds = _build_dataset(args.dataset, args.seed)
    try:
        rows = CypherEngine(ds.kg.store).execute(args.query)
    except (CypherParseError, SparqlParseError) as exc:
        # SparqlParseError covers queries that pass the Cypher front-end but
        # translate to unparseable SPARQL (e.g. escaped quotes in labels).
        print(f"parse error: {exc}", file=sys.stderr)
        return 2
    print(_render_rows(rows, ds))
    return 0


def cmd_ask(args) -> int:
    from repro.llm import load_model
    from repro.qa.multihop import ReLMKGQA
    ds = _build_dataset(args.dataset, args.seed)
    llm = load_model(args.model, world=ds.kg, seed=args.seed)
    answers = ReLMKGQA(llm, ds.kg).answer(args.question)
    if answers:
        print(", ".join(sorted(ds.kg.label(a) for a in answers)))
    else:
        print("(no answer found)")
    return 0


def cmd_check(args) -> int:
    from repro.llm import load_model
    from repro.validation import ToolAugmentedFactChecker
    ds = _build_dataset(args.dataset, args.seed)
    llm = load_model(args.model, world=ds.kg, seed=args.seed)
    verdict = ToolAugmentedFactChecker(llm, ds.kg).check(args.statement)
    print({True: "true", False: "false", None: "unknown"}[verdict])
    return 0


def cmd_validate(args) -> int:
    from repro.validation import ConstraintChecker
    ds = _build_dataset(args.dataset, args.seed)
    violations = ConstraintChecker(ds.ontology).check(ds.kg)
    if not violations:
        print("consistent: no violations found")
        return 0
    for violation in violations:
        print(f"[{violation.kind}] {violation.detail}")
        for triple in violation.triples:
            print(f"    {triple.n3()}")
    return 1


def cmd_chat(args) -> int:
    from repro.llm import load_model
    from repro.qa import KGChatbot
    from repro.qa.multihop import ReLMKGQA
    ds = _build_dataset(args.dataset, args.seed)
    llm = load_model(args.model, world=ds.kg, seed=args.seed)
    bot = KGChatbot(llm, ds.kg, ReLMKGQA(llm, ds.kg))
    print(f"chatting over {ds.name} — empty line or EOF to quit")
    for line in sys.stdin:
        message = line.strip()
        if not message:
            break
        turn = bot.chat(message)
        print(f"[{turn.intent}] {turn.reply}")
    return 0


def cmd_export(args) -> int:
    ds = _build_dataset(args.dataset, args.seed)
    format = "ttl" if args.path.endswith(".ttl") else "nt"
    prefixes = {"ex": "http://repro.dev/kg/", "s": "http://repro.dev/schema/"}
    ds.kg.save(args.path, format=format, prefixes=prefixes)
    print(f"wrote {len(ds.kg)} triples to {args.path} ({format})")
    return 0


def cmd_table1(args) -> int:
    from repro.analysis import render_table1
    print(render_table1())
    return 0


def cmd_figure2(args) -> int:
    from repro.analysis.statistics import render_figure2
    print(render_figure2())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="LLM ⟷ KG interplay toolkit")
    parser.add_argument("--seed", type=int, default=0,
                        help="dataset/model seed (default 0)")
    parser.add_argument("--model", default="chatgpt",
                        help="simulated model profile (default chatgpt)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list dataset generators")
    p = sub.add_parser("stats", help="dataset statistics")
    p.add_argument("dataset")
    p = sub.add_parser("query", help="run a SPARQL query")
    p.add_argument("dataset")
    p.add_argument("query")
    p = sub.add_parser("cypher", help="run a Cypher query")
    p.add_argument("dataset")
    p.add_argument("query")
    p = sub.add_parser("ask", help="answer a question over the KG")
    p.add_argument("dataset")
    p.add_argument("question")
    p = sub.add_parser("check", help="fact-check a statement")
    p.add_argument("dataset")
    p.add_argument("statement")
    p = sub.add_parser("validate", help="consistency-check the KG")
    p.add_argument("dataset")
    p = sub.add_parser("export", help="write the KG to an .nt or .ttl file")
    p.add_argument("dataset")
    p.add_argument("path")
    p = sub.add_parser("chat", help="interactive chatbot (stdin)")
    p.add_argument("dataset")
    sub.add_parser("table1", help="print the paper's Table 1")
    sub.add_parser("figure2", help="print the paper's Figure 2")
    return parser


_HANDLERS = {
    "datasets": cmd_datasets,
    "stats": cmd_stats,
    "query": cmd_query,
    "cypher": cmd_cypher,
    "ask": cmd_ask,
    "check": cmd_check,
    "validate": cmd_validate,
    "export": cmd_export,
    "chat": cmd_chat,
    "table1": cmd_table1,
    "figure2": cmd_figure2,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
