"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``stats <dataset>``              dataset statistics
``query <dataset> <sparql>``     run a SPARQL query
``cypher <dataset> <query>``     run a Cypher query
``ask <dataset> <question>``     KGQA via the path-reasoning system
``check <dataset> <statement>``  fact-check a statement against the KG
``validate <dataset>``           consistency-check the KG
``chat <dataset>``               interactive chatbot (reads stdin)
``table1`` / ``figure2``         print the paper's artifacts
``datasets``                     list available datasets
``obs trace <dataset>``          run a traced GraphRAG workload, export JSONL
``obs report <path>``            summarize a JSONL observability export
``kg snapshot <dataset> <dir>``  persist a dataset KG into a durable store
``kg recover <dir>``             recover a durable store, print the report
``kg stats <dataset>``           per-shard triple counts, index + cache stats
``kg replicas <dataset>``        replicated-shard reads: breakers, hedging,
                                 partition / heal / byte-identical verify
``sparql explain <dataset> <q>`` cost-based plan with est/actual cardinalities
``run <dataset> --journal <p>``  checkpointed GraphRAG QA run (resumable)
``run --resume <journal>``       resume a killed run from its journal
``serve bench <dataset>``        overload benchmark through the gateway
``serve bench --stream``         continuous batching vs run-to-completion
``serve bench --partition``      availability over replicated shards under a
                                 mid-run one-replica-per-shard partition
``serve replay <dataset>``       closed-loop traffic replay (chaos-ready)
``serve replay --stream``        open-loop token-streaming replay (TTFT/TPOT)
``serve replay --schedule <f>``  replay an archived transport fault schedule
``agent run <dataset> <q>``      one ReAct episode over the graph tools
``agent eval <dataset>``         agent vs single-shot on the multi-hop set
``agent show <trace.jsonl>``     pretty-print a saved episode trace

Datasets are the seeded generators of :mod:`repro.kg.datasets`
(``encyclopedia``, ``family``, ``movie``, ``covid``, ``enterprise``);
``--seed`` selects the generation seed.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.kg.datasets import DATASET_BUILDERS, Dataset


def _build_dataset(name: str, seed: int) -> Dataset:
    try:
        builder = DATASET_BUILDERS[name]
    except KeyError:
        raise SystemExit(
            f"unknown dataset {name!r}; available: "
            f"{', '.join(sorted(DATASET_BUILDERS))}")
    return builder(seed=seed)


def _render_rows(rows, dataset: Dataset) -> str:
    if isinstance(rows, bool):
        return "yes" if rows else "no"
    if not rows:
        return "(no results)"
    lines = []
    for row in rows:
        cells = []
        for name, value in sorted(row.items()):
            label = dataset.kg.label(value)
            cells.append(f"?{name}={label}")
        lines.append("  " + "  ".join(cells))
    return "\n".join(lines)


def cmd_datasets(args) -> int:
    for name in sorted(DATASET_BUILDERS):
        print(name)
    return 0


def cmd_stats(args) -> int:
    ds = _build_dataset(args.dataset, args.seed)
    stats = ds.stats()
    print(f"dataset: {ds.name} (seed={ds.seed})")
    for key, value in stats.items():
        print(f"  {key}: {value}")
    print(f"  classes: {len(ds.ontology.classes)}")
    print(f"  properties: {len(ds.ontology.properties)}")
    return 0


def cmd_query(args) -> int:
    from repro.sparql import SparqlEngine, SparqlParseError
    ds = _build_dataset(args.dataset, args.seed)
    engine = SparqlEngine(ds.kg.store, planner=args.planner)
    try:
        rows = engine.execute(args.query)
    except SparqlParseError as exc:
        print(f"parse error: {exc}", file=sys.stderr)
        return 2
    print(_render_rows(rows, ds))
    return 0


def cmd_cypher(args) -> int:
    from repro.sparql import CypherEngine, SparqlParseError
    from repro.sparql.cypher import CypherParseError
    ds = _build_dataset(args.dataset, args.seed)
    try:
        rows = CypherEngine(ds.kg.store).execute(args.query)
    except (CypherParseError, SparqlParseError) as exc:
        # SparqlParseError covers queries that pass the Cypher front-end but
        # translate to unparseable SPARQL (e.g. escaped quotes in labels).
        print(f"parse error: {exc}", file=sys.stderr)
        return 2
    print(_render_rows(rows, ds))
    return 0


def cmd_ask(args) -> int:
    from repro.llm import load_model
    from repro.qa.multihop import ReLMKGQA
    ds = _build_dataset(args.dataset, args.seed)
    llm = load_model(args.model, world=ds.kg, seed=args.seed)
    answers = ReLMKGQA(llm, ds.kg).answer(args.question)
    if answers:
        print(", ".join(sorted(ds.kg.label(a) for a in answers)))
    else:
        print("(no answer found)")
    return 0


def cmd_check(args) -> int:
    from repro.llm import load_model
    from repro.validation import ToolAugmentedFactChecker
    ds = _build_dataset(args.dataset, args.seed)
    llm = load_model(args.model, world=ds.kg, seed=args.seed)
    verdict = ToolAugmentedFactChecker(llm, ds.kg).check(args.statement)
    print({True: "true", False: "false", None: "unknown"}[verdict])
    return 0


def cmd_validate(args) -> int:
    from repro.validation import ConstraintChecker
    ds = _build_dataset(args.dataset, args.seed)
    violations = ConstraintChecker(ds.ontology).check(ds.kg)
    if not violations:
        print("consistent: no violations found")
        return 0
    for violation in violations:
        print(f"[{violation.kind}] {violation.detail}")
        for triple in violation.triples:
            print(f"    {triple.n3()}")
    return 1


def cmd_chat(args) -> int:
    from repro.llm import load_model
    from repro.qa import KGChatbot
    from repro.qa.multihop import ReLMKGQA
    ds = _build_dataset(args.dataset, args.seed)
    llm = load_model(args.model, world=ds.kg, seed=args.seed)
    bot = KGChatbot(llm, ds.kg, ReLMKGQA(llm, ds.kg))
    print(f"chatting over {ds.name} — empty line or EOF to quit")
    for line in sys.stdin:
        message = line.strip()
        if not message:
            break
        turn = bot.chat(message)
        print(f"[{turn.intent}] {turn.reply}")
    return 0


def cmd_export(args) -> int:
    ds = _build_dataset(args.dataset, args.seed)
    format = "ttl" if args.path.endswith(".ttl") else "nt"
    prefixes = {"ex": "http://repro.dev/kg/", "s": "http://repro.dev/schema/"}
    ds.kg.save(args.path, format=format, prefixes=prefixes)
    print(f"wrote {len(ds.kg)} triples to {args.path} ({format})")
    return 0


def cmd_obs_trace(args) -> int:
    from repro.core.executor import ParallelExecutor
    from repro.core.observability import FakeClock, Observability
    from repro.enhanced.graph_rag import GraphRAG
    from repro.llm import load_model
    from repro.llm.faults import FaultInjectingLLM, FaultProfile

    ds = _build_dataset(args.dataset, args.seed)
    llm = load_model(args.model, world=ds.kg, seed=args.seed)
    faulty = FaultInjectingLLM(
        llm, FaultProfile.uniform(args.fault_rate, seed=args.seed))
    # A FakeClock makes the exported trace deterministic: identical runs
    # produce identical span timings, so exports are diffable.
    obs = Observability(clock=FakeClock())
    rag = GraphRAG(faulty, ds.kg, cache=True, obs=obs)
    executor = ParallelExecutor(max_workers=args.workers, obs=obs)
    questions = [
        "What are the main topics of this dataset?",
        "Which entities are most connected?",
        "What are the main topics of this dataset?",  # cache-hit repeat
    ]
    answers = rag.answer_global_batch(questions, executor=executor)
    written = obs.export_jsonl(args.out)
    print(f"traced {len(questions)} questions "
          f"({sum(1 for a in answers if a != 'unknown')} answered, "
          f"{rag.last_faulted_communities} faulted map calls) -> "
          f"{written} records in {args.out}")
    return 0


def cmd_obs_report(args) -> int:
    from repro.core.observability import load_jsonl
    from repro.eval.harness import ResultTable

    # A missing, empty, or truncated trace degrades to a clear message and
    # a nonzero exit — never an unhandled traceback.
    try:
        records = load_jsonl(args.path)
    except FileNotFoundError:
        print(f"obs report: trace file not found: {args.path}",
              file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"obs report: unreadable trace: {exc}", file=sys.stderr)
        return 2
    if not records:
        print(f"obs report: trace file {args.path} contains no records "
              "(empty or truncated export?)", file=sys.stderr)
        return 2
    spans = [r for r in records if r.get("type") == "span"]
    counters = [r for r in records if r.get("type") == "counter"]
    histograms = [r for r in records if r.get("type") == "histogram"]
    sources: dict = {}
    for record in records:
        if record.get("type") == "source":
            sources.setdefault(record["source"], {})[record["key"]] = \
                record["value"]

    # Per-stage latency from spans.
    by_name: dict = {}
    for span in spans:
        entry = by_name.setdefault(span["name"], {"count": 0, "total": 0.0})
        entry["count"] += 1
        entry["total"] += span.get("elapsed") or 0.0
    latency = ResultTable("Per-stage latency (spans)",
                          ["count", "total_s", "mean_s"])
    for name in sorted(by_name):
        entry = by_name[name]
        latency.add(name, count=entry["count"], total_s=entry["total"],
                    mean_s=entry["total"] / entry["count"])
    print(latency.render())

    # LLM calls and batch shapes.
    llm_table = ResultTable("LLM calls and batches",
                            ["calls", "batches", "max_batch", "mean_batch"])
    for name in sorted(sources):
        if not name.endswith(".model"):
            continue
        values = sources[name]
        batch = next((h for h in histograms
                      if h["name"] == "llm.batch_size"), None)
        llm_table.add(name, calls=int(values.get("calls", 0)),
                      batches=int(batch["count"]) if batch else 0,
                      max_batch=int(batch["max"]) if batch else 0,
                      mean_batch=(batch["sum"] / batch["count"])
                      if batch and batch["count"] else 0.0)
    print()
    print(llm_table.render())

    # Cache hit rates, one row per bound cache source.
    caches = ResultTable("Cache hit rates",
                         ["hits", "misses", "evictions", "hit_rate"])
    for name in sorted(sources):
        values = sources[name]
        if "hits" not in values or "misses" not in values:
            continue
        caches.add(name, hits=int(values["hits"]),
                   misses=int(values["misses"]),
                   evictions=int(values.get("evictions", 0)),
                   hit_rate=float(values.get("hit_rate", 0.0)))
    print()
    print(caches.render())

    # Fault injections by kind (push counters) plus wrapper totals.
    faults = ResultTable("Fault injections", ["count"])
    for counter in sorted(counters, key=lambda c: repr(c.get("labels"))):
        if counter["name"] == "llm.faults":
            kind = counter.get("labels", {}).get("kind", "?")
            faults.add(f"fault:{kind}", count=int(counter["value"]))
    for name in sorted(sources):
        if name.endswith(".faults"):
            values = sources[name]
            faults.add(f"{name} (total)",
                       count=int(values.get("injected", 0)))
    print()
    print(faults.render())

    # Per-worker executor utilization.
    workers = ResultTable("Executor utilization (per worker)",
                          ["stage", "busy_s"])
    rows = [c for c in counters if c["name"] == "executor.worker_busy"]
    for counter in sorted(rows, key=lambda c: (c["labels"].get("worker", ""),
                                               c["labels"].get("stage", ""))):
        labels = counter.get("labels", {})
        workers.add(labels.get("worker", "?"),
                    stage=labels.get("stage", "?"),
                    busy_s=float(counter["value"]))
    print()
    print(workers.render())
    return 0


def cmd_kg_snapshot(args) -> int:
    from repro.kg.wal import DurableTripleStore

    ds = _build_dataset(args.dataset, args.seed)
    store = DurableTripleStore(args.directory)
    added = store.add_all(t for t in ds.kg.store if t not in store)
    count = store.snapshot()
    store.close()
    print(f"snapshot of {ds.name}: {count} triples ({added} new) "
          f"at lsn {store.version} in {args.directory}")
    return 0


def cmd_kg_recover(args) -> int:
    from repro.kg.wal import recover

    try:
        store = recover(args.directory)
    except (OSError, ValueError) as exc:
        print(f"kg recover: cannot recover {args.directory}: {exc}",
              file=sys.stderr)
        return 2
    report = store.last_recovery
    store.close()
    print(f"recovered {report.triples} triples at lsn {report.version} "
          f"(snapshot lsn {report.snapshot_lsn} with "
          f"{report.snapshot_triples} triples, "
          f"{report.records_replayed} WAL records replayed, "
          f"{report.truncated_bytes} torn bytes truncated)")
    return 0


def _sharded_dataset(args) -> Dataset:
    """Build the dataset, re-homing its KG onto a sharded store if asked."""
    ds = _build_dataset(args.dataset, args.seed)
    if getattr(args, "shards", 0):
        from repro.kg.sharding import ShardedTripleStore
        ds.kg.store = ShardedTripleStore(ds.kg.store, shards=args.shards)
    return ds


def cmd_kg_stats(args) -> int:
    from repro.kg.indexes import FullTextIndex, NumericIndex

    ds = _sharded_dataset(args)
    store = ds.kg.store
    print(f"dataset: {ds.name} (seed={ds.seed}, "
          f"store={type(store).__name__})")
    shard_stats = getattr(store, "shard_stats", None)
    if shard_stats is not None:
        for index, row in enumerate(shard_stats()):
            print(f"  shard {index:02d}: triples={row['triples']} "
                  f"version={row['version']}")
    print(f"  triples: {len(store)}")
    print(f"  predicates: {len(store.relations())}")
    fulltext, numeric = FullTextIndex(store), NumericIndex(store)
    for name, stats in (("fulltext", fulltext.stats()),
                        ("numeric", numeric.stats())):
        rendered = " ".join(f"{key}={value}"
                            for key, value in sorted(stats.items()))
        print(f"  index {name}: {rendered}")
    # Warm the graph caches so the canonical schema shows live numbers.
    ds.kg.find_by_label("anything")
    cache = ds.kg.cache_stats()
    print("  cache: " + " ".join(
        f"{key}={cache[key]}" for key in
        ("hits", "misses", "evictions", "invalidations", "size",
         "hit_rate")))
    label_index = ds.kg.label_index_stats()
    print("  label-index: " + " ".join(
        f"{key}={value}" for key, value in sorted(label_index.items())))
    durability = getattr(store, "durability_stats", None)
    if durability is not None:
        rendered = " ".join(f"{key}={value}"
                            for key, value in sorted(durability().items()))
        print(f"  durability: {rendered}")
    return 0


def cmd_kg_replicas(args) -> int:
    from repro.kg.replication import (ReplicatedShardedTripleStore,
                                      ReplicationError, TransportProfile)
    from repro.kg.sharding import DEFAULT_SHARDS

    ds = _build_dataset(args.dataset, args.seed)
    profile = TransportProfile(seed=args.seed, drop_rate=args.drop_rate,
                               timeout_rate=args.timeout_rate,
                               tail_rate=args.tail_rate)
    store = ReplicatedShardedTripleStore(
        ds.kg.store, shards=args.shards or DEFAULT_SHARDS,
        replicas=args.replicas, profile=profile)
    shards = len(store.shard_stats())
    print(f"dataset: {ds.name} (seed={ds.seed}) — "
          f"{shards} shards x {args.replicas} replicas")
    victims = []
    if args.partition:
        victims = store.partition_one_replica_per_shard()
        print(f"partitioned one replica per shard: "
              f"{' '.join(f's{s}r{r}' for s, r in victims)}")
    # A deterministic subject-routed read workload: every read goes
    # through the transport (breakers, hedging, failover all exercised).
    subjects = sorted(store.subjects(), key=lambda term: term.n3())
    for index in range(args.reads):
        try:
            store.match(subjects[index % len(subjects)], None, None)
        except ReplicationError:
            pass  # counted in the stats table below
    if args.heal:
        store.restore_partitions()
        result = store.heal()
        print(f"heal: healed={len(result['healed'])} "
              f"lagging={len(result['lagging'])}")
    states = store.breaker_states()
    rows = {(row["shard"], row["replica"]): row
            for row in store.verify_replicas()}
    all_identical = True
    for shard in range(shards):
        primary = store.replica_store(shard, 0)
        print(f"  shard {shard:02d} r0: primary triples={len(primary)} "
              f"breaker={states[shard][0]}")
        for replica in range(1, args.replicas):
            row = rows[(shard, replica)]
            identical = row["identical"]
            all_identical = all_identical and identical
            print(f"  shard {shard:02d} r{replica}: "
                  f"triples={row['triples']} lag={row['lag']} "
                  f"identical={'yes' if identical else 'NO'} "
                  f"breaker={states[shard][replica]}")
    stats = store.replication_stats()
    print(f"  reads={stats['reads']} "
          f"hedges={stats['hedges_fired']}/{stats['hedge_wins']} "
          f"failovers={stats['failovers']} stale={stats['stale_reads']} "
          f"unavailable={stats['unavailable']} "
          f"quorum_losses={stats['quorum_losses']} "
          f"open_breakers={stats['open_breakers']}")
    transport = stats["transport"]
    print(f"  transport: calls={transport['calls']} ok={transport['ok']} "
          f"drops={transport['drops']} timeouts={transport['timeouts']} "
          f"partitioned={transport['partitioned']}")
    return 0 if all_identical else 1


def cmd_sparql_explain(args) -> int:
    from repro.sparql import SparqlEngine, SparqlParseError
    from repro.sparql.evaluator import SparqlEvaluationError

    ds = _sharded_dataset(args)
    engine = SparqlEngine(ds.kg.store, planner="cost")
    try:
        report = engine.explain(args.query)
    except SparqlParseError as exc:
        print(f"parse error: {exc}", file=sys.stderr)
        return 2
    except SparqlEvaluationError as exc:
        print(f"explain error: {exc}", file=sys.stderr)
        return 2
    print(report.render())
    return 0


def _run_questions(count: int) -> List[str]:
    """A deterministic global-question workload for ``repro run``."""
    base = [
        "What are the main topics of this dataset?",
        "Which entities are most connected?",
        "Summarize the relationships in this dataset.",
        "What communities exist in this graph?",
    ]
    return [base[i % len(base)] if i < len(base)
            else f"{base[i % len(base)]} (pass {i // len(base)})"
            for i in range(count)]


def cmd_run(args) -> int:
    from repro.core.durability import CheckpointError, CheckpointManager, read_meta
    from repro.core.executor import ParallelExecutor
    from repro.enhanced.graph_rag import GraphRAG
    from repro.llm import load_model
    from repro.llm.faults import FaultInjectingLLM, FaultProfile

    if args.resume:
        try:
            meta = read_meta(args.resume)
        except (OSError, CheckpointError) as exc:
            print(f"run: cannot resume {args.resume}: {exc}", file=sys.stderr)
            return 2
        config = dict(meta.get("config", {}))
        if "dataset" not in config:
            print(f"run: journal {args.resume} has no run config in its "
                  "meta record", file=sys.stderr)
            return 2
        journal_path = args.resume
    else:
        if not args.dataset or not args.journal:
            print("run: need <dataset> and --journal for a fresh run "
                  "(or --resume <journal>)", file=sys.stderr)
            return 2
        config = {"dataset": args.dataset, "seed": args.seed,
                  "model": args.model, "fault_rate": args.fault_rate,
                  "workers": args.workers, "questions": args.questions,
                  "batch_size": args.batch_size}
        journal_path = args.journal

    ds = _build_dataset(config["dataset"], config["seed"])
    llm = load_model(config["model"], world=ds.kg, seed=config["seed"])
    if config["fault_rate"]:
        llm = FaultInjectingLLM(
            llm, FaultProfile.uniform(config["fault_rate"],
                                      seed=config["seed"]))
    rag = GraphRAG(llm, ds.kg)
    executor = ParallelExecutor(max_workers=config["workers"])
    checkpoint = CheckpointManager(journal_path)
    try:
        # The journal's job key is the pipeline's own, so the batch path's
        # ensure_meta finds a matching record carrying the run config.
        checkpoint.ensure_meta("graphrag:answer_global_batch", config)
    except CheckpointError as exc:
        print(f"run: {exc}", file=sys.stderr)
        return 2
    questions = _run_questions(config["questions"])
    answers = rag.answer_global_batch(
        questions, batch_size=config["batch_size"], executor=executor,
        checkpoint=checkpoint)
    # Answers on stdout (byte-comparable across kill/resume); bookkeeping
    # on stderr.
    for index, answer in enumerate(answers):
        print(f"[{index}] {answer}")
    print(f"run: {len(answers)} questions answered "
          f"({checkpoint.resume_skips} restored from {journal_path}, "
          f"{rag.last_faulted_communities} faulted map calls)",
          file=sys.stderr)
    return 0


def _print_load_report(report, label: str) -> None:
    print(f"{label}: offered={report.offered} completed={report.completed} "
          f"shed={report.shed} rejected={report.rejected} "
          f"failed={report.failed} degraded={report.degraded}")
    print(f"  p50={report.p50_latency:.3f}s p99={report.p99_latency:.3f}s "
          f"goodput={report.goodput:.2f}/s "
          f"max_queue_depth={report.max_queue_depth}")
    tiers = " ".join(f"{tier}={count}" for tier, count
                     in sorted(report.tier_counts.items()))
    print(f"  tiers: {tiers or '(none)'}")
    if report.streamed:
        print(f"  streams: {report.streamed} "
              f"(completed={report.completed_streams} "
              f"shed={report.shed_mid_stream}) "
              f"p50_ttft={report.p50_ttft:.3f}s "
              f"p99_ttft={report.p99_ttft:.3f}s "
              f"tokens/s={report.tokens_per_sec:.1f}")


def _export_stream_metrics(obs, report, path: str) -> None:
    """Export the metrics JSONL with the streaming percentiles pinned as
    gauges (so the file carries p50/p99 TTFT and tokens/sec explicitly,
    alongside the serve.ttft/serve.tpot/serve.tokens_out histograms)."""
    obs.gauge("serve.ttft_p50", report.p50_ttft)
    obs.gauge("serve.ttft_p99", report.p99_ttft)
    obs.gauge("serve.tokens_per_sec", report.tokens_per_sec)
    written = obs.export_jsonl(path)
    print(f"  exported {written} metric records to {path}")


def cmd_serve_bench_stream(args) -> int:
    import json

    from repro.serve import serving_observability, streaming_experiment

    mix_name = "stream" if args.mix == "mixed" else args.mix
    reports = {}
    for policy in ("continuous", "run_to_completion"):
        for label, factor in (("baseline", 1.0),
                              ("overload", args.load_factor)):
            obs = serving_observability()
            report = streaming_experiment(
                dataset=args.dataset, mix_name=mix_name, policy=policy,
                max_batch=args.max_batch, load_factor=factor,
                n_requests=args.requests, seed=args.seed,
                queue_limit=args.queue_limit, budget=args.budget,
                prefix_cache=not args.no_prefix_cache, obs=obs)
            _print_load_report(report, f"{policy} {label} ({factor:g}x)")
            key = f"{policy}_{label}"
            reports[key] = report.to_dict()
            reports[key]["capacity_rps"] = \
                report.gateway_stats["capacity_rps"]
            if args.jsonl and key == "continuous_overload":
                _export_stream_metrics(obs, report, args.jsonl)
    continuous = reports["continuous_overload"]["goodput"]
    static = reports["run_to_completion_overload"]["goodput"]
    ratio = continuous / static if static else float("inf")
    baseline = reports["continuous_baseline"]
    ttft_share = (baseline["p50_ttft"] / baseline["p50_latency"]
                  if baseline["p50_latency"] else 0.0)
    print(f"continuous vs run-to-completion goodput at "
          f"{args.load_factor:g}x: {continuous:.2f}/s vs {static:.2f}/s "
          f"({ratio:.2f}x); baseline p50 TTFT is {ttft_share:.0%} of p50 "
          f"completion latency")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(reports, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}")
    return 0 if ratio >= 1.0 else 1


def cmd_serve_bench_partition(args) -> int:
    import json

    from repro.serve import partition_experiment, serving_observability

    reports = {}
    details = {}
    for label, partition in (("clean", False), ("partitioned", True)):
        obs = serving_observability()
        report, detail = partition_experiment(
            dataset=args.dataset, mix_name=args.mix, capacity=args.capacity,
            load_factor=args.load_factor, n_requests=args.requests,
            seed=args.seed, queue_limit=args.queue_limit, budget=args.budget,
            replicas=args.replicas, partition=partition,
            schedule_out=args.schedule_out if partition else None, obs=obs)
        _print_load_report(report, f"{label} ({args.load_factor:g}x, "
                                   f"replicas={args.replicas})")
        rep = detail["replication"]
        print(f"  replication: reads={rep['reads']} "
              f"hedges={rep['hedges_fired']}/{rep['hedge_wins']} "
              f"failovers={rep['failovers']} stale={rep['stale_reads']} "
              f"unavailable={rep['unavailable']} "
              f"open_breakers={rep['open_breakers']}")
        reports[label] = report.to_dict()
        details[label] = detail
        if args.jsonl and partition:
            written = obs.export_jsonl(args.jsonl)
            print(f"  exported {written} metric records to {args.jsonl}")
    clean = reports["clean"]["goodput"]
    partitioned = reports["partitioned"]["goodput"]
    ratio = partitioned / clean if clean else 1.0
    print(f"partitioned goodput at {args.load_factor:g}x: "
          f"{partitioned:.2f}/s vs fault-free {clean:.2f}/s ({ratio:.1%}); "
          f"availability={details['partitioned']['availability']:.1%}")
    if args.schedule_out:
        print(f"fault schedule -> {args.schedule_out}")
    if args.out:
        payload = {label: {"report": reports[label],
                           "detail": details[label]} for label in reports}
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}")
    return 0 if ratio >= 0.99 else 1


def cmd_serve_bench(args) -> int:
    import json

    from repro.serve import overload_experiment, serving_observability

    if args.stream:
        return cmd_serve_bench_stream(args)
    if args.partition:
        return cmd_serve_bench_partition(args)
    reports = {}
    for label, factor in (("baseline", 1.0), ("overload", args.load_factor)):
        obs = serving_observability()
        report = overload_experiment(
            dataset=args.dataset, mix_name=args.mix, capacity=args.capacity,
            load_factor=factor, n_requests=args.requests, seed=args.seed,
            queue_limit=args.queue_limit, budget=args.budget, obs=obs)
        _print_load_report(report, f"{label} ({factor:g}x)")
        reports[label] = report.to_dict()
        reports[label]["capacity_rps"] = report.gateway_stats["capacity_rps"]
        if args.jsonl and label == "overload":
            written = obs.export_jsonl(args.jsonl)
            print(f"  exported {written} metric records to {args.jsonl}")
    capacity_rps = reports["baseline"]["capacity_rps"]
    goodput = reports["overload"]["goodput"]
    ratio = goodput / capacity_rps if capacity_rps else 0.0
    print(f"goodput under {args.load_factor:g}x overload: {goodput:.2f}/s "
          f"({ratio:.0%} of {capacity_rps:.2f}/s capacity)")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(reports, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}")
    return 0 if ratio >= 0.8 else 1


def cmd_serve_replay_stream(args) -> int:
    from repro.serve import serving_observability, streaming_experiment

    mix_name = "stream" if args.mix == "mixed" else args.mix
    obs = serving_observability()
    report = streaming_experiment(
        dataset=args.dataset, mix_name=mix_name, policy=args.policy,
        max_batch=args.max_batch, load_factor=args.load_factor,
        n_requests=args.clients * args.requests_per_client, seed=args.seed,
        queue_limit=args.queue_limit, budget=args.budget,
        fault_rate=args.fault_rate, obs=obs)
    _print_load_report(report, f"stream replay ({args.policy})")
    reconciled = report.completed_streams + report.shed_mid_stream
    print(f"  streamed={report.streamed} == "
          f"completed_streams+shed_mid_stream={reconciled}: "
          f"{'ok' if report.streamed == reconciled else 'MISMATCH'}")
    if args.jsonl:
        _export_stream_metrics(obs, report, args.jsonl)
    return 0 if report.streamed == reconciled else 1


def cmd_serve_replay(args) -> int:
    from repro.core.resilience import CircuitBreaker
    from repro.llm import load_model
    from repro.llm.faults import FaultInjectingLLM, FaultProfile
    from repro.serve import (Gateway, LoadGenerator, MIXES, RateLimiter,
                             build_backends, question_pool,
                             serving_observability)

    if args.stream:
        return cmd_serve_replay_stream(args)
    if args.mix not in MIXES:
        print(f"unknown mix {args.mix!r}; available: "
              f"{', '.join(sorted(MIXES))}", file=sys.stderr)
        return 2
    transport_profile, forced, replicas = None, [], args.replicas
    if args.schedule:
        from repro.kg.replication import load_schedule_jsonl
        # A corrupt schedule — even in its first record — degrades to a
        # one-line message and rc 2, like every other bad-input path.
        try:
            transport_profile, forced = load_schedule_jsonl(args.schedule)
        except (OSError, ValueError) as exc:
            print(f"serve replay: cannot load schedule: {exc}",
                  file=sys.stderr)
            return 2
        replicas = replicas or 2
    ds = _build_dataset(args.dataset, args.seed)
    llm = load_model(args.model, world=ds.kg, seed=args.seed)
    if args.fault_rate:
        llm = FaultInjectingLLM(
            llm, FaultProfile.uniform(args.fault_rate, seed=args.seed))
    obs = serving_observability()
    backends = build_backends(dataset=args.dataset, seed=args.seed, llm=llm,
                              obs=obs, replicas=replicas,
                              transport_profile=transport_profile)
    if backends.replicated is not None:
        for shard, replica in forced:
            backends.replicated.transport.force_partition(shard, replica)
        schedule = f" schedule={args.schedule}" if args.schedule else ""
        print(f"replicated shards: replicas={replicas} "
              f"forced_partitions={len(forced)}{schedule}")
    limiter = None
    if args.tenant_rate:
        limiter = RateLimiter(tenant_rate=args.tenant_rate,
                              tenant_burst=args.tenant_burst, seed=args.seed)
    gateway = Gateway(backends.handlers, capacity=args.capacity,
                      queue_limit=args.queue_limit, budget=args.budget,
                      limiter=limiter,
                      breaker=CircuitBreaker(failure_threshold=5, cooldown=8,
                                             name="serve-tier0"),
                      obs=obs, seed=args.seed)
    generator = LoadGenerator(gateway, question_pool(backends.dataset,
                                                     seed=args.seed),
                              MIXES[args.mix], seed=args.seed, clock=obs.clock)
    report = generator.run_closed(clients=args.clients,
                                  requests_per_client=args.requests_per_client,
                                  think=args.think)
    _print_load_report(report, f"replay ({args.clients} clients)")
    stats = gateway.stats()
    admitted = stats["admitted"]
    reconciled = stats["completed"] + stats["shed"] + stats["failed"]
    print(f"  admitted={admitted} == completed+shed+failed={reconciled}: "
          f"{'ok' if admitted == reconciled else 'MISMATCH'}")
    if backends.replicated is not None:
        rep = backends.replicated.replication_stats()
        print(f"  replication: reads={rep['reads']} "
              f"hedges={rep['hedges_fired']}/{rep['hedge_wins']} "
              f"failovers={rep['failovers']} stale={rep['stale_reads']} "
              f"unavailable={rep['unavailable']} "
              f"open_breakers={rep['open_breakers']}")
    if args.jsonl:
        written = obs.export_jsonl(args.jsonl)
        print(f"  exported {written} metric records to {args.jsonl}")
    return 0 if admitted == reconciled else 1


def _agent_dataset(args) -> Optional[Dataset]:
    """Dataset for the agent verbs, or None after an rc-2 message."""
    if args.dataset not in DATASET_BUILDERS:
        print(f"agent: unknown dataset {args.dataset!r}; available: "
              f"{', '.join(sorted(DATASET_BUILDERS))}", file=sys.stderr)
        return None
    return DATASET_BUILDERS[args.dataset](seed=args.seed)


def cmd_agent_run(args) -> int:
    from repro.agent import GraphAgent, UnknownToolError, default_registry
    from repro.core.executor import ParallelExecutor
    from repro.core.observability import FakeClock, Observability
    from repro.llm import load_model

    # Bad input degrades to a clear message and exit code 2 — never an
    # unhandled traceback (``repro obs report`` precedent).
    ds = _agent_dataset(args)
    if ds is None:
        return 2
    llm = load_model(args.model, world=ds.kg, seed=args.seed)
    obs = Observability(clock=FakeClock()) if args.obs_out else None
    executor = ParallelExecutor(max_workers=args.workers, obs=obs)
    registry = default_registry(ds.kg, executor=executor)
    if args.tools:
        try:
            registry = registry.subset(
                [name.strip() for name in args.tools.split(",")
                 if name.strip()])
        except UnknownToolError as exc:
            print(f"agent run: {exc}", file=sys.stderr)
            return 2
    agent = GraphAgent(llm, ds.kg, registry=registry,
                       max_steps=args.max_steps, executor=executor, obs=obs)
    trace = agent.run(args.question)
    for step in trace.steps:
        if step.fault is not None:
            print(f"[{step.index}] fault: {step.fault} (retrying)")
            continue
        print(f"[{step.index}] Thought: {step.thought}")
        if step.tool is not None:
            import json as _json
            print(f"[{step.index}] Action: {step.tool} "
                  f"{_json.dumps(step.args, sort_keys=True)}")
            print(f"[{step.index}] Observation: {step.observation}")
    print(f"final: {trace.final_answer} "
          f"(stop={trace.stop_reason}, steps={len(trace.steps)}"
          f"{', degraded' if trace.degraded else ''})")
    if args.trace:
        with open(args.trace, "w") as handle:
            for line in trace.jsonl_lines():
                handle.write(line + "\n")
        print(f"trace -> {args.trace}")
    if args.obs_out:
        written = obs.export_jsonl(args.obs_out)
        print(f"obs -> {written} records in {args.obs_out}")
    return 0


def cmd_agent_eval(args) -> int:
    from repro.agent import agent_experiment

    if args.dataset not in DATASET_BUILDERS:
        print(f"agent: unknown dataset {args.dataset!r}; available: "
              f"{', '.join(sorted(DATASET_BUILDERS))}", file=sys.stderr)
        return 2
    result = agent_experiment(args.dataset, n=args.n, seed=args.seed,
                              max_steps=args.max_steps)
    print(f"agent eval on {result['dataset']} "
          f"(n={result['n']}, seed={result['seed']}, "
          f"max_steps={result['max_steps']})")
    print(f"  agent accuracy       {result['agent_accuracy']:.2f}")
    print(f"  single-shot accuracy {result['single_shot_accuracy']:.2f}")
    print(f"  mean steps/episode   {result['mean_steps']:.2f}")
    kinds = " ".join(f"{kind}={acc:.2f}" for kind, acc
                     in result["accuracy_by_kind"].items())
    print(f"  by kind              {kinds}")
    workers = "/".join(str(w) for w in result["workers"])
    identical = "identical" if result["traces_identical"] else "DIVERGED"
    print(f"  traces @ workers {workers}: {identical}")
    return 0


def cmd_agent_show(args) -> int:
    from repro.agent import parse_trace_jsonl

    try:
        with open(args.path) as handle:
            trace = parse_trace_jsonl(handle.readlines())
    except FileNotFoundError:
        print(f"agent show: trace file not found: {args.path}",
              file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"agent show: malformed trace: {exc}", file=sys.stderr)
        return 2
    header, final = trace["header"], trace["final"]
    print(f"question: {header['question']} "
          f"(max_steps={header['max_steps']})")
    for step in trace["steps"]:
        if step.get("fault"):
            print(f"  [{step['index']}] fault: {step['fault']}")
            continue
        label = step.get("tool") or ("final" if step.get("final") is not None
                                     else "?")
        print(f"  [{step['index']}] {label}: "
              f"{step.get('observation') or step.get('final') or ''}")
    print(f"final: {final['answer']} (stop={final['stop_reason']}, "
          f"steps={final['steps']}"
          f"{', degraded' if final['degraded'] else ''})")
    return 0


def cmd_table1(args) -> int:
    from repro.analysis import render_table1
    print(render_table1())
    return 0


def cmd_figure2(args) -> int:
    from repro.analysis.statistics import render_figure2
    print(render_figure2())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="LLM ⟷ KG interplay toolkit")
    parser.add_argument("--seed", type=int, default=0,
                        help="dataset/model seed (default 0)")
    parser.add_argument("--model", default="chatgpt",
                        help="simulated model profile (default chatgpt)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list dataset generators")
    p = sub.add_parser("stats", help="dataset statistics")
    p.add_argument("dataset")
    p = sub.add_parser("query", help="run a SPARQL query")
    p.add_argument("dataset")
    p.add_argument("query")
    p.add_argument("--planner", default="greedy",
                   choices=("greedy", "cost", "parse"),
                   help="BGP join-ordering strategy (default greedy)")
    p = sub.add_parser("cypher", help="run a Cypher query")
    p.add_argument("dataset")
    p.add_argument("query")
    p = sub.add_parser("ask", help="answer a question over the KG")
    p.add_argument("dataset")
    p.add_argument("question")
    p = sub.add_parser("check", help="fact-check a statement")
    p.add_argument("dataset")
    p.add_argument("statement")
    p = sub.add_parser("validate", help="consistency-check the KG")
    p.add_argument("dataset")
    p = sub.add_parser("export", help="write the KG to an .nt or .ttl file")
    p.add_argument("dataset")
    p.add_argument("path")
    p = sub.add_parser("chat", help="interactive chatbot (stdin)")
    p.add_argument("dataset")
    sub.add_parser("table1", help="print the paper's Table 1")
    sub.add_parser("figure2", help="print the paper's Figure 2")
    p = sub.add_parser("obs", help="observability: trace a run / report it")
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    p = obs_sub.add_parser("trace",
                           help="run a traced GraphRAG workload, export JSONL")
    p.add_argument("dataset")
    p.add_argument("--out", default="obs.jsonl",
                   help="JSONL export path (default obs.jsonl)")
    p.add_argument("--workers", type=int, default=2,
                   help="executor worker count (default 2)")
    p.add_argument("--fault-rate", type=float, default=0.1,
                   help="injected fault rate (default 0.1)")
    p = obs_sub.add_parser("report",
                           help="summarize a JSONL observability export")
    p.add_argument("path")
    p = sub.add_parser("kg", help="durable store: snapshot / recover")
    kg_sub = p.add_subparsers(dest="kg_command", required=True)
    p = kg_sub.add_parser("snapshot",
                          help="persist a dataset KG into a durable store")
    p.add_argument("dataset")
    p.add_argument("directory")
    p = kg_sub.add_parser("recover",
                          help="recover a durable store, print the report")
    p.add_argument("directory")
    p = kg_sub.add_parser(
        "stats", help="per-shard triple counts, index and cache stats")
    p.add_argument("dataset")
    p.add_argument("--shards", type=int, default=0,
                   help="re-home the KG onto N hash shards (default off)")
    p = kg_sub.add_parser(
        "replicas", help="replicated-shard read workload: breakers, "
                         "hedging, partition, heal, verify")
    p.add_argument("dataset")
    p.add_argument("--shards", type=int, default=0,
                   help="shard count (default: built-in default)")
    p.add_argument("--replicas", type=int, default=2,
                   help="replicas per shard (default 2)")
    p.add_argument("--reads", type=int, default=64,
                   help="subject-routed read workload size (default 64)")
    p.add_argument("--partition", action="store_true",
                   help="force one replica per shard off the network "
                        "before the reads")
    p.add_argument("--heal", action="store_true",
                   help="lift partitions and run an anti-entropy pass "
                        "after the reads")
    p.add_argument("--drop-rate", type=float, default=0.0,
                   help="transport drop probability (default 0)")
    p.add_argument("--timeout-rate", type=float, default=0.0,
                   help="transport timeout probability (default 0)")
    p.add_argument("--tail-rate", type=float, default=0.0,
                   help="slow-tail latency probability (default 0)")
    p = sub.add_parser("sparql", help="query planning: explain")
    sparql_sub = p.add_subparsers(dest="sparql_command", required=True)
    p = sparql_sub.add_parser(
        "explain", help="run a SELECT under the cost planner, show the plan")
    p.add_argument("dataset")
    p.add_argument("query")
    p.add_argument("--shards", type=int, default=0,
                   help="re-home the KG onto N hash shards (default off)")
    p = sub.add_parser("serve", help="serving gateway: bench / replay")
    serve_sub = p.add_subparsers(dest="serve_command", required=True)
    p = serve_sub.add_parser(
        "bench", help="overload benchmark: goodput at 1x vs Nx capacity")
    p.add_argument("dataset", nargs="?", default="enterprise")
    p.add_argument("--mix", default="mixed",
                   help="traffic mix (default mixed)")
    p.add_argument("--capacity", type=int, default=4,
                   help="simulated worker fleet width (default 4)")
    p.add_argument("--load-factor", type=float, default=2.0,
                   help="overload multiple of capacity (default 2.0)")
    p.add_argument("--requests", type=int, default=200,
                   help="requests per run (default 200)")
    p.add_argument("--queue-limit", type=int, default=32,
                   help="per-tenant queue bound (default 32)")
    p.add_argument("--budget", type=float, default=4.0,
                   help="per-request deadline seconds (default 4.0)")
    p.add_argument("--out", help="write both reports as JSON to this path")
    p.add_argument("--jsonl", help="export overload-run metrics JSONL")
    p.add_argument("--stream", action="store_true",
                   help="token-streaming benchmark: continuous batching vs "
                        "run-to-completion through the TokenScheduler")
    p.add_argument("--max-batch", type=int, default=8,
                   help="streaming batch width (default 8, --stream only)")
    p.add_argument("--no-prefix-cache", action="store_true",
                   help="disable the radix prefix cache (--stream only)")
    p.add_argument("--partition", action="store_true",
                   help="partition benchmark: goodput over replicated "
                        "shards with one replica per shard cut mid-run")
    p.add_argument("--replicas", type=int, default=2,
                   help="replicas per shard (default 2, --partition only)")
    p.add_argument("--schedule-out",
                   help="archive the transport fault schedule as JSONL "
                        "(--partition only)")
    p = serve_sub.add_parser(
        "replay", help="closed-loop replay (supports fault injection)")
    p.add_argument("dataset", nargs="?", default="enterprise")
    p.add_argument("--mix", default="mixed",
                   help="traffic mix (default mixed)")
    p.add_argument("--capacity", type=int, default=4,
                   help="simulated worker fleet width (default 4)")
    p.add_argument("--clients", type=int, default=8,
                   help="closed-loop client population (default 8)")
    p.add_argument("--requests-per-client", type=int, default=10,
                   help="requests per client (default 10)")
    p.add_argument("--think", type=float, default=0.5,
                   help="mean think time seconds (default 0.5)")
    p.add_argument("--queue-limit", type=int, default=16,
                   help="per-tenant queue bound (default 16)")
    p.add_argument("--budget", type=float, default=6.0,
                   help="per-request deadline seconds (default 6.0)")
    p.add_argument("--fault-rate", type=float, default=0.0,
                   help="injected LLM fault rate (default 0)")
    p.add_argument("--tenant-rate", type=float, default=0.0,
                   help="per-tenant token-bucket rate (default off)")
    p.add_argument("--tenant-burst", type=int, default=5,
                   help="per-tenant token-bucket burst (default 5)")
    p.add_argument("--jsonl", help="export replay metrics JSONL")
    p.add_argument("--stream", action="store_true",
                   help="open-loop token-streaming replay through the "
                        "TokenScheduler (fault injection supported)")
    p.add_argument("--policy", default="continuous",
                   choices=("continuous", "run_to_completion"),
                   help="streaming scheduler policy (default continuous)")
    p.add_argument("--max-batch", type=int, default=8,
                   help="streaming batch width (default 8, --stream only)")
    p.add_argument("--load-factor", type=float, default=1.0,
                   help="offered load multiple of capacity "
                        "(default 1.0, --stream only)")
    p.add_argument("--replicas", type=int, default=0,
                   help="serve over N-way replicated shards (default off)")
    p.add_argument("--schedule",
                   help="replay a transport fault schedule JSONL "
                        "(implies --replicas 2 when unset)")
    p = sub.add_parser("agent",
                       help="agentic GraphRAG: run / eval / show traces")
    agent_sub = p.add_subparsers(dest="agent_command", required=True)
    p = agent_sub.add_parser(
        "run", help="one ReAct episode over the graph-tool registry")
    p.add_argument("dataset")
    p.add_argument("question")
    p.add_argument("--max-steps", type=int, default=8,
                   help="episode step budget (default 8)")
    p.add_argument("--workers", type=int, default=1,
                   help="tool fan-out worker count (default 1)")
    p.add_argument("--tools",
                   help="comma-separated tool subset (default all)")
    p.add_argument("--trace", help="write the episode trace JSONL here")
    p.add_argument("--obs-out", help="export obs spans/counters JSONL here")
    p = agent_sub.add_parser(
        "eval", help="agent vs single-shot on the multi-hop eval set")
    p.add_argument("dataset")
    p.add_argument("--n", type=int, default=12,
                   help="eval set size (default 12)")
    p.add_argument("--max-steps", type=int, default=8,
                   help="episode step budget (default 8)")
    p = agent_sub.add_parser(
        "show", help="pretty-print a saved episode trace JSONL")
    p.add_argument("path")
    p = sub.add_parser("run",
                       help="checkpointed GraphRAG QA run (resumable)")
    p.add_argument("dataset", nargs="?")
    p.add_argument("--journal", help="checkpoint journal path (fresh run)")
    p.add_argument("--resume", metavar="JOURNAL",
                   help="resume a killed run (config read from the journal)")
    p.add_argument("--questions", type=int, default=8,
                   help="workload size (default 8)")
    p.add_argument("--batch-size", type=int, default=2,
                   help="questions per checkpointed chunk (default 2)")
    p.add_argument("--workers", type=int, default=2,
                   help="executor worker count (default 2)")
    p.add_argument("--fault-rate", type=float, default=0.0,
                   help="injected fault rate (default 0)")
    return parser


_HANDLERS = {
    "datasets": cmd_datasets,
    "stats": cmd_stats,
    "query": cmd_query,
    "cypher": cmd_cypher,
    "ask": cmd_ask,
    "check": cmd_check,
    "validate": cmd_validate,
    "export": cmd_export,
    "chat": cmd_chat,
    "table1": cmd_table1,
    "figure2": cmd_figure2,
    "run": cmd_run,
}

_OBS_HANDLERS = {
    "trace": cmd_obs_trace,
    "report": cmd_obs_report,
}

_KG_HANDLERS = {
    "snapshot": cmd_kg_snapshot,
    "recover": cmd_kg_recover,
    "stats": cmd_kg_stats,
    "replicas": cmd_kg_replicas,
}

_SPARQL_HANDLERS = {
    "explain": cmd_sparql_explain,
}

_SERVE_HANDLERS = {
    "bench": cmd_serve_bench,
    "replay": cmd_serve_replay,
}

_AGENT_HANDLERS = {
    "run": cmd_agent_run,
    "eval": cmd_agent_eval,
    "show": cmd_agent_show,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "obs":
        return _OBS_HANDLERS[args.obs_command](args)
    if args.command == "kg":
        return _KG_HANDLERS[args.kg_command](args)
    if args.command == "sparql":
        return _SPARQL_HANDLERS[args.sparql_command](args)
    if args.command == "serve":
        return _SERVE_HANDLERS[args.serve_command](args)
    if args.command == "agent":
        return _AGENT_HANDLERS[args.agent_command](args)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
