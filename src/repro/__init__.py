"""``repro`` — an offline, deterministic LLM+KG interplay toolkit.

Reproduction of "Research Trends for the Interplay between Large Language
Models and Knowledge Graphs" (VLDB 2024 Workshop LLM+KG). See DESIGN.md for
the system inventory and EXPERIMENTS.md for the reproduced evaluation.
"""

__version__ = "1.0.0"
