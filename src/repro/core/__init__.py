"""The paper's primary conceptual contribution, made executable.

:mod:`taxonomy` encodes the Figure-1 categorization tree (the three
interplay types with their subcategories, research-question markers and
novelty stars) and the RQ1–RQ6 registry, each mapped to the package that
implements it. :mod:`pipeline` is the composable component abstraction the
cooperation-style systems (RAG, RoG, KG-GPT, chatbot) are built from.
"""

from repro.core.taxonomy import (
    InterplayType,
    TaxonomyNode,
    FIGURE1_TAXONOMY,
    RESEARCH_QUESTIONS,
    ResearchQuestion,
    iter_nodes,
)
from repro.core.pipeline import (
    Pipeline,
    Component,
    PipelineContext,
    PipelineReport,
    StagePolicy,
    StageReport,
)
from repro.core.executor import (
    ItemOutcome,
    ParallelExecutor,
    chunked,
)
from repro.core.observability import (
    FakeClock,
    MetricsRegistry,
    NULL_OBS,
    NoopObservability,
    Observability,
    Span,
    SystemClock,
    Tracer,
    cache_stats_dict,
    load_jsonl,
    resolve_obs,
)
from repro.core.durability import (
    CheckpointError,
    CheckpointManager,
    ResumeState,
    fast_forward_faults,
    fault_schedule_cursor,
    read_meta,
)
from repro.core.resilience import (
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineExceeded,
    FallbackChain,
    FallbackExhaustedError,
    FallbackResult,
    ResilienceError,
    RetryOutcome,
    RetryPolicy,
)

__all__ = [
    "InterplayType",
    "TaxonomyNode",
    "FIGURE1_TAXONOMY",
    "RESEARCH_QUESTIONS",
    "ResearchQuestion",
    "iter_nodes",
    "Pipeline",
    "Component",
    "PipelineContext",
    "PipelineReport",
    "StagePolicy",
    "StageReport",
    "ItemOutcome",
    "ParallelExecutor",
    "chunked",
    "CircuitBreaker",
    "CircuitOpenError",
    "Deadline",
    "DeadlineExceeded",
    "FallbackChain",
    "FallbackExhaustedError",
    "FallbackResult",
    "ResilienceError",
    "RetryOutcome",
    "RetryPolicy",
    "FakeClock",
    "MetricsRegistry",
    "NULL_OBS",
    "NoopObservability",
    "Observability",
    "Span",
    "SystemClock",
    "Tracer",
    "cache_stats_dict",
    "load_jsonl",
    "resolve_obs",
    "CheckpointError",
    "CheckpointManager",
    "ResumeState",
    "fast_forward_faults",
    "fault_schedule_cursor",
    "read_meta",
]
