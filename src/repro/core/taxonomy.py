"""The Figure-1 taxonomy and the RQ1–RQ6 registry.

The survey's central artifact is a categorization of the LLM⟷KG interplay
into three types — *LLM for KG*, *KG-enhanced LLM*, *LLM-KG Cooperation* —
each with subcategories. Nodes carry the paper's two markers: whether the
topic is addressed by one of the six research questions (pink in Figure 1)
and whether it was absent from all previous surveys (starred).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple


class InterplayType(enum.Enum):
    """The three top-level interaction categories (Figure 1)."""

    LLM_FOR_KG = "LLM for KG"
    KG_ENHANCED_LLM = "KG-enhanced LLM"
    LLM_KG_COOPERATION = "LLM-KG Cooperation"


@dataclass
class TaxonomyNode:
    """One node of the Figure-1 tree."""

    name: str
    children: List["TaxonomyNode"] = field(default_factory=list)
    research_question: Optional[int] = None   # 1..6 when RQ-flagged (pink)
    novel: bool = False                       # starred: absent from prior surveys
    module: Optional[str] = None              # implementing package in this repo

    def find(self, name: str) -> Optional["TaxonomyNode"]:
        """Depth-first lookup by node name."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None


def _node(name: str, children: Tuple[TaxonomyNode, ...] = (),
          rq: Optional[int] = None, novel: bool = False,
          module: Optional[str] = None) -> TaxonomyNode:
    return TaxonomyNode(name=name, children=list(children),
                        research_question=rq, novel=novel, module=module)


#: The Figure-1 tree. Node names follow the paper's section headings; the
#: ``module`` field maps each topic to its implementation in this repo.
FIGURE1_TAXONOMY = _node("LLM-KG Interplay", (
    _node(InterplayType.LLM_FOR_KG.value, (
        _node("KG Construction", (
            _node("Ontology Creation", rq=2, module="repro.construction.ontology"),
            _node("Entity Extraction and Alignment", module="repro.construction.ner"),
            _node("Relation Extraction", module="repro.construction.relation_extraction"),
        )),
        _node("KG-to-Text Generation", rq=1, module="repro.kg2text"),
        _node("KG Reasoning", module="repro.reasoning"),
        _node("KG Completion", module="repro.completion"),
        _node("KG Embedding", module="repro.completion.embeddings"),
        _node("KG Validation", (
            _node("Fact Checking", rq=4, novel=True,
                  module="repro.validation.fact_checking"),
            _node("Inconsistency Detection", rq=3, novel=True,
                  module="repro.validation.inconsistency"),
        ), novel=True),
    )),
    _node(InterplayType.KG_ENHANCED_LLM.value, (
        _node("Knowledge Injection", module="repro.enhanced.kbert"),
        _node("Retrieval Augmented Generation", module="repro.enhanced.rag"),
        _node("Graph RAG", module="repro.enhanced.graph_rag"),
    )),
    _node(InterplayType.LLM_KG_COOPERATION.value, (
        _node("KG Question Answering", (
            _node("Multi-Hop Question Generation", novel=True,
                  module="repro.qa.question_generation"),
            _node("Complex or Multi-hop Question Answering", rq=5, novel=True,
                  module="repro.qa.multihop"),
            _node("Query Generation from text", rq=6, novel=True,
                  module="repro.qa.text2sparql"),
            _node("Querying LLMs with SPARQL", novel=True,
                  module="repro.qa.llm_sparql"),
            _node("KG Chatbots", novel=True, module="repro.qa.chatbot"),
        ), rq=5),
    )),
))


def iter_nodes(root: TaxonomyNode = FIGURE1_TAXONOMY) -> Iterator[TaxonomyNode]:
    """Pre-order traversal of the taxonomy."""
    yield root
    for child in root.children:
        yield from iter_nodes(child)


@dataclass(frozen=True)
class ResearchQuestion:
    """One of the paper's six research questions."""

    number: int
    text: str
    section: str
    module: str
    experiment: str  # benchmark file reproducing it


RESEARCH_QUESTIONS: List[ResearchQuestion] = [
    ResearchQuestion(
        1,
        "How can LLMs generate descriptive textual information for entities in a KG?",
        "2.2 KG-to-Text Generation", "repro.kg2text",
        "benchmarks/test_bench_kg2text.py",
    ),
    ResearchQuestion(
        2,
        "How can we employ LLMs in ontology generation?",
        "2.1.1 Ontology Creation", "repro.construction.ontology",
        "benchmarks/test_bench_ontology.py",
    ),
    ResearchQuestion(
        3,
        "How can LLMs help in detecting inconsistencies within KGs?",
        "2.6.2 Inconsistency Detection", "repro.validation.inconsistency",
        "benchmarks/test_bench_inconsistency.py",
    ),
    ResearchQuestion(
        4,
        "How can LLMs improve the accuracy, consistency, and completeness of KGs "
        "through fact-checking?",
        "2.6.1 Fact Checking", "repro.validation.fact_checking",
        "benchmarks/test_bench_fact_checking.py",
    ),
    ResearchQuestion(
        5,
        "How can LLMs contribute to providing accurate answers for KG Question "
        "Answering?",
        "4.1 KG Question Answering", "repro.qa.multihop",
        "benchmarks/test_bench_multihop_qa.py",
    ),
    ResearchQuestion(
        6,
        "How can LLMs effectively generate queries from natural language texts? "
        "(Text to Sparql or Cypher)",
        "4.1.3 Query Generation from text", "repro.qa.text2sparql",
        "benchmarks/test_bench_text2sparql.py",
    ),
]
