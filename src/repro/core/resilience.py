"""Offline resilience primitives: retry, deadlines, breakers, fallbacks.

The cooperation architectures the survey reviews all sit in front of a
flaky component (a paid LLM API); what makes them production-viable is the
policy layer between pipeline and model. This module provides that layer
in the repo's deterministic, no-wall-clock style:

* :class:`RetryPolicy` — capped exponential backoff with seeded jitter.
  Delays are *simulated*: nothing sleeps; instead delays are charged
  against an optional :class:`Deadline`, so tests run instantly and two
  runs with the same seed compute identical backoff schedules.
* :class:`Deadline` — a simulated time budget; policies charge latencies
  and backoff delays to it and stop retrying once it is exhausted.
* :class:`CircuitBreaker` — count-based (no clock): opens after N
  consecutive failures, rejects calls for a fixed cooldown count, then
  half-opens a single probe.
* :class:`FallbackChain` — ordered alternatives; the first that succeeds
  wins, and using any step past the first marks the result degraded.

The module is intentionally independent of :mod:`repro.llm` — policies
classify exceptions by the types the caller passes (``retry_on``/
``catch``) and read ``retry_after``/``simulated_latency`` attributes
duck-typed, so the same primitives guard KG stores, retrievers, or any
other stage.
"""

from __future__ import annotations

import hashlib
import math
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple, Type


def _stable_unit(*parts: str) -> float:
    """Deterministic float in [0, 1) keyed by the parts."""
    digest = hashlib.blake2b("\x00".join(parts).encode("utf-8"),
                             digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2 ** 64


class ResilienceError(RuntimeError):
    """Base class for failures raised by the resilience layer itself."""


class DeadlineExceeded(ResilienceError):
    """The simulated time budget ran out."""


class CircuitOpenError(ResilienceError):
    """The breaker is open; the call was rejected without being attempted."""


class FallbackExhaustedError(ResilienceError):
    """Every step of a fallback chain failed.

    ``errors`` holds ``(step name, exception)`` for each failed step.
    """

    def __init__(self, message: str,
                 errors: Sequence[Tuple[str, BaseException]] = ()):
        super().__init__(message)
        self.errors = list(errors)


@dataclass
class Deadline:
    """A simulated time budget (seconds of pretend wall clock).

    Policies ``charge`` simulated latencies and backoff delays against it;
    nothing ever sleeps.
    """

    budget: float
    spent: float = 0.0

    @property
    def remaining(self) -> float:
        """Unspent budget (never negative)."""
        return max(0.0, self.budget - self.spent)

    @property
    def expired(self) -> bool:
        """Whether the budget is exhausted."""
        return self.spent >= self.budget

    def charge(self, seconds: float) -> None:
        """Consume ``seconds`` of simulated time.

        Negative and NaN charges are rejected outright: a policy bug must
        not silently *refund* budget (or poison every later comparison
        with NaN), because admission control sheds requests based on
        ``remaining``/``expired``.
        """
        if math.isnan(seconds):
            raise ValueError("cannot charge NaN time")
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        self.spent += seconds

    def check(self) -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if self.expired:
            raise DeadlineExceeded(
                f"simulated deadline exceeded ({self.spent:.2f}s "
                f"of {self.budget:.2f}s budget)")


@dataclass
class RetryOutcome:
    """What a retried call produced: a value or a final error, plus the
    attempt count and total simulated delay consumed."""

    value: Any
    error: Optional[BaseException]
    attempts: int
    simulated_delay: float

    @property
    def ok(self) -> bool:
        """Whether the call eventually succeeded."""
        return self.error is None


class RetryPolicy:
    """Deterministic exponential backoff with seeded jitter.

    ``delay_for(attempt, key)`` is a pure function of the policy seed, the
    caller-supplied key and the attempt number, so a rerun reproduces the
    identical backoff schedule. A rate-limited error's ``retry_after``
    hint (duck-typed) floors the computed delay; an error's
    ``simulated_latency`` is charged in addition to the backoff.
    """

    def __init__(self, max_attempts: int = 3, base_delay: float = 0.5,
                 multiplier: float = 2.0, max_delay: float = 30.0,
                 jitter: float = 0.25, seed: int = 0,
                 retry_on: Tuple[Type[BaseException], ...] = (Exception,)):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter
        self.seed = seed
        self.retry_on = retry_on

    def delay_for(self, attempt: int, key: str = "") -> float:
        """The simulated backoff before retry number ``attempt`` (0-based)."""
        raw = min(self.max_delay, self.base_delay * self.multiplier ** attempt)
        spread = 1.0 + self.jitter * (
            2.0 * _stable_unit(str(self.seed), key, str(attempt)) - 1.0)
        return raw * spread

    def run(self, fn: Callable[[], Any], key: str = "",
            deadline: Optional[Deadline] = None) -> RetryOutcome:
        """Call ``fn`` with retries; never raises for ``retry_on`` errors.

        Returns a :class:`RetryOutcome`; non-retryable exceptions propagate
        unchanged. Retrying stops early when the deadline expires.
        """
        total_delay = 0.0
        last: Optional[BaseException] = None
        attempts = 0
        for attempt in range(self.max_attempts):
            attempts = attempt + 1
            try:
                value = fn()
            except self.retry_on as exc:
                last = exc
                latency = float(getattr(exc, "simulated_latency", 0.0) or 0.0)
                if latency and deadline is not None:
                    deadline.charge(latency)
                if attempt + 1 >= self.max_attempts:
                    break
                delay = self.delay_for(attempt, key)
                retry_after = getattr(exc, "retry_after", None)
                if retry_after:
                    delay = max(delay, float(retry_after))
                total_delay += delay + latency
                if deadline is not None:
                    deadline.charge(delay)
                    if deadline.expired:
                        break
            else:
                return RetryOutcome(value, None, attempts, total_delay)
        return RetryOutcome(None, last, attempts, total_delay)

    def call(self, fn: Callable[[], Any], key: str = "",
             deadline: Optional[Deadline] = None) -> Any:
        """Like :meth:`run`, but returns the value and re-raises the final
        error when every attempt failed."""
        outcome = self.run(fn, key=key, deadline=deadline)
        if outcome.error is not None:
            raise outcome.error
        return outcome.value


class CircuitBreaker:
    """A count-based circuit breaker (no clock, fully deterministic).

    Closed → open after ``failure_threshold`` consecutive failures; while
    open the next ``cooldown`` calls are rejected with
    :class:`CircuitOpenError`; the call after that is the half-open probe —
    its success closes the circuit, its failure re-opens it.

    Half-open admits **exactly one** probe: the first ``allow()`` after the
    cooldown elapses wins the probe slot, and every other caller is
    rejected until that probe's outcome is recorded (``record_success``
    closes the circuit, ``record_failure`` re-opens it). Without the slot,
    every caller waiting out the cooldown would be waved through the
    moment it elapsed — a thundering herd straight back into a backend
    that one probe might have shown to be still down. Callers that take
    the probe slot must therefore report an outcome, as every caller in
    this repo (``call``, the pipeline stage machinery, the serving
    gateway) does.
    """

    def __init__(self, failure_threshold: int = 5, cooldown: int = 3,
                 name: str = ""):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.name = name
        self.state = "closed"
        self.consecutive_failures = 0
        self.trips = 0
        self.rejected = 0
        self._cooldown_left = 0
        self._probe_in_flight = False
        # Breakers are shared across pipelines — since the parallel
        # substrate, potentially across threads — so state transitions are
        # serialized.
        self._lock = threading.Lock()

    def allow(self) -> bool:
        """Whether the next call may proceed (advances the cooldown).

        At most one caller is admitted while half-open (the probe); the
        rest are rejected until the probe's outcome is recorded.
        """
        with self._lock:
            if self.state == "open":
                if self._cooldown_left > 0:
                    self._cooldown_left -= 1
                    self.rejected += 1
                    return False
                self.state = "half-open"
                self._probe_in_flight = True
                return True
            if self.state == "half-open":
                if self._probe_in_flight:
                    self.rejected += 1
                    return False
                self._probe_in_flight = True
            return True

    def record_success(self) -> None:
        """Note a successful call: closes the circuit.

        A success that lands while the circuit is *open* — a straggler
        admitted before a concurrent sharer tripped the breaker — does
        **not** close it: closing would cancel the cooldown the trip just
        imposed, waving the herd straight back in. The straggler's good
        news is recorded (failure streak reset) but the cooldown stands
        until the half-open probe confirms recovery.
        """
        with self._lock:
            self.consecutive_failures = 0
            if self.state == "open":
                return
            self.state = "closed"
            self._probe_in_flight = False

    def record_failure(self) -> bool:
        """Note a failed call; trips the breaker at the threshold (or
        immediately when the half-open probe fails).

        A failure that lands while the circuit is already *open* — e.g. a
        half-open probe whose outcome arrives after a concurrent sharer
        re-tripped the breaker — restores the **full** cooldown rather
        than leaving whatever partially drained count remained. Before
        this, a probe raising inside the half-open window could re-open
        the circuit with only the leftover cooldown, letting traffic back
        into a dead backend early.

        Returns whether *this* failure tripped the breaker — the only
        attribution that stays correct when several pipelines share one
        breaker concurrently (a caller diffing ``trips`` around its own
        run would absorb every other sharer's trips).
        """
        with self._lock:
            if self.state == "open":
                self._cooldown_left = self.cooldown
                self.consecutive_failures = 0
                return False
            self.consecutive_failures += 1
            if self.state == "half-open" or \
                    self.consecutive_failures >= self.failure_threshold:
                self._trip()
                return True
            return False

    def reset(self) -> None:
        """Administratively close the circuit and clear the cooldown.

        For callers that have *verified* the backend healthy out-of-band
        (e.g. the replication layer's anti-entropy pass after a partition
        heals) — ``record_success`` deliberately no longer closes an open
        circuit, so recovery flows that bypass the probe need an explicit
        reset.
        """
        with self._lock:
            self.state = "closed"
            self.consecutive_failures = 0
            self._cooldown_left = 0
            self._probe_in_flight = False

    def snapshot(self) -> dict:
        """A consistent point-in-time view for observability binding.

        Suitable for ``Observability.register_source`` (a zero-arg
        callable returning plain scalars); taken under the lock so the
        fields are mutually consistent. ``state`` stays available as the
        plain string attribute for direct comparison.
        """
        with self._lock:
            return {
                "name": self.name,
                "state": self.state,
                "consecutive_failures": self.consecutive_failures,
                "trips": self.trips,
                "rejected": self.rejected,
                "cooldown_left": self._cooldown_left,
                "probe_in_flight": self._probe_in_flight,
            }

    def _trip(self) -> None:
        self.state = "open"
        self.trips += 1
        self._cooldown_left = self.cooldown
        self.consecutive_failures = 0
        self._probe_in_flight = False

    def call(self, fn: Callable[[], Any]) -> Any:
        """Guard one call: reject when open, record the outcome otherwise."""
        if not self.allow():
            raise CircuitOpenError(
                f"circuit {self.name or 'breaker'} is open "
                f"({self._cooldown_left + 1} rejections left in cooldown)")
        try:
            value = fn()
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return value


@dataclass
class FallbackResult:
    """The outcome of a fallback chain: which step answered, with what."""

    value: Any
    step: str
    index: int
    errors: List[Tuple[str, BaseException]] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """True when anything but the primary step produced the value."""
        return self.index > 0


class FallbackChain:
    """Ordered alternatives tried until one succeeds.

    Steps are ``(name, fn)`` pairs; ``fn`` receives the arguments passed
    to :meth:`run`. Exceptions matching ``catch`` move on to the next
    step; anything else propagates. When every step fails,
    :class:`FallbackExhaustedError` carries the per-step errors.
    """

    def __init__(self, *steps: Tuple[str, Callable[..., Any]],
                 catch: Tuple[Type[BaseException], ...] = (Exception,)):
        if not steps:
            raise ValueError("a fallback chain needs at least one step")
        self.steps = list(steps)
        self.catch = catch

    def run(self, *args: Any, **kwargs: Any) -> FallbackResult:
        """Try each step in order; return the first success."""
        errors: List[Tuple[str, BaseException]] = []
        for index, (name, fn) in enumerate(self.steps):
            try:
                value = fn(*args, **kwargs)
            except self.catch as exc:
                errors.append((name, exc))
                continue
            return FallbackResult(value=value, step=name, index=index,
                                  errors=errors)
        raise FallbackExhaustedError(
            f"all {len(self.steps)} fallback steps failed "
            f"({', '.join(name for name, _ in errors)})", errors)
