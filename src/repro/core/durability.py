"""Checkpoint/resume for long-running jobs: the journal half of durability.

Where :mod:`repro.kg.wal` makes the *store* survive a crash, this module
makes the *work* survive one. Batch pipelines (NER/RE extraction, RAG and
GraphRAG QA, the eval harness) journal each completed unit of work to an
append-only JSONL file; a resumed run restores the journaled prefix and
continues from the first unfinished item, producing final output
**byte-identical** to an uninterrupted run.

Journal format — one JSON object per line:

* a ``meta`` record first (job name + the config needed to rebuild the
  run, which is how ``repro run --resume <journal>`` works without
  re-specifying flags);
* ``item`` records carrying one completed unit's value, either keyed
  (harness rows, atomic per line) or positional (batch pipelines);
* ``commit`` records marking a *chunk boundary* in positional mode,
  carrying the cumulative LLM fault-schedule cursor at that boundary.

Chunk-atomic resume
-------------------
Positional pipelines process fixed-size chunks whose internal LLM-call
order is deterministic but whose *count* may vary (a faulted batch call
falls back to per-prompt calls, consuming extra fault indices). Item lines
for an in-flight chunk can therefore be present without the chunk having
finished; :meth:`CheckpointManager.resume_prefix` down-rounds to the last
``commit`` record and the torn tail is truncated before the first new
append. Restoring the commit's ``llm_calls`` cursor with
:func:`fast_forward_faults` realigns the fault schedule, so the resumed
run injects exactly the faults the uninterrupted run would have.

Determinism contract: byte-identical resume holds whenever each prompt's
completion is a pure function of run config (the simulated LLM guarantees
this) — with fault injection, and with response caching, but not with both
at once *across* a resume (a resumed run's cold cache can re-issue a
pre-crash prompt and shift fault indices). The crash-injection suite
exercises both supported combinations.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.core.observability import resolve_obs

__all__ = [
    "CheckpointError", "CheckpointManager", "ResumeState",
    "fast_forward_faults", "fault_schedule_cursor", "read_meta",
]


class CheckpointError(ValueError):
    """Raised when a journal cannot be used (wrong job, malformed meta)."""


#: Shared JSON encoder for journal lines. ``json.dumps`` with keyword
#: options builds a fresh encoder per call; journaling sits on the batch
#: pipelines' hot path, so the encoder is constructed once. ``sort_keys``
#: keeps lines byte-stable regardless of dict construction order.
_ENCODER = json.JSONEncoder(sort_keys=True, separators=(",", ":"))


@dataclass
class ResumeState:
    """The restorable prefix of a positional (chunked) journal.

    ``values`` holds the journaled item values up to the last committed
    chunk boundary; ``llm_calls`` is the fault-schedule cursor recorded at
    that boundary (``None`` when the run carried no fault layer);
    ``extras`` collects the per-chunk ``extra`` payloads in order.
    """

    values: List[Any] = field(default_factory=list)
    llm_calls: Optional[int] = None
    extras: List[Any] = field(default_factory=list)
    chunks: int = 0

    def __len__(self) -> int:
        return len(self.values)


class CheckpointManager:
    """An append-only JSONL journal of completed work units.

    Two consumption styles share one manager:

    * **keyed** — :meth:`completed`/:meth:`restore`/:meth:`record` treat
      each line as atomic (the eval harness journals one row per job this
      way; safe from executor worker threads);
    * **positional** — :meth:`resume_prefix`/:meth:`record_chunk` journal
      chunk-atomically (batch NER/RE/RAG/GraphRAG), down-rounding any
      half-written chunk on resume.

    Loading tolerates a torn tail (a partial or undecodable final line —
    the crash-injection suite produces these deliberately); the damaged
    suffix is truncated before the first new append, never silently
    replayed.
    """

    def __init__(self, path: str, obs=None):
        self.path = path
        self.obs = resolve_obs(obs)
        self._lock = threading.Lock()
        self._handle = None
        self._records: List[Dict[str, Any]] = []
        self._keyed: Dict[str, Any] = {}
        self._good_offset = 0       # byte offset after the last parsable line
        self._commit_offset = 0     # byte offset after the last commit record
        self._items_at_commit = 0
        self._truncated_to: Optional[int] = None
        self.resume_skips = 0
        self._load()

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def _load(self) -> None:
        """Parse the journal's consistent prefix; note torn-tail offsets."""
        if not os.path.exists(self.path):
            return
        with open(self.path, "rb") as handle:
            data = handle.read()
        offset = 0
        items_seen = 0
        while offset < len(data):
            newline = data.find(b"\n", offset)
            if newline < 0:
                break  # unterminated final line: torn mid-write
            line = data[offset:newline]
            if line.strip():
                try:
                    record = json.loads(line.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    break  # corrupt line: everything after is suspect
                self._records.append(record)
                kind = record.get("type")
                if kind == "item":
                    if "key" in record:
                        self._keyed[record["key"]] = record["value"]
                    else:
                        items_seen += 1
                elif kind == "commit":
                    self._commit_offset = newline + 1
                    self._items_at_commit = items_seen
            offset = newline + 1
            self._good_offset = offset

    def _prepare_append(self, keyed: bool) -> None:
        """Truncate the torn tail once, before the first append.

        Keyed appends keep every fully parsed line; positional appends
        additionally drop item lines of the half-finished chunk (they will
        be recomputed and re-journaled by the resumed run).
        """
        if self._truncated_to is not None:
            return
        target = self._good_offset if keyed else self._commit_offset
        if not keyed and not any(r.get("type") == "commit" for r in self._records):
            # No chunk ever committed: keep only the meta prefix.
            target = self._meta_end_offset()
        if os.path.exists(self.path) and os.path.getsize(self.path) > target:
            with open(self.path, "r+b") as handle:
                handle.truncate(target)
        self._truncated_to = target

    def _meta_end_offset(self) -> int:
        """Byte offset just past the meta record (0 when absent)."""
        if not self._records or self._records[0].get("type") != "meta":
            return 0
        with open(self.path, "rb") as handle:
            data = handle.read()
        newline = data.find(b"\n")
        return newline + 1 if newline >= 0 else 0

    def _append(self, records: Iterable[Dict[str, Any]], keyed: bool) -> None:
        # One encode pass, one write, one flush per append — journaling
        # sits on the batch pipelines' hot path, budgeted at ≤10% overhead
        # (see benchmarks/test_bench_durability.py).
        encode = _ENCODER.encode
        payload = "".join([encode(record) + "\n" for record in records])
        with self._lock:
            self._prepare_append(keyed)
            if self._handle is None:
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(payload)
            self._handle.flush()

    def close(self) -> None:
        """Release the journal's append handle (reopened lazily on write)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    # ------------------------------------------------------------------
    # Meta
    # ------------------------------------------------------------------
    @property
    def meta(self) -> Optional[Dict[str, Any]]:
        """The journal's meta record, if one was written."""
        if self._records and self._records[0].get("type") == "meta":
            return self._records[0]
        return None

    def ensure_meta(self, job: str, config: Optional[Dict[str, Any]] = None
                    ) -> Dict[str, Any]:
        """Write the meta record on first use; verify it on resume.

        Raises :class:`CheckpointError` when the journal belongs to a
        different job — resuming the wrong journal must fail loudly, not
        corrupt two runs.
        """
        existing = self.meta
        if existing is not None:
            if existing.get("job") != job:
                raise CheckpointError(
                    f"journal {self.path!r} belongs to job "
                    f"{existing.get('job')!r}, not {job!r}")
            return existing
        if self._records:
            raise CheckpointError(
                f"journal {self.path!r} has records but no meta line")
        record = {"type": "meta", "job": job, "config": dict(config or {})}
        self._append([record], keyed=True)
        self._records.insert(0, record)
        return record

    # ------------------------------------------------------------------
    # Keyed mode (eval harness)
    # ------------------------------------------------------------------
    def completed(self, key: str) -> bool:
        """Whether a keyed unit already has a journaled value."""
        with self._lock:
            done = key in self._keyed
        if done:
            self.resume_skips += 1
            if self.obs.enabled:
                self.obs.count("checkpoint.resume_skips")
        return done

    def restore(self, key: str) -> Any:
        """The journaled value for ``key`` (KeyError when absent)."""
        with self._lock:
            return self._keyed[key]

    def record(self, key: str, value: Any) -> None:
        """Journal one keyed unit's value (atomic line, thread-safe)."""
        record = {"type": "item", "key": key, "value": value}
        self._append([record], keyed=True)
        with self._lock:
            self._records.append(record)
            self._keyed[key] = value
        if self.obs.enabled:
            self.obs.count("checkpoint.records")

    # ------------------------------------------------------------------
    # Positional mode (batch pipelines)
    # ------------------------------------------------------------------
    def resume_prefix(self) -> ResumeState:
        """The committed prefix: values, fault cursor, per-chunk extras."""
        state = ResumeState()
        seen = 0
        for record in self._records:
            kind = record.get("type")
            if kind == "item" and "key" not in record:
                # Only items inside committed chunks count; anything past
                # the last commit was mid-chunk when the run died.
                if seen < self._items_at_commit:
                    state.values.append(record["value"])
                seen += 1
            elif kind == "commit":
                state.chunks += 1
                state.llm_calls = record.get("llm_calls", state.llm_calls)
                if "extra" in record:
                    state.extras.append(record["extra"])
        if state.values:
            self.resume_skips += len(state.values)
            if self.obs.enabled:
                self.obs.count("checkpoint.resume_skips", len(state.values))
        return state

    def record_chunk(self, values: Iterable[Any],
                     llm_calls: Optional[int] = None,
                     extra: Any = None) -> None:
        """Journal one completed chunk: its items plus a commit marker.

        All lines flush together; a crash mid-write leaves item lines
        without the commit, which the next resume drops and recomputes.
        """
        records: List[Dict[str, Any]] = [
            {"type": "item", "value": value} for value in values]
        commit: Dict[str, Any] = {"type": "commit"}
        if llm_calls is not None:
            commit["llm_calls"] = llm_calls
        if extra is not None:
            commit["extra"] = extra
        records.append(commit)
        self._append(records, keyed=False)
        with self._lock:
            self._records.extend(records)
            self._items_at_commit += len(records) - 1
        if self.obs.enabled:
            self.obs.count("checkpoint.records", len(records) - 1)
            self.obs.count("checkpoint.commits")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Journal counters (registered as an observability pull source)."""
        with self._lock:
            keyed = len(self._keyed)
            commits = sum(1 for r in self._records if r.get("type") == "commit")
            items = sum(1 for r in self._records if r.get("type") == "item")
        return {"keyed_items": keyed, "items": items, "commits": commits,
                "resume_skips": self.resume_skips}


def read_meta(path: str) -> Dict[str, Any]:
    """Read just the meta record of a journal (for ``repro run --resume``)."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise CheckpointError(
                    f"journal {path!r}: malformed first record: {exc}") from exc
            if record.get("type") != "meta":
                raise CheckpointError(
                    f"journal {path!r} does not start with a meta record")
            return record
    raise CheckpointError(f"journal {path!r} is empty")


def fault_schedule_cursor(llm: Any) -> Optional[int]:
    """The fault layer's call cursor inside an LLM wrapper chain.

    Walks ``.inner`` links looking for the fault injector (identified by
    its ``fault_log`` field, the same structural check the observability
    binder uses). ``None`` when the chain carries no fault layer — resume
    then needs no schedule realignment.
    """
    layer, depth = llm, 0
    while layer is not None and depth < 8:
        fields = vars(layer) if hasattr(layer, "__dict__") else {}
        if "fault_log" in fields:
            return layer.fault_calls
        layer = fields.get("inner")
        depth += 1
    return None


def fast_forward_faults(llm: Any, calls: Optional[int]) -> bool:
    """Advance the fault layer's cursor to ``calls`` (a journaled value).

    Returns True when a fault layer was found and realigned. Faults are a
    pure function of (profile seed, call index, prompt), so setting the
    cursor to the crashed run's committed call count makes the resumed
    run's schedule continue exactly where the original would have.
    """
    if calls is None:
        return False
    layer, depth = llm, 0
    while layer is not None and depth < 8:
        fields = vars(layer) if hasattr(layer, "__dict__") else {}
        if "fault_log" in fields:
            layer.fault_calls = calls
            return True
        layer = fields.get("inner")
        depth += 1
    return False
