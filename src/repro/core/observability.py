"""Unified observability: a metrics registry, a tracer, and a no-op default.

Until this layer existed, the repo's runtime telemetry was scattered:
three incompatible ``cache_stats()`` shapes (the LLM cache, the hash
embedder, the KG read caches), ad-hoc ``fault_log``/``stats()`` counters on
the LLM stack, and wall-clock tuples inside ``Pipeline.execute``. The
EmpiRE-Compass dashboard line of work (PAPERS.md) argues LLM ⟷ KG systems
need *inspectable* runtime telemetry; this module supplies the substrate:

* :class:`MetricsRegistry` — labeled counters, gauges and histograms plus
  pull-based **sources** (a source is any zero-arg callable returning a
  mapping, e.g. an existing ``cache_stats``/``stats`` surface), so legacy
  counter surfaces flow through one registry without double bookkeeping;
* :class:`Tracer` — nested spans (pipeline → stage → LLM call → retry
  attempt) over an **injectable clock**. With :class:`FakeClock` a traced
  run is fully deterministic and byte-identical across processes, which is
  what makes traces testable and diffable;
* :class:`Observability` — the facade components accept via their ``obs=``
  knob, with JSONL export (spans + metrics in one file) consumed by the
  ``repro obs report`` CLI;
* :data:`NULL_OBS` — the zero-overhead no-op recorder every knob defaults
  to: disabled paths cost one attribute check (``obs.enabled``) or one
  no-op method call, never an allocation.

Cache-stats schema
------------------
:func:`cache_stats_dict` is the one canonical shape for every cache
surface: integer ``hits``/``misses``/``evictions``/``invalidations``/
``size``/``max_size`` plus float ``hit_rate``. Legacy keys that predate the
schema (e.g. the KG cache's ``labels_cached``) stay readable through
:class:`LegacyCacheStats`, which answers them with a
``DeprecationWarning`` instead of breaking existing callers.
"""

from __future__ import annotations

import json
import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Iterable, List, Mapping, Optional,
                    Tuple)

__all__ = [
    "CACHE_SCHEMA_KEYS", "Clock", "FakeClock", "LegacyCacheStats",
    "MetricsRegistry", "NULL_OBS", "NoopObservability", "Observability",
    "Span", "SystemClock", "Tracer", "cache_stats_dict", "load_jsonl",
    "percentile", "resolve_obs",
]


def percentile(values: Iterable[float], q: float) -> float:
    """The ``q``-th percentile (0–100) by linear interpolation.

    Deterministic and dependency-free — the serving layer's p50/p99
    summaries must be byte-identical across runs and machines, so no
    estimator with platform-dependent behaviour is acceptable. Returns
    0.0 for an empty input (a latency summary over zero requests).
    """
    data = sorted(values)
    if not data:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q!r}")
    if len(data) == 1:
        return data[0]
    rank = (q / 100.0) * (len(data) - 1)
    lower = int(rank)
    upper = min(lower + 1, len(data) - 1)
    fraction = rank - lower
    return data[lower] + (data[upper] - data[lower]) * fraction


# ---------------------------------------------------------------------------
# Clocks
# ---------------------------------------------------------------------------

class Clock:
    """Anything with a monotonic ``now() -> float`` (seconds)."""

    def now(self) -> float:  # pragma: no cover - interface
        """Current time in seconds (monotonic)."""
        raise NotImplementedError


class SystemClock(Clock):
    """The process monotonic clock (``time.perf_counter``)."""

    def now(self) -> float:
        """Read the monotonic wall clock."""
        return time.perf_counter()


class FakeClock(Clock):
    """A deterministic clock for byte-identical traced runs.

    Every ``now()`` reading advances time by ``tick`` (so consecutive
    readings are strictly increasing, like a real clock, but with values
    that are a pure function of the call count); ``advance`` models
    explicit simulated latency. Thread-safe: concurrent readers each get a
    distinct tick, so span durations stay positive whatever the
    interleaving — only the *assignment* of ticks to threads is
    scheduling-dependent, which is why determinism suites assert span
    *structure* under parallelism and exact timings only for sequential
    runs.
    """

    def __init__(self, start: float = 0.0, tick: float = 0.001):
        self._now = start
        self.tick = tick
        self._lock = threading.Lock()

    def now(self) -> float:
        """Read the clock (consumes one tick)."""
        with self._lock:
            self._now += self.tick
            return self._now

    def advance(self, seconds: float) -> None:
        """Move the clock forward without consuming a tick."""
        if seconds < 0:
            raise ValueError("cannot advance a clock backwards")
        with self._lock:
            self._now += seconds


# ---------------------------------------------------------------------------
# Canonical cache-stats schema
# ---------------------------------------------------------------------------

#: The one schema every ``cache_stats()`` surface returns.
CACHE_SCHEMA_KEYS = ("hits", "misses", "evictions", "invalidations",
                     "size", "max_size", "hit_rate")


class LegacyCacheStats(Dict[str, float]):
    """The canonical cache-stats dict plus deprecated legacy aliases.

    Compares/iterates as a plain dict over the canonical schema; reading a
    legacy key (``stats["labels_cached"]``) still works but emits a
    ``DeprecationWarning`` naming the replacement surface.
    """

    def __init__(self, data: Mapping[str, float],
                 legacy: Optional[Mapping[str, float]] = None):
        super().__init__(data)
        self._legacy = dict(legacy or {})

    def _warn(self, key: str) -> None:
        warnings.warn(
            f"cache_stats() key {key!r} is deprecated; use the canonical "
            f"schema keys {CACHE_SCHEMA_KEYS} (see repro.core.observability)",
            DeprecationWarning, stacklevel=3)

    def __missing__(self, key: str) -> float:
        if key in self._legacy:
            self._warn(key)
            return self._legacy[key]
        raise KeyError(key)

    def __contains__(self, key: object) -> bool:
        return super().__contains__(key) or key in self._legacy

    def get(self, key: str, default: Any = None) -> Any:
        """dict.get covering both canonical and (deprecated) legacy keys."""
        if super().__contains__(key):
            return self[key]
        if key in self._legacy:
            self._warn(key)
            return self._legacy[key]
        return default


def cache_stats_dict(*, hits: int, misses: int, evictions: int = 0,
                     invalidations: int = 0, size: int = 0,
                     max_size: int = 0,
                     legacy: Optional[Mapping[str, float]] = None
                     ) -> LegacyCacheStats:
    """Build a canonical cache-stats mapping (int counts, float hit rate).

    ``max_size=0`` means "unbounded". ``legacy`` carries deprecated
    pre-schema keys, answered with a warning by :class:`LegacyCacheStats`.
    """
    lookups = hits + misses
    return LegacyCacheStats({
        "hits": int(hits),
        "misses": int(misses),
        "evictions": int(evictions),
        "invalidations": int(invalidations),
        "size": int(size),
        "max_size": int(max_size),
        "hit_rate": hits / lookups if lookups else 0.0,
    }, legacy=legacy)


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------

_LabelKey = Tuple[Tuple[str, Any], ...]


def _label_key(labels: Mapping[str, Any]) -> _LabelKey:
    return tuple(sorted(labels.items()))


class MetricsRegistry:
    """Thread-safe labeled counters, gauges, histograms and pull sources.

    Each series is identified by ``(name, sorted labels)``. Histograms keep
    count/sum/min/max — enough for latency summaries without binning
    decisions. **Sources** are zero-arg callables returning mappings; they
    are pulled lazily at :meth:`snapshot` time, which is how the legacy
    ``cache_stats()``/``stats()`` surfaces flow through the registry
    without every cache pushing on its own hot path.
    """

    #: Per-series bound on retained raw observations (see :meth:`observe`).
    MAX_SAMPLES = 65536

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, _LabelKey], float] = {}
        self._gauges: Dict[Tuple[str, _LabelKey], float] = {}
        self._histograms: Dict[Tuple[str, _LabelKey], Dict[str, float]] = {}
        self._samples: Dict[Tuple[str, _LabelKey], List[float]] = {}
        self._sources: Dict[str, Callable[[], Mapping[str, Any]]] = {}

    # -- write paths ---------------------------------------------------
    def inc(self, name: str, value: float = 1, **labels: Any) -> None:
        """Add ``value`` to a (labeled) counter."""
        key = (name, _label_key(labels))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set a (labeled) gauge to its latest value."""
        with self._lock:
            self._gauges[(name, _label_key(labels))] = value

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record one observation into a (labeled) histogram.

        Besides the count/sum/min/max summary, the first
        :data:`MAX_SAMPLES` raw observations per series are retained so
        :meth:`histogram_quantiles` can answer p50/p99 exactly — the
        latency summaries the serving layer gates on. The bound keeps a
        runaway series from growing without limit; once it is hit, the
        summary keeps updating but quantiles reflect the retained prefix.
        Samples never appear in :meth:`snapshot` (exports stay compact).
        """
        key = (name, _label_key(labels))
        with self._lock:
            series = self._histograms.get(key)
            if series is None:
                self._histograms[key] = {"count": 1, "sum": value,
                                         "min": value, "max": value}
                self._samples[key] = [value]
            else:
                series["count"] += 1
                series["sum"] += value
                series["min"] = min(series["min"], value)
                series["max"] = max(series["max"], value)
                samples = self._samples[key]
                if len(samples) < self.MAX_SAMPLES:
                    samples.append(value)

    def register_source(self, name: str,
                        source: Callable[[], Mapping[str, Any]]) -> None:
        """Register a pull source (e.g. a ``cache_stats`` bound method).

        Re-registering a name replaces the source — rebinding a component
        is idempotent.
        """
        with self._lock:
            self._sources[name] = source

    # -- read paths ----------------------------------------------------
    def counter_value(self, name: str, **labels: Any) -> float:
        """Current value of one counter series (0 when never incremented)."""
        with self._lock:
            return self._counters.get((name, _label_key(labels)), 0)

    def counter_total(self, name: str) -> float:
        """Sum of a counter across all of its label series."""
        with self._lock:
            return sum(v for (n, _), v in self._counters.items() if n == name)

    def histogram_stats(self, name: str, **labels: Any) -> Dict[str, float]:
        """count/sum/min/max of one histogram series (zeros when empty)."""
        with self._lock:
            series = self._histograms.get((name, _label_key(labels)))
            return dict(series) if series else {"count": 0, "sum": 0.0,
                                                "min": 0.0, "max": 0.0}

    def histogram_quantiles(self, name: str,
                            quantiles: Iterable[float] = (50.0, 99.0),
                            **labels: Any) -> Dict[str, float]:
        """Exact percentiles over one series' retained samples.

        Returns ``{"p50": ..., "p99": ...}``-style keys (``p99.9`` for
        fractional quantiles); zeros when the series is empty.
        """
        with self._lock:
            samples = list(self._samples.get((name, _label_key(labels)), ()))
        out: Dict[str, float] = {}
        for q in quantiles:
            key = f"p{q:g}"
            out[key] = percentile(samples, q)
        return out

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-able snapshot: all series plus freshly pulled sources."""
        with self._lock:
            counters = [
                {"name": name, "labels": dict(labels), "value": value}
                for (name, labels), value in sorted(
                    self._counters.items(), key=lambda kv: repr(kv[0]))]
            gauges = [
                {"name": name, "labels": dict(labels), "value": value}
                for (name, labels), value in sorted(
                    self._gauges.items(), key=lambda kv: repr(kv[0]))]
            histograms = [
                {"name": name, "labels": dict(labels), **series}
                for (name, labels), series in sorted(
                    self._histograms.items(), key=lambda kv: repr(kv[0]))]
            sources = list(self._sources.items())
        pulled: Dict[str, Dict[str, Any]] = {}
        for name, source in sources:  # pulled outside the lock: sources
            try:                      # may take their own locks
                pulled[name] = {k: v for k, v in dict(source()).items()
                                if isinstance(v, (int, float, str, bool))}
            except Exception as exc:  # a dead source must not kill a report
                pulled[name] = {"error": repr(exc)}
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms, "sources": pulled}


# ---------------------------------------------------------------------------
# Tracing
# ---------------------------------------------------------------------------

@dataclass(eq=False)
class Span:
    """One timed operation, possibly nested under a parent span."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    end: Optional[float] = None
    attributes: Dict[str, Any] = field(default_factory=dict)

    @property
    def elapsed(self) -> float:
        """Span duration (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0


class _SpanHandle:
    """Context-manager wrapper so ``with tracer.span(...) as span:`` works."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None:
            self.span.attributes.setdefault("error", repr(exc))
        self._tracer.end(self.span)
        return False


class Tracer:
    """Nested spans over an injectable clock.

    Spans open on the current thread nest under that thread's innermost
    open span; fan-out code records the coordinator's span before
    dispatching and passes it as the explicit ``parent`` so worker-thread
    spans attach to the right subtree. Span ids are a shared counter, so
    sequential runs number spans deterministically.
    """

    def __init__(self, clock: Optional[Clock] = None):
        self.clock = clock or SystemClock()
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._next_id = 1
        self._local = threading.local()

    # -- span lifecycle ------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def start(self, name: str, parent: Optional[Span] = None,
              **attributes: Any) -> Span:
        """Open a span (nested under ``parent`` or this thread's current)."""
        if parent is None:
            parent = self.current()
        with self._lock:
            span = Span(span_id=self._next_id,
                        parent_id=parent.span_id if parent else None,
                        name=name, start=self.clock.now(),
                        attributes=dict(attributes))
            self._next_id += 1
            self._spans.append(span)
        self._stack().append(span)
        return span

    def end(self, span: Optional[Span], **attributes: Any) -> None:
        """Close a span (idempotent; ``None`` is accepted for no-op flows)."""
        if span is None or span.end is not None:
            return
        span.attributes.update(attributes)
        span.end = self.clock.now()
        stack = self._stack()
        for i, open_span in enumerate(stack):
            if open_span is span:
                del stack[i:]
                break

    def span(self, name: str, parent: Optional[Span] = None,
             **attributes: Any) -> _SpanHandle:
        """``with tracer.span("stage:x") as span:`` convenience."""
        return _SpanHandle(self, self.start(name, parent=parent, **attributes))

    # -- read paths ----------------------------------------------------
    def spans(self) -> List[Span]:
        """All spans recorded so far (open ones included), in start order."""
        with self._lock:
            return list(self._spans)

    def tree(self) -> List[Dict[str, Any]]:
        """The nested span forest as JSON-able dicts.

        Children are sorted by ``(name, attributes)`` — not by timestamp or
        id — so the *shape* of a traced parallel run is stable across
        scheduling interleavings.
        """
        spans = self.spans()
        children: Dict[Optional[int], List[Span]] = {}
        for span in spans:
            children.setdefault(span.parent_id, []).append(span)

        def build(span: Span) -> Dict[str, Any]:
            kids = sorted(children.get(span.span_id, []),
                          key=lambda s: (s.name, repr(sorted(
                              s.attributes.items())), s.span_id))
            return {"name": span.name, "attributes": dict(span.attributes),
                    "elapsed": span.elapsed,
                    "children": [build(k) for k in kids]}

        roots = sorted(children.get(None, []),
                       key=lambda s: (s.start, s.span_id))
        return [build(root) for root in roots]


# ---------------------------------------------------------------------------
# The facade
# ---------------------------------------------------------------------------

class Observability:
    """Metrics + tracing behind one handle — the live ``obs=`` object.

    One instance is shared by every component of a run: pipelines open
    spans on its tracer, executors record queue/run timings into its
    registry, and the legacy counter surfaces (``cache_stats``/``stats``/
    fault logs) are *bound* as pull sources so a single
    :meth:`export_jsonl` captures the whole system's state.
    """

    enabled = True

    def __init__(self, clock: Optional[Clock] = None):
        self.clock = clock or SystemClock()
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(self.clock)
        self._worker_lock = threading.Lock()
        self._worker_ids: Dict[int, str] = {}

    # -- recording shortcuts -------------------------------------------
    def span(self, name: str, parent: Optional[Span] = None,
             **attributes: Any) -> _SpanHandle:
        """Open a span as a context manager (see :meth:`Tracer.span`)."""
        return self.tracer.span(name, parent=parent, **attributes)

    def start_span(self, name: str, parent: Optional[Span] = None,
                   **attributes: Any) -> Span:
        """Open a span explicitly (see :meth:`Tracer.start`)."""
        return self.tracer.start(name, parent=parent, **attributes)

    def end_span(self, span: Optional[Span], **attributes: Any) -> None:
        """Close a span opened with :meth:`start_span`."""
        self.tracer.end(span, **attributes)

    def count(self, name: str, value: float = 1, **labels: Any) -> None:
        """Increment a labeled counter."""
        self.metrics.inc(name, value, **labels)

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set a labeled gauge."""
        self.metrics.gauge(name, value, **labels)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record one observation into a labeled histogram."""
        self.metrics.observe(name, value, **labels)

    def register_source(self, name: str,
                        source: Callable[[], Mapping[str, Any]]) -> None:
        """Register a pull source (see :meth:`MetricsRegistry.register_source`)."""
        self.metrics.register_source(name, source)

    def worker_label(self) -> str:
        """A stable small label for the calling thread (``main``/``w0``…).

        Labels are assigned in first-use order per facade, so utilization
        series stay readable however the pool names its threads.
        """
        ident = threading.get_ident()
        with self._worker_lock:
            label = self._worker_ids.get(ident)
            if label is None:
                if threading.current_thread() is threading.main_thread():
                    label = "main"
                else:
                    label = f"w{sum(1 for v in self._worker_ids.values() if v != 'main')}"
                self._worker_ids[ident] = label
            return label

    # -- binding legacy surfaces ---------------------------------------
    def bind_llm(self, llm: Any, name: str = "llm") -> None:
        """Register every layer of an LLM wrapper chain as pull sources.

        Walks ``.inner`` links: caching layers contribute a
        ``{name}.cache`` source, fault injectors a ``{name}.faults``
        source, and the base simulated model a ``{name}.model`` source.
        Each layer also gets ``layer.obs = self`` so its push-side
        instrumentation (batch sizes, fault kinds) lands here. Idempotent.
        """
        layer, depth = llm, 0
        while layer is not None and depth < 8:
            fields = vars(layer) if hasattr(layer, "__dict__") else {}
            if "fault_log" in fields:
                self.register_source(
                    f"{name}.faults",
                    lambda lyr=layer: {
                        "calls": lyr.fault_calls,
                        "injected": lyr.faults_injected})
            elif "_cache" in fields and hasattr(type(layer), "cache_stats"):
                self.register_source(f"{name}.cache", layer.cache_stats)
            if "memory" in fields and hasattr(type(layer), "usage"):
                self.register_source(
                    f"{name}.model",
                    lambda lyr=layer: {**lyr.usage,
                                       "batch_dedup_hits": lyr.batch_dedup_hits})
            try:
                layer.obs = self
            except AttributeError:  # pragma: no cover - frozen wrappers
                pass
            layer = fields.get("inner")
            depth += 1

    def bind_kg(self, kg: Any, name: str = "kg") -> None:
        """Register a knowledge graph's caches and store as pull sources."""
        self.register_source(f"{name}.cache", kg.cache_stats)
        self.register_source(f"{name}.store", kg.stats)

    def bind_cache(self, name: str, cache: Any) -> None:
        """Register any object with a ``cache_stats()`` surface."""
        self.register_source(name, cache.cache_stats)

    def bind_index(self, name: str, index: Any) -> None:
        """Register a vector index's ``stats()`` surface."""
        self.register_source(name, index.stats)

    # -- export ---------------------------------------------------------
    def export_records(self) -> List[Dict[str, Any]]:
        """The run's spans + metrics as a flat list of JSON-able records."""
        records: List[Dict[str, Any]] = [{"type": "meta", "version": 1}]
        for span in self.tracer.spans():
            records.append({
                "type": "span", "span_id": span.span_id,
                "parent_id": span.parent_id, "name": span.name,
                "start": span.start, "end": span.end,
                "elapsed": span.elapsed, "attributes": span.attributes,
            })
        snapshot = self.metrics.snapshot()
        for counter in snapshot["counters"]:
            records.append({"type": "counter", **counter})
        for gauge in snapshot["gauges"]:
            records.append({"type": "gauge", **gauge})
        for histogram in snapshot["histograms"]:
            records.append({"type": "histogram", **histogram})
        for source, values in snapshot["sources"].items():
            for key, value in values.items():
                records.append({"type": "source", "source": source,
                                "key": key, "value": value})
        return records

    def export_jsonl(self, path: str) -> int:
        """Write the full run record to ``path`` (one JSON object per
        line); returns the number of records written."""
        records = self.export_records()
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True,
                                        default=repr) + "\n")
        return len(records)


def load_jsonl(path: str) -> List[Dict[str, Any]]:
    """Read a JSONL export back into records (blank lines skipped).

    A line that is not valid JSON — the usual symptom of a truncated or
    torn export — raises :class:`ValueError` naming the file and line
    number, so CLI consumers can degrade with a clear message instead of
    a bare traceback.
    """
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: invalid JSONL record "
                    f"(truncated or corrupt trace?): {exc}") from exc
    return records


# ---------------------------------------------------------------------------
# The zero-overhead default
# ---------------------------------------------------------------------------

class _NoopSpanHandle:
    """A reusable do-nothing span context manager."""

    __slots__ = ()
    span = None

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_SPAN = _NoopSpanHandle()


class NoopObservability:
    """The disabled recorder: every recording call is a cheap no-op.

    ``obs.enabled`` is the hot-path guard — instrumented loops check it
    once and skip per-item bookkeeping entirely. The clock is still the
    real system clock so un-traced pipelines keep their wall-clock stage
    timings (pre-observability behaviour, byte-identical reports).
    """

    enabled = False
    metrics = None
    tracer = None

    def __init__(self) -> None:
        self.clock = SystemClock()

    def span(self, name: str, parent: Optional[Span] = None,
             **attributes: Any) -> _NoopSpanHandle:
        """No-op: returns the shared do-nothing context manager."""
        return _NOOP_SPAN

    def start_span(self, name: str, parent: Optional[Span] = None,
                   **attributes: Any) -> None:
        """No-op: returns ``None`` (accepted by :meth:`end_span`)."""
        return None

    def end_span(self, span: Optional[Span], **attributes: Any) -> None:
        """No-op."""
        return None

    def count(self, name: str, value: float = 1, **labels: Any) -> None:
        """No-op."""
        return None

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        """No-op."""
        return None

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """No-op."""
        return None

    def register_source(self, name: str, source: Any) -> None:
        """No-op."""
        return None

    def worker_label(self) -> str:
        """Always ``"main"`` — no worker bookkeeping when disabled."""
        return "main"

    def bind_llm(self, llm: Any, name: str = "llm") -> None:
        """No-op."""
        return None

    def bind_kg(self, kg: Any, name: str = "kg") -> None:
        """No-op."""
        return None

    def bind_cache(self, name: str, cache: Any) -> None:
        """No-op."""
        return None

    def bind_index(self, name: str, index: Any) -> None:
        """No-op."""
        return None


#: The shared disabled recorder every ``obs=`` knob defaults to.
NULL_OBS = NoopObservability()


def resolve_obs(obs: Any) -> Any:
    """Resolve a consumer-facing ``obs`` knob.

    ``None``/``False`` → the shared no-op recorder; ``True`` → a fresh
    :class:`Observability` on the system clock; an existing
    :class:`Observability`/:class:`NoopObservability` passes through (the
    sharing case: one facade observing a whole multi-component run).
    """
    if obs is None or obs is False:
        return NULL_OBS
    if obs is True:
        return Observability()
    return obs
