"""Composable pipelines chaining KG and LLM components.

The cooperation-style systems the survey reviews — RAG's
indexing→retrieval→generation, RoG's planning→retrieval→reasoning,
KG-GPT's segmentation→retrieval→inference — are all linear pipelines over a
shared mutable context. This module gives them one explicit, inspectable
abstraction with per-stage tracing, and (since the resilience layer) a
per-stage **error policy**: any stage can be retried with a deterministic
backoff schedule, guarded by a circuit breaker, replaced by a fallback, or
skipped, and every run yields a :class:`PipelineReport` recording attempts,
breaker trips and whether the answer is degraded.

Failure contract: a stage's trace entry is recorded *even when the stage
raises* (with the error kept on the report), and on abort the partially
executed context is attached to the exception as ``pipeline_context`` so
callers can inspect how far the run got.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Type

from repro.core.observability import resolve_obs
from repro.core.resilience import CircuitBreaker, CircuitOpenError, RetryPolicy

#: Stage dispositions after an error (and exhausted retries).
ERROR_ACTIONS = ("abort", "retry", "fallback", "skip")


@dataclass
class StagePolicy:
    """How one stage behaves when it raises.

    ``on_error`` is the terminal disposition once retries (if any) are
    exhausted: ``abort`` re-raises, ``fallback`` runs the fallback callable,
    ``skip`` marks the stage skipped and continues, and ``retry`` means
    "retry then abort" (a retry policy is implied). Only exceptions matching
    ``catch`` are governed by the policy — anything else always aborts.
    """

    on_error: str = "abort"
    retry: Optional[RetryPolicy] = None
    fallback: Optional[Callable[["PipelineContext"], None]] = None
    breaker: Optional[CircuitBreaker] = None
    catch: Tuple[Type[BaseException], ...] = (Exception,)

    def __post_init__(self) -> None:
        if self.on_error not in ERROR_ACTIONS:
            raise ValueError(
                f"on_error must be one of {ERROR_ACTIONS}, got {self.on_error!r}")
        if self.on_error == "retry" and self.retry is None:
            self.retry = RetryPolicy()
        if self.on_error == "fallback" and self.fallback is None:
            raise ValueError("on_error='fallback' requires a fallback callable")


@dataclass
class StageReport:
    """One stage's outcome within a pipeline run."""

    name: str
    status: str                 # ok | retried | fell_back | skipped | failed
    attempts: int
    elapsed: float
    error: Optional[str] = None

    def to_dict(self) -> List[Any]:
        """JSON-able form (checkpoint journals persist reports this way).

        A positional row, not a mapping — journals serialize thousands of
        these per run, and repeating five field names per stage roughly
        doubles both the encode time and the journal size.
        """
        return [self.name, self.status, self.attempts, self.elapsed,
                self.error]

    @classmethod
    def from_dict(cls, data: List[Any]) -> "StageReport":
        """Rebuild a report from :meth:`to_dict` output."""
        name, status, attempts, elapsed, error = data
        return cls(name=name, status=status, attempts=attempts,
                   elapsed=elapsed, error=error)


@dataclass
class PipelineReport:
    """Run-level accounting: per-stage outcomes, attempts, trips, degradation."""

    pipeline: str
    stages: List[StageReport] = field(default_factory=list)
    degraded: bool = False
    trips: int = 0
    notes: List[str] = field(default_factory=list)

    @property
    def attempts(self) -> int:
        """Total stage attempts across the run (retries included)."""
        return sum(stage.attempts for stage in self.stages)

    @property
    def errors(self) -> List[Tuple[str, str]]:
        """``(stage name, error)`` for every stage that raised."""
        return [(s.name, s.error) for s in self.stages if s.error is not None]

    def stage(self, name: str) -> Optional[StageReport]:
        """The report for a named stage, if it ran."""
        for report in self.stages:
            if report.name == name:
                return report
        return None

    def to_dict(self) -> List[Any]:
        """JSON-able form that round-trips through :meth:`from_dict`.

        Checkpoint journals persist per-item reports with this, so a
        resumed run can emit traces byte-identical to an uninterrupted
        one. Positional (like :meth:`StageReport.to_dict`) to keep the
        hot journaling path cheap.
        """
        return [self.pipeline, [s.to_dict() for s in self.stages],
                self.degraded, self.trips, list(self.notes)]

    @classmethod
    def from_dict(cls, data: List[Any]) -> "PipelineReport":
        """Rebuild a report from :meth:`to_dict` output."""
        pipeline, stages, degraded, trips, notes = data
        return cls(pipeline=pipeline,
                   stages=[StageReport.from_dict(s) for s in stages],
                   degraded=degraded, trips=trips, notes=list(notes))


@dataclass
class PipelineContext:
    """The blackboard passed through a pipeline run."""

    data: Dict[str, Any] = field(default_factory=dict)
    trace: List[Tuple[str, float]] = field(default_factory=list)
    report: Optional[PipelineReport] = None

    def __getitem__(self, key: str) -> Any:
        return self.data[key]

    def __setitem__(self, key: str, value: Any) -> None:
        self.data[key] = value

    def get(self, key: str, default: Any = None) -> Any:
        """dict-style access with a default."""
        return self.data.get(key, default)

    def mark_degraded(self, note: str = "") -> None:
        """Flag this run as degraded (a stage substituted a weaker path)."""
        self.data["degraded"] = True
        if self.report is not None:
            self.report.degraded = True
            if note:
                self.report.notes.append(note)


@dataclass
class Component:
    """A named pipeline stage wrapping a ``context -> None`` callable."""

    name: str
    run: Callable[[PipelineContext], None]
    policy: StagePolicy = field(default_factory=StagePolicy)


class Pipeline:
    """A linear sequence of components with timing traces and error policies.

    ``obs`` attaches an :class:`~repro.core.observability.Observability`
    recorder: stage timings (the ``context.trace`` tuples and
    ``StageReport.elapsed``) are read off its injectable clock — with a
    ``FakeClock`` a traced run's timings are deterministic — and every run
    opens a ``pipeline:<name>`` span with one ``stage:<name>`` child per
    stage. The default is the shared no-op recorder on the system clock,
    which reproduces the pre-observability behaviour exactly.
    """

    def __init__(self, name: str, components: Optional[Sequence[Component]] = None,
                 obs=None):
        self.name = name
        self.components: List[Component] = list(components or [])
        self.obs = resolve_obs(obs)

    def add(self, name: str, run: Callable[[PipelineContext], None],
            on_error: str = "abort", retry: Optional[RetryPolicy] = None,
            fallback: Optional[Callable[[PipelineContext], None]] = None,
            breaker: Optional[CircuitBreaker] = None,
            catch: Tuple[Type[BaseException], ...] = (Exception,)) -> "Pipeline":
        """Append a stage with its error policy; returns self for chaining."""
        policy = StagePolicy(on_error=on_error, retry=retry, fallback=fallback,
                             breaker=breaker, catch=catch)
        self.components.append(Component(name, run, policy))
        return self

    def execute(self, **initial: Any) -> PipelineContext:
        """Run all stages over a fresh context seeded with ``initial``.

        The returned context carries a :class:`PipelineReport` under
        ``context.report``. When a stage aborts the run, its trace entry
        and report are still recorded and the partial context is attached
        to the raised exception as ``pipeline_context``.
        """
        context = PipelineContext(data=dict(initial))
        report = PipelineReport(pipeline=self.name)
        context.report = report
        obs = self.obs
        clock = obs.clock
        run_span = obs.start_span(f"pipeline:{self.name}")
        try:
            for component in self.components:
                policy = component.policy
                stage_span = obs.start_span(f"stage:{component.name}",
                                            pipeline=self.name)
                started = clock.now()
                status = "ok"
                attempts = 0
                error: Optional[BaseException] = None
                try:
                    if policy.breaker is not None and not policy.breaker.allow():
                        raise CircuitOpenError(
                            f"stage {component.name!r}: circuit open")
                    if policy.retry is not None:
                        outcome = policy.retry.run(
                            lambda: component.run(context), key=component.name)
                        attempts = outcome.attempts
                        if outcome.error is not None:
                            raise outcome.error
                        if attempts > 1:
                            status = "retried"
                    else:
                        attempts = 1
                        component.run(context)
                except BaseException as exc:  # noqa: BLE001 - classified below
                    error = exc
                finally:
                    elapsed = clock.now() - started
                    # The failure contract: the in-flight stage's entry lands
                    # in the trace whether or not it raised.
                    context.trace.append((component.name, elapsed))
                if policy.breaker is not None and \
                        not isinstance(error, CircuitOpenError):
                    if error is None:
                        policy.breaker.record_success()
                    elif policy.breaker.record_failure():
                        # Attribute the trip to the failure that caused it —
                        # *this* stage's — rather than diffing the shared
                        # breaker's total around the run, which would absorb
                        # trips other pipelines caused concurrently.
                        report.trips += 1
                        obs.count("pipeline.breaker_trips",
                                  pipeline=self.name, stage=component.name)
                if error is None:
                    obs.end_span(stage_span, status=status)
                    obs.count("pipeline.stages", pipeline=self.name,
                              stage=component.name, status=status)
                    report.stages.append(
                        StageReport(component.name, status, attempts, elapsed))
                    continue
                governed = isinstance(error, policy.catch) or \
                    isinstance(error, CircuitOpenError)
                action = policy.on_error if governed else "abort"
                if action == "retry":       # retries already exhausted above
                    action = "abort"
                if action == "fallback":
                    try:
                        policy.fallback(context)  # type: ignore[misc]
                    except policy.catch as fallback_error:
                        report.notes.append(
                            f"{component.name}: fallback failed "
                            f"({fallback_error!r})")
                        action = "abort"
                        error = fallback_error
                    else:
                        obs.end_span(stage_span, status="fell_back",
                                     error=repr(error))
                        obs.count("pipeline.stages", pipeline=self.name,
                                  stage=component.name, status="fell_back")
                        report.stages.append(StageReport(
                            component.name, "fell_back", max(attempts, 1),
                            elapsed, error=repr(error)))
                        context.mark_degraded(
                            f"{component.name}: used fallback after {error!r}")
                        continue
                if action == "skip":
                    obs.end_span(stage_span, status="skipped",
                                 error=repr(error))
                    obs.count("pipeline.stages", pipeline=self.name,
                              stage=component.name, status="skipped")
                    report.stages.append(StageReport(
                        component.name, "skipped", max(attempts, 1), elapsed,
                        error=repr(error)))
                    context.mark_degraded(
                        f"{component.name}: skipped after {error!r}")
                    continue
                # abort: record, expose the partial context, re-raise.
                obs.end_span(stage_span, status="failed", error=repr(error))
                obs.count("pipeline.stages", pipeline=self.name,
                          stage=component.name, status="failed")
                report.stages.append(StageReport(
                    component.name, "failed", max(attempts, 1), elapsed,
                    error=repr(error)))
                error.pipeline_context = context  # type: ignore[attr-defined]
                raise error
        except BaseException as exc:
            obs.end_span(run_span, degraded=report.degraded,
                         error=repr(exc))
            raise
        obs.end_span(run_span, degraded=report.degraded)
        return context

    def stage_names(self) -> List[str]:
        """The ordered stage names (used in docs and tests)."""
        return [c.name for c in self.components]
