"""Composable pipelines chaining KG and LLM components.

The cooperation-style systems the survey reviews — RAG's
indexing→retrieval→generation, RoG's planning→retrieval→reasoning,
KG-GPT's segmentation→retrieval→inference — are all linear pipelines over a
shared mutable context. This module gives them one explicit, inspectable
abstraction with per-stage tracing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple


@dataclass
class PipelineContext:
    """The blackboard passed through a pipeline run."""

    data: Dict[str, Any] = field(default_factory=dict)
    trace: List[Tuple[str, float]] = field(default_factory=list)

    def __getitem__(self, key: str) -> Any:
        return self.data[key]

    def __setitem__(self, key: str, value: Any) -> None:
        self.data[key] = value

    def get(self, key: str, default: Any = None) -> Any:
        """dict-style access with a default."""
        return self.data.get(key, default)


@dataclass
class Component:
    """A named pipeline stage wrapping a ``context -> None`` callable."""

    name: str
    run: Callable[[PipelineContext], None]


class Pipeline:
    """A linear sequence of components with timing traces."""

    def __init__(self, name: str, components: Optional[Sequence[Component]] = None):
        self.name = name
        self.components: List[Component] = list(components or [])

    def add(self, name: str, run: Callable[[PipelineContext], None]) -> "Pipeline":
        """Append a stage; returns self for chaining."""
        self.components.append(Component(name, run))
        return self

    def execute(self, **initial: Any) -> PipelineContext:
        """Run all stages over a fresh context seeded with ``initial``."""
        context = PipelineContext(data=dict(initial))
        for component in self.components:
            started = time.perf_counter()
            component.run(context)
            context.trace.append((component.name, time.perf_counter() - started))
        return context

    def stage_names(self) -> List[str]:
        """The ordered stage names (used in docs and tests)."""
        return [c.name for c in self.components]
