"""A deterministic parallel executor for fan-out-shaped pipeline work.

Every throughput-shaped workload in this repo — per-sentence extraction,
per-question RAG, per-hop frontier expansion, per-system eval runs — is an
ordered list of independent items. This module supplies the one fan-out
primitive they all share, with two guarantees the ad-hoc loops it replaces
never had to state:

* **Determinism.** Results are collected *in input order* regardless of
  worker count or scheduling interleavings, and error handling is resolved
  by item index (the lowest-index failure wins an abort), so a run at
  ``max_workers=4`` is bit-identical to ``max_workers=1``. Ordering-
  sensitive shared state (an LLM fault schedule, a cache's LRU order) must
  not be mutated from inside worker callables — the batched LLM entry
  points (``complete_batch``) exist precisely so pipelines assign call
  indices deterministically *before* fanning pure work out to workers.
* **Per-item error capture.** :meth:`ParallelExecutor.map_outcomes` never
  raises; each item's exception is captured in an ordered
  :class:`ItemOutcome`, and :meth:`ParallelExecutor.run_stage` routes those
  outcomes through the existing :class:`~repro.core.pipeline.StagePolicy`
  machinery (retry → fallback → skip → abort) and records an aggregated
  :class:`~repro.core.pipeline.StageReport`.

``max_workers=1`` is exactly the sequential path: no threads are created
and callables run inline, which keeps single-item debugging stack traces
flat. Threads only pay off when the work releases the GIL (numpy batch
encoding, index search, IO); the order-of-magnitude throughput wins come
from the batch APIs this executor composes with, not from thread count.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, TypeVar

from repro.core.observability import resolve_obs
from repro.core.pipeline import PipelineReport, StagePolicy, StageReport

T = TypeVar("T")
R = TypeVar("R")


def chunked(items: Sequence[T], size: Optional[int]) -> Iterator[Sequence[T]]:
    """Split ``items`` into consecutive chunks of ``size``.

    ``size=None`` (or a size covering everything) yields one chunk — the
    degenerate batching every ``batch_size=None`` knob defaults to.
    """
    if size is not None and size <= 0:
        raise ValueError(f"chunk size must be positive, got {size}")
    if size is None or size >= len(items):
        if len(items):
            yield items
        return
    for start in range(0, len(items), size):
        yield items[start:start + size]


@dataclass
class ItemOutcome:
    """One item's result within a fan-out stage."""

    index: int
    value: Any = None
    error: Optional[BaseException] = None
    attempts: int = 1
    status: str = "ok"          # ok | retried | fell_back | skipped | failed

    @property
    def ok(self) -> bool:
        """Whether the item produced a value (possibly via fallback)."""
        return self.error is None or self.status in ("fell_back",)


class ParallelExecutor:
    """An ordered, error-capturing thread-pool map.

    ``max_workers=1`` runs inline (no threads, identical semantics); any
    higher count fans items out to a thread pool while preserving input
    order in the collected results. Worker callables must be safe to run
    concurrently — pure functions of their item, or functions whose shared
    state is guarded (the thread-safe caches) and whose *values* do not
    depend on scheduling order.
    """

    def __init__(self, max_workers: int = 1, obs=None):
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        # Observability recorder (no-op by default). When live, every
        # fan-out records per-item queue-wait and run time plus per-worker
        # busy time — the utilization series ``repro obs report`` renders.
        self.obs = resolve_obs(obs)

    @property
    def sequential(self) -> bool:
        """Whether this executor runs items inline, one at a time."""
        return self.max_workers == 1

    # ------------------------------------------------------------------
    # Core primitives
    # ------------------------------------------------------------------
    def map_outcomes(self, items: Iterable[T], fn: Callable[[T], R],
                     label: str = "map") -> List[ItemOutcome]:
        """Apply ``fn`` per item; capture every exception; never raise.

        The returned list is ordered by item index whatever the scheduling
        order was. ``label`` names the fan-out in traces and metrics (it
        has no effect on execution).
        """
        items = list(items)
        obs = self.obs

        def run_one(pair) -> ItemOutcome:
            index, item = pair
            try:
                return ItemOutcome(index=index, value=fn(item))
            except BaseException as exc:  # noqa: BLE001 - captured per item
                return ItemOutcome(index=index, error=exc, status="failed")

        indexed = list(enumerate(items))
        if not obs.enabled:
            if self.sequential or len(indexed) <= 1:
                return [run_one(pair) for pair in indexed]
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                return list(pool.map(run_one, indexed))
        return self._map_observed(indexed, run_one, label)

    def _map_observed(self, indexed: List, run_one: Callable,
                      label: str) -> List[ItemOutcome]:
        """The traced fan-out path: queue-wait/run-time histograms, one
        span per item (parented on the coordinating span, so worker-thread
        spans attach to the right subtree), and per-worker busy time."""
        obs = self.obs
        clock = obs.clock
        with obs.span(f"fanout:{label}", items=len(indexed),
                      workers=self.max_workers) as fanout_span:
            submitted = clock.now()

            def run_timed(pair) -> ItemOutcome:
                index, _ = pair
                started = clock.now()
                worker = obs.worker_label()
                span = obs.start_span(f"item:{label}", parent=fanout_span,
                                      index=index, worker=worker)
                outcome = run_one(pair)
                obs.end_span(span, status=outcome.status)
                finished = clock.now()
                obs.observe("executor.queue_wait", started - submitted,
                            stage=label)
                obs.observe("executor.run_time", finished - started,
                            stage=label)
                obs.count("executor.worker_busy", finished - started,
                          stage=label, worker=worker)
                obs.count("executor.items", stage=label)
                return outcome

            if self.sequential or len(indexed) <= 1:
                return [run_timed(pair) for pair in indexed]
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                return list(pool.map(run_timed, indexed))

    def map(self, items: Iterable[T], fn: Callable[[T], R],
            label: str = "map") -> List[R]:
        """Apply ``fn`` per item and return ordered values.

        If any item raised, the *lowest-index* error is re-raised after all
        items finish — the same error a sequential loop would have surfaced
        first, so abort behaviour is scheduling-independent. ``label`` names
        the fan-out in traces (the sharded store labels its shard fan-outs).
        """
        outcomes = self.map_outcomes(items, fn, label=label)
        for outcome in outcomes:
            if outcome.error is not None:
                raise outcome.error
        return [outcome.value for outcome in outcomes]

    def map_batched(self, items: Iterable[T], fn: Callable[[T], R],
                    batch_size: Optional[int] = None) -> List[R]:
        """Chunk ``items`` and fan each chunk out; ordered flat results.

        Composes chunking with fan-out: chunks are processed one after
        another (so chunk N+1 sees any shared caches warmed by chunk N),
        items *within* a chunk fan out across workers.
        """
        out: List[R] = []
        for chunk in chunked(list(items), batch_size):
            out.extend(self.map(chunk, fn))
        return out

    # ------------------------------------------------------------------
    # Policy-governed stage execution
    # ------------------------------------------------------------------
    def run_stage(self, items: Iterable[T], fn: Callable[[T], R], *,
                  name: str = "stage",
                  policy: Optional[StagePolicy] = None,
                  report: Optional[PipelineReport] = None) -> List[ItemOutcome]:
        """Fan a stage out with per-item :class:`StagePolicy` error routing.

        Per item, in policy order: a configured retry policy re-attempts
        transient failures; a governed terminal error then runs the
        fallback (called with the *item*), or skips (``value=None``), or
        aborts. Abort re-raises the lowest-index error once every item has
        settled, so partial results are never silently dropped by a racing
        worker. When ``report`` is given, one aggregated
        :class:`StageReport` is appended and degradation is flagged exactly
        as the single-item pipeline machinery would.
        """
        policy = policy or StagePolicy()

        def run_one(item: T) -> ItemOutcome:
            # Index is patched in by map_outcomes; run the policy here so
            # retries/fallbacks execute on the worker that owns the item.
            attempts = 1
            status = "ok"
            try:
                if policy.retry is not None:
                    outcome = policy.retry.run(lambda: fn(item), key=name)
                    attempts = outcome.attempts
                    if outcome.error is not None:
                        raise outcome.error
                    if attempts > 1:
                        status = "retried"
                    return ItemOutcome(0, value=outcome.value,
                                       attempts=attempts, status=status)
                return ItemOutcome(0, value=fn(item))
            except BaseException as exc:  # noqa: BLE001 - classified below
                if not isinstance(exc, policy.catch):
                    return ItemOutcome(0, error=exc, attempts=attempts,
                                       status="failed")
                action = policy.on_error
                if action == "retry":  # retries already exhausted above
                    action = "abort"
                if action == "fallback":
                    try:
                        value = policy.fallback(item)  # type: ignore[misc]
                    except policy.catch as fallback_error:
                        return ItemOutcome(0, error=fallback_error,
                                           attempts=attempts, status="failed")
                    return ItemOutcome(0, value=value, error=exc,
                                       attempts=attempts, status="fell_back")
                if action == "skip":
                    return ItemOutcome(0, value=None, error=exc,
                                       attempts=attempts, status="skipped")
                return ItemOutcome(0, error=exc, attempts=attempts,
                                   status="failed")

        started = self.obs.clock.now() if self.obs.enabled else 0.0
        raw = self.map_outcomes(list(items), run_one, label=name)
        # Stage elapsed rides the observability clock when a recorder is
        # attached; disabled runs keep the historical 0.0 (batch stages
        # were never individually timed), so reports stay byte-identical.
        elapsed = self.obs.clock.now() - started if self.obs.enabled else 0.0
        outcomes: List[ItemOutcome] = []
        for index, wrapped in enumerate(raw):
            if wrapped.error is not None:
                # run_one itself never raises; this is a defensive path for
                # errors escaping the policy wrapper (e.g. in policy code).
                inner = ItemOutcome(index, error=wrapped.error,
                                    status="failed")
            else:
                inner = wrapped.value
                inner.index = index
            outcomes.append(inner)

        if report is not None:
            statuses = [o.status for o in outcomes]
            if any(s == "failed" for s in statuses):
                status = "failed"
            elif any(s == "fell_back" for s in statuses):
                status = "fell_back"
            elif any(s == "skipped" for s in statuses):
                status = "skipped"
            elif any(s == "retried" for s in statuses):
                status = "retried"
            else:
                status = "ok"
            first_error = next((o.error for o in outcomes
                                if o.error is not None), None)
            report.stages.append(StageReport(
                name, status, sum(o.attempts for o in outcomes), elapsed,
                error=repr(first_error) if first_error is not None else None))
            for outcome in outcomes:
                if outcome.status in ("fell_back", "skipped"):
                    report.degraded = True
                    report.notes.append(
                        f"{name}[{outcome.index}]: {outcome.status} after "
                        f"{outcome.error!r}")

        failed = next((o for o in outcomes if o.status == "failed"), None)
        if failed is not None:
            assert failed.error is not None
            raise failed.error
        return outcomes
