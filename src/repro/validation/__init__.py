"""KG Validation (survey §2.6): fact checking (RQ4) and inconsistency
detection (RQ3) — the validation topics the survey flags as absent from all
previous surveys.
"""

from repro.validation.fact_checking import (
    MisinformationInjector,
    ClosedBookFactChecker,
    RetrievalAugmentedFactChecker,
    ToolAugmentedFactChecker,
    evaluate_fact_checking,
)
from repro.validation.inconsistency import (
    Violation,
    ViolationInjector,
    ConstraintChecker,
    DeclaredConstraintDetector,
    StatisticalConstraintMiner,
    evaluate_detection,
)
from repro.validation.chatrule import ChatRuleMiner, ChatRuleDetector

__all__ = [
    "MisinformationInjector",
    "ClosedBookFactChecker",
    "RetrievalAugmentedFactChecker",
    "ToolAugmentedFactChecker",
    "evaluate_fact_checking",
    "Violation",
    "ViolationInjector",
    "ConstraintChecker",
    "DeclaredConstraintDetector",
    "StatisticalConstraintMiner",
    "evaluate_detection",
    "ChatRuleMiner",
    "ChatRuleDetector",
]
