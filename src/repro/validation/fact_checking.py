"""Fact checking for KGs with LLMs (survey §2.6.1, RQ4).

The survey's recipe: verbalize each triple and prompt an LLM to judge it —
closed-book first, then augmented with external knowledge (FactLLaMA) or a
tool (FacTool). :class:`MisinformationInjector` produces the labelled
evaluation mix by corrupting a deterministic subset of a clean KG.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import IRI, OWL, RDF, RDFS, Triple
from repro.llm import prompts as P
from repro.llm.model import SimulatedLLM
from repro.sparql import SparqlEngine


@dataclass
class LabelledStatement:
    """One verbalized statement with its gold truth value."""

    statement: str
    triple: Triple
    is_true: bool


class MisinformationInjector:
    """Corrupt a deterministic subset of a KG into plausible misinformation.

    Each corrupted triple swaps the object for a *type-compatible* wrong
    entity (the hard case: a plausible lie), mirroring how LLM-generated
    misinformation looks.
    """

    def __init__(self, kg: KnowledgeGraph, seed: int = 0):
        self.kg = kg
        self.rng = random.Random(seed)

    def build_statements(self, n: int = 60,
                         false_fraction: float = 0.5) -> List[LabelledStatement]:
        """A shuffled list of true and corrupted statements."""
        candidates = [
            t for t in self.kg.store
            if isinstance(t.object, IRI)
            and t.predicate not in (RDFS.label, RDFS.comment, RDF.type)
            and not t.predicate.value.startswith(RDFS.prefix)
            and not t.predicate.value.startswith(OWL.prefix)
            and not self.kg.store.match(t.subject, RDF.type, OWL.Class)
        ]
        candidates.sort(key=lambda t: t.n3())
        self.rng.shuffle(candidates)
        statements: List[LabelledStatement] = []
        n_false = int(n * false_fraction)
        for index, triple in enumerate(candidates[:n]):
            if index < n_false:
                corrupted = self._corrupt(triple)
                if corrupted is None:
                    continue
                statements.append(LabelledStatement(
                    statement=self.kg.verbalize_triple(corrupted),
                    triple=corrupted, is_true=False))
            else:
                statements.append(LabelledStatement(
                    statement=self.kg.verbalize_triple(triple),
                    triple=triple, is_true=True))
        self.rng.shuffle(statements)
        return statements

    def _corrupt(self, triple: Triple) -> Optional[Triple]:
        assert isinstance(triple.object, IRI)
        gold_types = set(self.kg.types(triple.object))
        pool = [
            t.object for t in self.kg.store.match(None, triple.predicate, None)
            if isinstance(t.object, IRI) and t.object != triple.object
        ]
        typed_pool = [e for e in pool if set(self.kg.types(e)) & gold_types] or pool
        typed_pool = sorted(set(typed_pool), key=lambda e: e.value)
        for _ in range(10):
            if not typed_pool:
                return None
            candidate = typed_pool[self.rng.randrange(len(typed_pool))]
            corrupted = triple.replace(object=candidate)
            if corrupted not in self.kg.store:
                return corrupted
        return None


class ClosedBookFactChecker:
    """Verbalize-and-prompt with no external knowledge — the baseline whose
    failure modes (stale memory, hallucinated verdicts) motivate RQ4."""

    def __init__(self, llm: SimulatedLLM):
        self.llm = llm

    def check(self, statement: str) -> Optional[bool]:
        """True/False, or None when the model abstains."""
        response = self.llm.complete(P.fact_check_prompt(statement))
        return P.parse_fact_check_response(response.text)


class RetrievalAugmentedFactChecker:
    """FactLLaMA-style: retrieve relevant facts from a trusted reference KG
    into the prompt before judging."""

    def __init__(self, llm: SimulatedLLM, reference: KnowledgeGraph,
                 facts_per_query: int = 20):
        self.llm = llm
        self.reference = reference
        self.facts_per_query = facts_per_query

    def check(self, statement: str) -> Optional[bool]:
        """Retrieve reference facts, then judge with them in the prompt."""
        mentions = self.llm.find_mentions(statement)
        seeds = [m.iri for m in mentions if m.iri is not None]
        facts: List[str] = []
        if seeds:
            subgraph = self.reference.subgraph(seeds, hops=1,
                                               max_triples=self.facts_per_query * 2)
            for triple in subgraph:
                if triple.predicate in (RDFS.label, RDFS.comment, RDF.type):
                    continue
                facts.append(self.reference.verbalize_triple(triple))
                if len(facts) >= self.facts_per_query:
                    break
        context = " ".join(facts) if facts else None
        response = self.llm.complete(P.fact_check_prompt(statement, context=context))
        return P.parse_fact_check_response(response.text)


class ToolAugmentedFactChecker:
    """FacTool-style: the LLM grounds the claim, a SPARQL ASK against the
    reference KG is the verification tool, and the LLM only falls back to
    its own judgment when the claim cannot be grounded."""

    def __init__(self, llm: SimulatedLLM, reference: KnowledgeGraph):
        self.llm = llm
        self.reference = reference
        self.engine = SparqlEngine(reference.store)
        self.tool_calls = 0

    def check(self, statement: str) -> Optional[bool]:
        """Ground the claim, ASK the reference KG, fall back to the LLM."""
        grounded = self.llm._ground_statement(statement)
        if grounded is not None:
            subject, relation, obj = grounded
            if isinstance(obj, IRI):
                self.tool_calls += 1
                query = f"ASK {{ {subject.n3()} {relation.n3()} {obj.n3()} }}"
                if self.engine.ask(query):
                    return True
                # Claim contradicts a one-valued relation → definitive False.
                exists = f"ASK {{ {subject.n3()} {relation.n3()} ?o }}"
                if self.engine.ask(exists):
                    return False
                return None  # reference silent on this subject/relation
        response = self.llm.complete(P.fact_check_prompt(statement))
        return P.parse_fact_check_response(response.text)


def evaluate_fact_checking(checker, statements: Sequence[LabelledStatement]
                           ) -> Dict[str, float]:
    """Accuracy over decided statements, coverage, and end-to-end accuracy
    (abstentions count as errors)."""
    decided = correct = 0
    for labelled in statements:
        verdict = checker.check(labelled.statement)
        if verdict is None:
            continue
        decided += 1
        if verdict == labelled.is_true:
            correct += 1
    total = len(statements)
    return {
        "accuracy_on_decided": correct / decided if decided else 0.0,
        "coverage": decided / total if total else 0.0,
        "end_to_end_accuracy": correct / total if total else 0.0,
    }
