"""ChatRule (Luo et al.): LLM-assisted logical rule mining over KGs.

ChatRule's thesis, reproduced here: purely structural rule mining uses only
data regularities and therefore proposes spurious rules; an LLM adds the
*semantics* of relation names. Two products:

* :meth:`ChatRuleMiner.mine_rules` — sample fact paths, prompt the LLM for
  Horn-rule candidates, then keep the candidates whose support/confidence
  on the KG clears a bar (prompt → verify, exactly the paper's loop).
* :class:`ChatRuleDetector` — inconsistency detection: statistically mined
  property characteristics are kept only when the LLM's semantic knowledge
  of the relation agrees, removing the spurious constraints that hurt the
  structural baseline's precision.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.kg.graph import KnowledgeGraph
from repro.kg.ontology import Ontology, PropertyCharacteristic
from repro.kg.triples import IRI, OWL, RDF, RDFS, Triple
from repro.llm import prompts as P
from repro.llm.model import SimulatedLLM, _stable_unit
from repro.reasoning.rules import Rule, RuleStats, score_rule
from repro.validation.inconsistency import (
    ConstraintChecker, StatisticalConstraintMiner, Violation,
)

_CHARACTERISTIC_CLASS = {
    PropertyCharacteristic.FUNCTIONAL: OWL.FunctionalProperty,
    PropertyCharacteristic.INVERSE_FUNCTIONAL: OWL.InverseFunctionalProperty,
    PropertyCharacteristic.SYMMETRIC: OWL.SymmetricProperty,
    PropertyCharacteristic.ASYMMETRIC: OWL.AsymmetricProperty,
    PropertyCharacteristic.TRANSITIVE: OWL.TransitiveProperty,
    PropertyCharacteristic.IRREFLEXIVE: OWL.IrreflexiveProperty,
}


class ChatRuleMiner:
    """Prompt-then-verify rule mining."""

    def __init__(self, llm: SimulatedLLM, kg: KnowledgeGraph, seed: int = 0,
                 min_support: int = 3, min_confidence: float = 0.7):
        self.llm = llm
        self.kg = kg
        self.seed = seed
        self.min_support = min_support
        self.min_confidence = min_confidence

    def mine_rules(self, n_sample_facts: int = 80) -> List[RuleStats]:
        """LLM-proposed rules that verify on the KG, best first."""
        sample = self._sample_facts(n_sample_facts)
        relations = self._relation_labels()
        prompt = P.rule_mining_prompt(sorted(relations.values()),
                                      sample_paths=sample)
        response = self.llm.complete(prompt)
        label_to_iri = {self._snake(label): iri
                        for iri, label in relations.items()}
        verified: List[RuleStats] = []
        seen = set()
        for head_name, body_names in P.parse_rules_response(response.text):
            head = label_to_iri.get(head_name)
            body = tuple(label_to_iri.get(b) for b in body_names)
            if head is None or any(b is None for b in body):
                continue
            inverse = len(body) == 1 and body[0] == head
            rule = Rule(head=head, body=body, inverse_body=inverse)  # type: ignore[arg-type]
            if rule in seen:
                continue
            seen.add(rule)
            stats = score_rule(self.kg.store, rule)
            if stats.support >= self.min_support and \
                    stats.confidence >= self.min_confidence:
                verified.append(stats)
        verified.sort(key=lambda s: (-s.confidence, -s.support,
                                     s.rule.describe()))
        return verified

    def _relation_labels(self) -> Dict[IRI, str]:
        out: Dict[IRI, str] = {}
        for relation in self.kg.store.relations():
            if relation == RDF.type or \
                    relation.value.startswith(RDFS.prefix) or \
                    relation.value.startswith(OWL.prefix):
                continue
            out[relation] = self.kg.label(relation)
        return out

    @staticmethod
    def _snake(label: str) -> str:
        import re
        return re.sub(r"[^a-z0-9]+", "_", label.strip().lower()).strip("_")

    def _sample_facts(self, n: int) -> List[str]:
        """Linearized fact sample covering 2-hop neighbourhoods."""
        rng = random.Random(self.seed)
        relations = self._relation_labels()
        facts: List[Triple] = []
        for relation in relations:
            facts.extend(self.kg.store.match(None, relation, None))
        facts = [t for t in facts if isinstance(t.object, IRI)]
        facts.sort(key=lambda t: t.n3())
        rng.shuffle(facts)
        sampled = facts[:n]
        # Enrich with the 1-hop continuations of sampled facts, so the LLM
        # sees composable paths.
        extended = list(sampled)
        for triple in sampled[: n // 2]:
            for continuation in self.kg.store.match(triple.object, None, None):
                if isinstance(continuation.object, IRI) and \
                        continuation.predicate in relations:
                    extended.append(continuation)
                    break
        lines = []
        for triple in extended:
            lines.append(f"{self.kg.label(triple.subject)} | "
                         f"{self.kg.label(triple.predicate)} | "
                         f"{self.kg.label(triple.object)}")
        return lines


class ChatRuleDetector:
    """Inconsistency detection with semantically filtered constraints."""

    def __init__(self, llm: SimulatedLLM, seed: int = 0,
                 miner: Optional[StatisticalConstraintMiner] = None):
        self.llm = llm
        self.seed = seed
        self.miner = miner or StatisticalConstraintMiner()

    def detect(self, kg: KnowledgeGraph) -> List[Violation]:
        """Mine constraints, filter them semantically, check the KG."""
        mined = self.miner.mine(kg)
        filtered = self._semantic_filter(mined)
        return ConstraintChecker(filtered).check(kg)

    def _semantic_filter(self, mined: Ontology) -> Ontology:
        """Keep a mined characteristic only when the LLM agrees it holds
        for that relation *semantically*.

        The simulator answers from the schema knowledge in its parametric
        memory (the analogue of GPT-4 knowing that "born in" names a
        functional relation), with a skill-dependent error rate.
        """
        out = Ontology("chatrule")
        error = (1.0 - self.llm.config.skill) * 0.3
        for relation, prop in mined.properties.items():
            kept = []
            for characteristic in prop.characteristics:
                agrees = self._llm_agrees(relation, characteristic)
                flip = _stable_unit(str(self.seed), "chatrule",
                                    relation.value,
                                    characteristic.value) < error
                if agrees != flip:  # agreement, possibly flipped by noise
                    kept.append(characteristic)
            domain = prop.domain if prop.domain is not None and \
                self._llm_agrees_schema(relation, RDFS.domain, prop.domain) else None
            range_ = prop.range if prop.range is not None and \
                self._llm_agrees_schema(relation, RDFS.range, prop.range) else None
            if kept or domain is not None or range_ is not None:
                out.add_property(relation, characteristics=kept,
                                 domain=domain, range=range_)
        for a, cls in mined.classes.items():
            for b in cls.disjoint_with:
                if self._llm_agrees_disjoint(a, b):
                    out.set_disjoint(a, b)
        return out

    def _llm_agrees_schema(self, relation: IRI, predicate: IRI,
                           value: IRI) -> bool:
        """Does the backbone's schema knowledge support (relation, pred, value)?

        Accepts superclass-compatible answers: a mined range of City agrees
        with a declared range of Place.
        """
        declared = [t.object for t in self.llm.memory.match(relation, predicate, None)
                    if isinstance(t.object, IRI)]
        if not declared:
            return False
        for d in declared:
            if d == value:
                return True
            # Mined value may be a subclass of the declared one (or inverse).
            if self.llm.memory.match(value, RDFS.subClassOf, d) or \
                    self.llm.memory.match(d, RDFS.subClassOf, value):
                return True
        return False

    def _llm_agrees_disjoint(self, a: IRI, b: IRI) -> bool:
        return bool(self.llm.memory.match(a, OWL.disjointWith, b) or
                    self.llm.memory.match(b, OWL.disjointWith, a))

    def _llm_agrees(self, relation: IRI,
                    characteristic: PropertyCharacteristic) -> bool:
        marker = _CHARACTERISTIC_CLASS[characteristic]
        return bool(self.llm.memory.match(relation, RDF.type, marker))
