"""Inconsistency detection in KGs (survey §2.6.2, RQ3).

A KG is inconsistent when its triples contradict schema constraints:
functional and inverse-functional properties, domain/range, class
disjointness, asymmetry and irreflexivity. This module provides

* :class:`ViolationInjector` — plants labelled violations of every kind in
  a clean KG,
* :class:`ConstraintChecker` — finds every violation of a given constraint
  set,
* :class:`DeclaredConstraintDetector` — baseline: checks only the (often
  incomplete) declared ontology,
* :class:`StatisticalConstraintMiner` — structural rule mining: infer
  constraints from data regularities alone (high recall, spurious
  constraints included — the "structural information only" approach the
  survey says ChatRule improves on).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.kg.graph import KnowledgeGraph
from repro.kg.ontology import Ontology, PropertyCharacteristic
from repro.kg.triples import IRI, OWL, RDF, RDFS, Triple


@dataclass(frozen=True)
class Violation:
    """One detected (or injected) inconsistency."""

    kind: str                   # e.g. "functional", "disjoint", ...
    triples: Tuple[Triple, ...]
    subject: IRI
    detail: str = ""

    def key(self) -> Tuple[str, Tuple[str, ...]]:
        """Identity for matching detected against injected violations."""
        return (self.kind, tuple(sorted(t.n3() for t in self.triples)))


#: Constraint kinds the injector and checkers understand.
VIOLATION_KINDS = (
    "functional", "inverse_functional", "domain", "range",
    "disjoint", "asymmetric", "irreflexive",
)


class ViolationInjector:
    """Inject labelled violations into a copy of a clean, schema-conformant KG."""

    def __init__(self, kg: KnowledgeGraph, ontology: Ontology, seed: int = 0):
        self.kg = kg
        self.ontology = ontology
        self.rng = random.Random(seed)

    def inject(self, n_per_kind: int = 3,
               kinds: Sequence[str] = VIOLATION_KINDS
               ) -> Tuple[KnowledgeGraph, List[Violation]]:
        """Returns (corrupted copy, planted violations)."""
        corrupted = self.kg.copy(name=self.kg.name + "+violations")
        injected: List[Violation] = []
        for kind in kinds:
            injector = getattr(self, f"_inject_{kind}")
            for _ in range(n_per_kind):
                violation = injector(corrupted)
                if violation is not None:
                    injected.append(violation)
        return corrupted, injected

    # -- individual kinds --------------------------------------------------
    def _properties_with(self, characteristic: PropertyCharacteristic) -> List[IRI]:
        return sorted((iri for iri, p in self.ontology.properties.items()
                       if characteristic in p.characteristics),
                      key=lambda i: i.value)

    def _instances(self, kg: KnowledgeGraph, relation: IRI) -> List[Triple]:
        return [t for t in kg.store.match(None, relation, None)]

    def _random_entity(self, kg: KnowledgeGraph, cls: Optional[IRI] = None) -> Optional[IRI]:
        if cls is not None:
            pool = kg.instances(cls)
        else:
            pool = [e for e in kg.store.entities()
                    if not kg.store.match(e, RDF.type, OWL.Class)]
        pool = sorted(set(pool), key=lambda e: e.value)
        return pool[self.rng.randrange(len(pool))] if pool else None

    def _inject_functional(self, kg: KnowledgeGraph) -> Optional[Violation]:
        for relation in self._properties_with(PropertyCharacteristic.FUNCTIONAL):
            instances = self._instances(kg, relation)
            if not instances:
                continue
            base = instances[self.rng.randrange(len(instances))]
            if not isinstance(base.object, IRI):
                continue
            prop = self.ontology.properties[relation]
            other = self._random_entity(kg, prop.range)
            if other is None or other == base.object:
                continue
            extra = base.replace(object=other)
            if kg.store.add(extra):
                return Violation(kind="functional", triples=(base, extra),
                                 subject=base.subject,
                                 detail=f"two values for functional {relation.local_name}")
        return None

    def _inject_inverse_functional(self, kg: KnowledgeGraph) -> Optional[Violation]:
        for relation in self._properties_with(PropertyCharacteristic.INVERSE_FUNCTIONAL):
            instances = self._instances(kg, relation)
            if not instances:
                continue
            base = instances[self.rng.randrange(len(instances))]
            prop = self.ontology.properties[relation]
            other_subject = self._random_entity(kg, prop.domain)
            if other_subject is None or other_subject == base.subject:
                continue
            extra = base.replace(subject=other_subject)
            if kg.store.add(extra):
                return Violation(kind="inverse_functional", triples=(base, extra),
                                 subject=other_subject,
                                 detail=f"shared object for inverse-functional "
                                        f"{relation.local_name}")
        return None

    def _typed_wrong(self, kg: KnowledgeGraph, wanted: Optional[IRI]) -> Optional[IRI]:
        """An entity whose types do NOT include (subclasses of) ``wanted``."""
        if wanted is None:
            return None
        candidates = []
        for entity in kg.store.entities():
            types = kg.types(entity)
            if not types:
                continue
            if any(self.ontology.is_subclass_of(t, wanted) for t in types):
                continue
            if kg.store.match(entity, RDF.type, OWL.Class):
                continue
            candidates.append(entity)
        candidates.sort(key=lambda e: e.value)
        return candidates[self.rng.randrange(len(candidates))] if candidates else None

    def _inject_domain(self, kg: KnowledgeGraph) -> Optional[Violation]:
        properties = sorted((i for i, p in self.ontology.properties.items()
                             if p.domain is not None), key=lambda i: i.value)
        self.rng.shuffle(properties)
        for relation in properties:
            prop = self.ontology.properties[relation]
            bad_subject = self._typed_wrong(kg, prop.domain)
            instances = self._instances(kg, relation)
            if bad_subject is None or not instances:
                continue
            base = instances[self.rng.randrange(len(instances))]
            extra = base.replace(subject=bad_subject)
            if kg.store.add(extra):
                return Violation(kind="domain", triples=(extra,),
                                 subject=bad_subject,
                                 detail=f"subject outside domain of {relation.local_name}")
        return None

    def _inject_range(self, kg: KnowledgeGraph) -> Optional[Violation]:
        properties = sorted((i for i, p in self.ontology.properties.items()
                             if p.range is not None), key=lambda i: i.value)
        self.rng.shuffle(properties)
        for relation in properties:
            prop = self.ontology.properties[relation]
            bad_object = self._typed_wrong(kg, prop.range)
            instances = self._instances(kg, relation)
            if bad_object is None or not instances:
                continue
            base = instances[self.rng.randrange(len(instances))]
            extra = base.replace(object=bad_object)
            if kg.store.add(extra):
                return Violation(kind="range", triples=(extra,),
                                 subject=base.subject,
                                 detail=f"object outside range of {relation.local_name}")
        return None

    def _inject_disjoint(self, kg: KnowledgeGraph) -> Optional[Violation]:
        pairs = sorted({tuple(sorted((a.value, b.value)))
                        for a, c in self.ontology.classes.items()
                        for b in c.disjoint_with})
        self.rng.shuffle(pairs)
        for a_value, b_value in pairs:
            a, b = IRI(a_value), IRI(b_value)
            instances = sorted(kg.instances(a), key=lambda e: e.value)
            if not instances:
                continue
            victim = instances[self.rng.randrange(len(instances))]
            extra = Triple(victim, RDF.type, b)
            if kg.store.add(extra):
                existing = kg.store.match(victim, RDF.type, a)[0]
                return Violation(kind="disjoint", triples=(existing, extra),
                                 subject=victim,
                                 detail=f"typed with disjoint classes "
                                        f"{a.local_name} and {b.local_name}")
        return None

    def _inject_asymmetric(self, kg: KnowledgeGraph) -> Optional[Violation]:
        for relation in self._properties_with(PropertyCharacteristic.ASYMMETRIC):
            instances = [t for t in self._instances(kg, relation)
                         if isinstance(t.object, IRI)]
            if not instances:
                continue
            base = instances[self.rng.randrange(len(instances))]
            reverse = Triple(base.object, relation, base.subject)
            if kg.store.add(reverse):
                return Violation(kind="asymmetric", triples=(base, reverse),
                                 subject=base.object,
                                 detail=f"mutual {relation.local_name} edges")
        return None

    def _inject_irreflexive(self, kg: KnowledgeGraph) -> Optional[Violation]:
        for relation in self._properties_with(PropertyCharacteristic.IRREFLEXIVE):
            instances = self._instances(kg, relation)
            if not instances:
                continue
            base = instances[self.rng.randrange(len(instances))]
            loop = Triple(base.subject, relation, base.subject)
            if kg.store.add(loop):
                return Violation(kind="irreflexive", triples=(loop,),
                                 subject=base.subject,
                                 detail=f"self-loop on irreflexive {relation.local_name}")
        return None


class ConstraintChecker:
    """Find all violations of a constraint set (an :class:`Ontology`)."""

    def __init__(self, constraints: Ontology):
        self.constraints = constraints

    def check(self, kg: KnowledgeGraph) -> List[Violation]:
        """Every violation of the constraint set present in the KG."""
        out: List[Violation] = []
        out.extend(self._check_characteristics(kg))
        out.extend(self._check_domain_range(kg))
        out.extend(self._check_disjointness(kg))
        return out

    def _check_characteristics(self, kg: KnowledgeGraph) -> List[Violation]:
        out: List[Violation] = []
        for relation, prop in sorted(self.constraints.properties.items(),
                                     key=lambda kv: kv[0].value):
            instances = kg.store.match(None, relation, None)
            if PropertyCharacteristic.FUNCTIONAL in prop.characteristics:
                by_subject: Dict[IRI, List[Triple]] = {}
                for t in instances:
                    by_subject.setdefault(t.subject, []).append(t)
                for subject, triples in sorted(by_subject.items(),
                                               key=lambda kv: kv[0].value):
                    if len(triples) > 1:
                        out.append(Violation(
                            kind="functional", triples=tuple(sorted(triples)),
                            subject=subject,
                            detail=f"{len(triples)} values for functional "
                                   f"{relation.local_name}"))
            if PropertyCharacteristic.INVERSE_FUNCTIONAL in prop.characteristics:
                by_object: Dict[Triple, List[Triple]] = {}
                for t in instances:
                    by_object.setdefault(t.object, []).append(t)  # type: ignore[arg-type]
                for obj, triples in by_object.items():
                    if len(triples) > 1:
                        triples = sorted(triples)
                        out.append(Violation(
                            kind="inverse_functional", triples=tuple(triples),
                            subject=triples[0].subject,
                            detail=f"shared object for inverse-functional "
                                   f"{relation.local_name}"))
            if PropertyCharacteristic.ASYMMETRIC in prop.characteristics:
                seen: Set[Tuple[IRI, IRI]] = set()
                for t in instances:
                    if not isinstance(t.object, IRI):
                        continue
                    if (t.object, t.subject) in seen:
                        reverse = Triple(t.object, relation, t.subject)
                        out.append(Violation(
                            kind="asymmetric",
                            triples=tuple(sorted((t, reverse))),
                            subject=t.subject,
                            detail=f"mutual {relation.local_name} edges"))
                    seen.add((t.subject, t.object))
            if PropertyCharacteristic.IRREFLEXIVE in prop.characteristics:
                for t in instances:
                    if t.subject == t.object:
                        out.append(Violation(
                            kind="irreflexive", triples=(t,), subject=t.subject,
                            detail=f"self-loop on irreflexive {relation.local_name}"))
        return out

    def _check_domain_range(self, kg: KnowledgeGraph) -> List[Violation]:
        out: List[Violation] = []
        for relation, prop in sorted(self.constraints.properties.items(),
                                     key=lambda kv: kv[0].value):
            if prop.domain is None and prop.range is None:
                continue
            for t in kg.store.match(None, relation, None):
                if prop.domain is not None:
                    types = kg.types(t.subject)
                    if types and not any(
                            self.constraints.is_subclass_of(c, prop.domain)
                            for c in types):
                        out.append(Violation(
                            kind="domain", triples=(t,), subject=t.subject,
                            detail=f"subject outside domain of {relation.local_name}"))
                if prop.range is not None and isinstance(t.object, IRI):
                    types = kg.types(t.object)
                    if types and not any(
                            self.constraints.is_subclass_of(c, prop.range)
                            for c in types):
                        out.append(Violation(
                            kind="range", triples=(t,), subject=t.subject,
                            detail=f"object outside range of {relation.local_name}"))
        return out

    def _check_disjointness(self, kg: KnowledgeGraph) -> List[Violation]:
        out: List[Violation] = []
        by_entity: Dict[IRI, List[Triple]] = {}
        for t in kg.store.match(None, RDF.type, None):
            if isinstance(t.object, IRI) and t.object in self.constraints.classes:
                by_entity.setdefault(t.subject, []).append(t)
        for entity, type_triples in sorted(by_entity.items(),
                                           key=lambda kv: kv[0].value):
            for i, t1 in enumerate(type_triples):
                for t2 in type_triples[i + 1:]:
                    if self.constraints.are_disjoint(t1.object, t2.object):  # type: ignore[arg-type]
                        out.append(Violation(
                            kind="disjoint",
                            triples=tuple(sorted((t1, t2))), subject=entity,
                            detail=f"disjoint classes "
                                   f"{t1.object.local_name}/{t2.object.local_name}"))  # type: ignore[union-attr]
        return out


class DeclaredConstraintDetector:
    """Baseline: check only the constraints an (incomplete) schema declares."""

    def __init__(self, declared: Ontology):
        self.checker = ConstraintChecker(declared)

    def detect(self, kg: KnowledgeGraph) -> List[Violation]:
        """Check the KG against the declared constraints only."""
        return self.checker.check(kg)


class StatisticalConstraintMiner:
    """Mine constraints from data regularities alone, then check them.

    A relation is assumed functional when ≥ ``threshold`` of its subjects
    have exactly one value, asymmetric when (almost) no edge is mutual, etc.
    No semantics: relations that are *incidentally* regular in the data
    yield spurious constraints — the precision cost ChatRule's semantic
    filter removes.
    """

    def __init__(self, threshold: float = 0.85, min_instances: int = 5):
        self.threshold = threshold
        self.min_instances = min_instances

    def mine(self, kg: KnowledgeGraph) -> Ontology:
        """An ontology holding the mined property characteristics,
        majority domains/ranges, and zero-overlap class disjointness."""
        mined = Ontology("mined")
        self._mine_domains_ranges(kg, mined)
        self._mine_disjointness(kg, mined)
        for relation in sorted(kg.store.relations(), key=lambda r: r.value):
            if relation.value.startswith(RDFS.prefix) or \
                    relation.value.startswith(OWL.prefix) or \
                    relation == RDF.type:
                continue
            instances = kg.store.match(None, relation, None)
            if len(instances) < self.min_instances:
                continue
            characteristics = []
            by_subject: Dict[IRI, int] = {}
            for t in instances:
                by_subject[t.subject] = by_subject.get(t.subject, 0) + 1
            single = sum(1 for c in by_subject.values() if c == 1)
            if single / len(by_subject) >= self.threshold:
                characteristics.append(PropertyCharacteristic.FUNCTIONAL)
            by_object: Dict = {}
            for t in instances:
                by_object[t.object] = by_object.get(t.object, 0) + 1
            single_obj = sum(1 for c in by_object.values() if c == 1)
            if single_obj / len(by_object) >= self.threshold:
                characteristics.append(PropertyCharacteristic.INVERSE_FUNCTIONAL)
            pairs = {(t.subject, t.object) for t in instances
                     if isinstance(t.object, IRI)}
            mutual = sum(1 for s, o in pairs if (o, s) in pairs)
            if pairs and mutual == 0:
                characteristics.append(PropertyCharacteristic.ASYMMETRIC)
            loops = sum(1 for t in instances if t.subject == t.object)
            if loops == 0:
                characteristics.append(PropertyCharacteristic.IRREFLEXIVE)
            if characteristics:
                mined.add_property(relation, characteristics=characteristics)
        return mined

    def _mine_domains_ranges(self, kg: KnowledgeGraph, mined: Ontology) -> None:
        for relation in sorted(kg.store.relations(), key=lambda r: r.value):
            if relation.value.startswith(RDFS.prefix) or \
                    relation.value.startswith(OWL.prefix) or relation == RDF.type:
                continue
            instances = kg.store.match(None, relation, None)
            if len(instances) < self.min_instances:
                continue
            domain = self._majority_type(kg, [t.subject for t in instances])
            range_ = self._majority_type(
                kg, [t.object for t in instances if isinstance(t.object, IRI)])
            if domain is not None or range_ is not None:
                mined.add_property(relation, domain=domain, range=range_)

    def _majority_type(self, kg: KnowledgeGraph,
                       entities: Sequence[IRI]) -> Optional[IRI]:
        counts: Dict[IRI, int] = {}
        typed = 0
        for entity in entities:
            types = kg.types(entity)
            if not types:
                continue
            typed += 1
            for cls in types:
                counts[cls] = counts.get(cls, 0) + 1
        if typed < self.min_instances:
            return None
        best = max(sorted(counts, key=lambda c: c.value),
                   key=lambda c: counts[c], default=None)
        if best is not None and counts[best] / typed >= self.threshold:
            return best
        return None

    def _mine_disjointness(self, kg: KnowledgeGraph, mined: Ontology) -> None:
        instances: Dict[IRI, Set[IRI]] = {}
        for t in kg.store.match(None, RDF.type, None):
            if isinstance(t.object, IRI) and \
                    not t.object.value.startswith(OWL.prefix):
                instances.setdefault(t.object, set()).add(t.subject)
        classes = sorted((c for c, members in instances.items()
                          if len(members) >= self.min_instances),
                         key=lambda c: c.value)
        tolerance = 1.0 - self.threshold
        for i, a in enumerate(classes):
            for b in classes[i + 1:]:
                overlap = instances[a] & instances[b]
                smaller = min(len(instances[a]), len(instances[b]))
                if len(overlap) / smaller <= tolerance:
                    mined.set_disjoint(a, b)

    def detect(self, kg: KnowledgeGraph) -> List[Violation]:
        """Mine on the (corrupted) KG, then check it against the mined
        constraints. Mining tolerance means injected violations don't hide
        the regularity they break."""
        return ConstraintChecker(self.mine(kg)).check(kg)


def evaluate_detection(detected: Sequence[Violation],
                       injected: Sequence[Violation]) -> Dict[str, float]:
    """Precision/recall/F1 of detected violations against the planted ones.

    A detection matches an injected violation when they share the kind and
    at least one triple.
    """
    injected_keys = [(v.kind, set(t.n3() for t in v.triples)) for v in injected]
    matched = set()
    true_positives = 0
    for violation in detected:
        triples = set(t.n3() for t in violation.triples)
        for index, (kind, injected_triples) in enumerate(injected_keys):
            if index in matched:
                continue
            if violation.kind == kind and triples & injected_triples:
                matched.add(index)
                true_positives += 1
                break
    precision = true_positives / len(detected) if detected else \
        (1.0 if not injected else 0.0)
    recall = true_positives / len(injected) if injected else 1.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return {"precision": precision, "recall": recall, "f1": f1,
            "detected": float(len(detected)), "injected": float(len(injected))}
