"""A graph-shaped façade over :class:`~repro.kg.store.TripleStore`.

Most surveyed methods think of a KG as a labelled multigraph — neighbours,
k-hop subgraphs, relation paths — rather than as a bag of triples. The
:class:`KnowledgeGraph` wraps a store and adds those operations plus the
label/alias/description machinery LLM-facing code needs for verbalization.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.observability import cache_stats_dict
from repro.kg.store import TripleStore, _term_key
from repro.kg.triples import IRI, Literal, RDF, RDFS, Term, Triple, term_from_python

#: Predicate used for human-readable labels.
LABEL = RDFS.label
#: Predicate used for long-form descriptions (RQ1 output target).
COMMENT = RDFS.comment
#: Predicate used for instance typing.
TYPE = RDF.type

#: A path step: (relation, neighbour, direction) where direction is
#: ``"out"`` when the triple is (node, relation, neighbour) and ``"in"``
#: when it is (neighbour, relation, node).
Step = Tuple[IRI, Term, str]


class KnowledgeGraph:
    """A knowledge graph: a triple store plus graph navigation helpers."""

    def __init__(self, store: Optional[TripleStore] = None, name: str = "kg"):
        self.store = store if store is not None else TripleStore()
        self.name = name
        # Read-path caches for the verbalization hot path. All of them are
        # keyed off the store's mutation counter: any effective add/remove/
        # clear — including ones made directly on ``self.store`` — bumps the
        # version and lazily flushes everything here, so cached reads can
        # never be stale. See DESIGN.md "Performance".
        #
        # A single lock guards every cache dict and counter; the expensive
        # store scans run *outside* it (the HashEmbedder pattern), with the
        # lookup's disposition settled by a recheck under the second
        # acquisition — ParallelExecutor workers share one graph without
        # corrupting the caches or losing counter increments.
        self._cache_lock = threading.Lock()
        self._cache_version = -1
        self._label_cache: Dict[Term, str] = {}
        self._description_cache: Dict[IRI, Optional[str]] = {}
        self._types_cache: Dict[IRI, List[IRI]] = {}
        # The label→entities reverse index is *segmented*: one segment per
        # backing store (per shard for a sharded façade, one otherwise),
        # each stamped with its backing store's version at build time. A
        # write to shard k only invalidates shard k's segment, so lookups
        # served by the other shards stay warm — the wholesale-rebuild
        # behaviour this replaces cold-started every lookup on any write.
        self._label_segments: List[Dict] = []
        self._label_segment_rebuilds = 0
        self._local_name_index: Optional[Dict[str, List[IRI]]] = None
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_evictions = 0
        self._cache_invalidations = 0

    def _sync_caches_locked(self) -> int:
        """Flush stale caches; returns the synced version. Caller holds
        ``_cache_lock``."""
        version = self.store.version
        if version != self._cache_version:
            if self._cache_version >= 0:
                self._cache_invalidations += 1
                self._cache_evictions += (len(self._label_cache)
                                          + len(self._description_cache)
                                          + len(self._types_cache))
            self._cache_version = version
            self._label_cache.clear()
            self._description_cache.clear()
            self._types_cache.clear()
            # _label_segments deliberately survives: each segment
            # revalidates against its own backing store's version, so
            # only the segments whose shard actually changed rebuild.
            self._local_name_index = None
        return version

    def cache_stats(self) -> Dict[str, int]:
        """Read-path cache counters in the canonical cache-stats schema.

        The pre-schema keys (``labels_cached``/``descriptions_cached``/
        ``types_cached``) stay readable through the deprecation shim of
        :class:`~repro.core.observability.LegacyCacheStats`.
        """
        with self._cache_lock:
            labels = len(self._label_cache)
            descriptions = len(self._description_cache)
            types = len(self._types_cache)
            return cache_stats_dict(
                hits=self._cache_hits, misses=self._cache_misses,
                evictions=self._cache_evictions,
                invalidations=self._cache_invalidations,
                size=labels + descriptions + types,
                legacy={"labels_cached": labels,
                        "descriptions_cached": descriptions,
                        "types_cached": types})

    def label_index_stats(self) -> Dict[str, int]:
        """Maintenance counters for the segmented label reverse index.

        ``segments`` is the backing-store count (shards, or 1),
        ``rebuilds`` the number of per-segment rebuilds so far — under
        shard-aware invalidation a write costs one rebuild, not one per
        segment. ``entries`` is the total number of indexed labels.
        """
        with self._cache_lock:
            return {
                "segments": len(self._label_segments),
                "rebuilds": self._label_segment_rebuilds,
                "entries": sum(len(rows)
                               for segment in self._label_segments
                               for rows in segment["index"].values()),
            }

    # ------------------------------------------------------------------
    # Construction sugar
    # ------------------------------------------------------------------
    def add(self, subject: IRI, predicate: IRI, obj) -> Triple:
        """Add one statement, coercing plain Python objects to literals."""
        triple = Triple(subject, predicate, term_from_python(obj))
        self.store.add(triple)
        return triple

    def add_triples(self, triples: Iterable[Triple]) -> int:
        """Bulk-add pre-built triples; returns the number actually added."""
        return self.store.add_all(triples)

    def set_label(self, entity: IRI, label: str) -> None:
        """Attach a human-readable label to an entity (or relation)."""
        self.add(entity, LABEL, label)

    def set_description(self, entity: IRI, text: str) -> None:
        """Attach a long-form natural-language description to an entity."""
        self.add(entity, COMMENT, text)

    def set_type(self, entity: IRI, cls: IRI) -> None:
        """Declare ``entity`` an instance of class ``cls``."""
        self.add(entity, TYPE, cls)

    # ------------------------------------------------------------------
    # Label access (what LLM-facing code verbalizes)
    # ------------------------------------------------------------------
    def label(self, term: Term) -> str:
        """The best human-readable name for a term.

        Falls back to the IRI local name (with underscores split) so every
        term is always verbalizable.
        """
        if isinstance(term, Literal):
            return term.lexical
        with self._cache_lock:
            version = self._sync_caches_locked()
            cached = self._label_cache.get(term)
            if cached is not None:
                self._cache_hits += 1
                return cached
        # Store scan outside the lock; the miss is only counted under the
        # second acquisition (a racing thread may have filled the entry,
        # in which case this lookup is served from cache and counts a hit).
        result = term.local_name.replace("_", " ")
        for t in self.store.match(term, LABEL, None):
            if isinstance(t.object, Literal):
                result = t.object.lexical
                break
        with self._cache_lock:
            cached = self._label_cache.get(term)
            if cached is not None and self._cache_version == version:
                self._cache_hits += 1
                return cached
            self._cache_misses += 1
            if self._cache_version == version:
                self._label_cache[term] = result
        return result

    def description(self, entity: IRI) -> Optional[str]:
        """The attached description of an entity, if any."""
        with self._cache_lock:
            version = self._sync_caches_locked()
            if entity in self._description_cache:
                self._cache_hits += 1
                return self._description_cache[entity]
        result: Optional[str] = None
        for t in self.store.match(entity, COMMENT, None):
            if isinstance(t.object, Literal):
                result = t.object.lexical
                break
        with self._cache_lock:
            if entity in self._description_cache and \
                    self._cache_version == version:
                self._cache_hits += 1
                return self._description_cache[entity]
            self._cache_misses += 1
            if self._cache_version == version:
                self._description_cache[entity] = result
        return result

    def types(self, entity: IRI) -> List[IRI]:
        """The declared classes of an entity."""
        with self._cache_lock:
            version = self._sync_caches_locked()
            cached = self._types_cache.get(entity)
            if cached is not None:
                self._cache_hits += 1
                return list(cached)
        result = [t.object for t in self.store.match(entity, TYPE, None)
                  if isinstance(t.object, IRI)]
        with self._cache_lock:
            cached = self._types_cache.get(entity)
            if cached is not None and self._cache_version == version:
                self._cache_hits += 1
                return list(cached)
            self._cache_misses += 1
            if self._cache_version == version:
                self._types_cache[entity] = result
        return list(result)

    def instances(self, cls: IRI) -> List[IRI]:
        """All declared instances of a class."""
        return [t.subject for t in self.store.match(None, TYPE, cls)]

    def _backing_stores(self) -> Sequence[TripleStore]:
        """The independently-versioned stores behind ``self.store``.

        A :class:`~repro.kg.sharding.ShardedTripleStore` exposes its
        sub-stores via ``shards``; anything else is one backing store.
        """
        shards = getattr(self.store, "shards", None)
        return tuple(shards) if shards else (self.store,)

    def find_by_label(self, label: str) -> List[IRI]:
        """Entities whose label matches ``label`` case-insensitively.

        Answered from a *segmented* label→entities reverse index: one
        segment per backing store (per shard when the store is sharded),
        each keyed off that store's own version. A write to one shard
        rebuilds only that shard's segment, so interleaved write/read
        workloads keep their hit rate instead of cold-starting the whole
        index on every version bump. Lookups merge the per-segment entry
        lists by ``(label-object, subject)`` term key — exactly the order
        the unsharded single-index build produced.
        """
        wanted = label.strip().lower()
        rows: List[Tuple[tuple, IRI]] = []
        with self._cache_lock:
            version = self._sync_caches_locked()
            backings = self._backing_stores()
            if len(self._label_segments) != len(backings):
                self._label_segments = [
                    {"version": -1, "index": {}} for _ in backings]
            fresh = True
            for segment, backing in zip(self._label_segments, backings):
                if segment["version"] != backing.version:
                    built: Dict[str, List[Tuple[tuple, IRI]]] = {}
                    for t in backing.match(None, LABEL, None):
                        if isinstance(t.object, Literal):
                            built.setdefault(
                                t.object.lexical.lower(), []).append(
                                ((_term_key(t.object),
                                  _term_key(t.subject)), t.subject))
                    segment["index"] = built
                    segment["version"] = backing.version
                    self._label_segment_rebuilds += 1
                    fresh = False
            if fresh:
                self._cache_hits += 1
            else:
                self._cache_misses += 1
            for segment in self._label_segments:
                rows.extend(segment["index"].get(wanted, ()))
        rows.sort(key=lambda row: row[0])
        out = [entity for _, entity in rows]
        if not out:
            # Fall back to local-name matching so generated IRIs resolve
            # too. This index stays global (keyed off the façade version):
            # it is built in store insertion order, which cannot be
            # decomposed per shard, and the fallback only serves misses.
            with self._cache_lock:
                local_index = self._local_name_index \
                    if self._cache_version == version else None
            if local_index is None:
                built_local: Dict[str, List[IRI]] = {}
                for entity in self.store.entities():
                    built_local.setdefault(
                        entity.local_name.lower(), []).append(entity)
                with self._cache_lock:
                    if self._cache_version == version:
                        if self._local_name_index is None:
                            self._local_name_index = built_local
                        local_index = self._local_name_index
                    else:
                        local_index = built_local
            token = wanted.replace(" ", "_")
            out = list(local_index.get(token, ()))
        return out

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------
    def outgoing(self, entity: IRI) -> List[Triple]:
        """Triples with ``entity`` as subject."""
        return self.store.match(entity, None, None)

    def incoming(self, entity: IRI) -> List[Triple]:
        """Triples with ``entity`` as object."""
        return self.store.match(None, None, entity)

    def neighbours(self, entity: IRI, relation: Optional[IRI] = None,
                   direction: str = "both") -> List[Step]:
        """The one-hop neighbourhood of an entity.

        ``direction`` is ``"out"``, ``"in"`` or ``"both"``. Literal
        neighbours are included for ``"out"`` steps (attribute values).
        """
        steps: List[Step] = []
        if direction in ("out", "both"):
            for t in self.store.match(entity, relation, None):
                steps.append((t.predicate, t.object, "out"))
        if direction in ("in", "both"):
            for t in self.store.match(None, relation, entity):
                steps.append((t.predicate, t.subject, "in"))
        return steps

    def degree(self, entity: IRI) -> int:
        """Total number of incident triples (in + out)."""
        return self.store.match_count(entity, None, None) + self.store.match_count(None, None, entity)

    def subgraph(self, seeds: Sequence[IRI], hops: int = 1,
                 max_triples: Optional[int] = None) -> TripleStore:
        """The k-hop neighbourhood around the seed entities.

        This is the retrieval primitive LARK, RoG, KG-GPT, KAPING and
        SPARQLGEN all share: gather every triple reachable within ``hops``
        edges of any seed, optionally capped at ``max_triples``.
        """
        out = TripleStore()
        frontier: Set[IRI] = set(seeds)
        visited: Set[IRI] = set()
        for _ in range(hops):
            next_frontier: Set[IRI] = set()
            for node in sorted(frontier, key=lambda e: e.value):
                if node in visited:
                    continue
                visited.add(node)
                for t in self.outgoing(node) + self.incoming(node):
                    if max_triples is not None and len(out) >= max_triples:
                        return out
                    out.add(t)
                    for term in (t.subject, t.object):
                        if isinstance(term, IRI) and term not in visited:
                            next_frontier.add(term)
            frontier = next_frontier
        return out

    def paths(self, source: IRI, target: IRI, max_hops: int = 3,
              max_paths: int = 25) -> List[List[Step]]:
        """Simple relation paths from ``source`` to ``target`` (both directions).

        Each path is a list of steps; used by multi-hop QA and question
        generation. Breadth-first so shorter paths come first.
        """
        results: List[List[Step]] = []
        queue: deque = deque([(source, [])])
        while queue and len(results) < max_paths:
            node, path = queue.popleft()
            if len(path) >= max_hops:
                continue
            for relation, neighbour, direction in self.neighbours(node):
                if not isinstance(neighbour, IRI):
                    continue
                if any(step[1] == neighbour for step in path) or neighbour == source:
                    continue
                new_path = path + [(relation, neighbour, direction)]
                if neighbour == target:
                    results.append(new_path)
                    if len(results) >= max_paths:
                        break
                else:
                    queue.append((neighbour, new_path))
        return results

    def random_walk(self, start: IRI, length: int, rng) -> List[Step]:
        """A seeded random walk used by dataset and question generators."""
        walk: List[Step] = []
        node = start
        for _ in range(length):
            steps = [s for s in self.neighbours(node, direction="out") if isinstance(s[1], IRI)]
            if not steps:
                break
            steps.sort(key=lambda s: (s[0].value, s[1].value if isinstance(s[1], IRI) else ""))
            relation, neighbour, direction = steps[rng.randrange(len(steps))]
            walk.append((relation, neighbour, direction))
            node = neighbour  # type: ignore[assignment]
        return walk

    # ------------------------------------------------------------------
    # Verbalization (shared by RQ1, fact checking, RAG, QA)
    # ------------------------------------------------------------------
    def verbalize_triple(self, triple: Triple) -> str:
        """Render a triple as a short English sentence.

        This is the "triple verbalization" step the survey's fact-checking
        and KG-to-text sections rely on.
        """
        subject = self.label(triple.subject)
        predicate = self.label(triple.predicate)
        obj = self.label(triple.object)
        return f"{subject} {_humanize_relation(predicate)} {obj}."

    def verbalize(self, triples: Iterable[Triple]) -> str:
        """Render a set of triples as a sentence-per-triple paragraph."""
        return " ".join(self.verbalize_triple(t) for t in triples)

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Store statistics for reports."""
        return self.store.stats()

    def copy(self, name: Optional[str] = None) -> "KnowledgeGraph":
        """A deep-enough copy (triples are immutable) of this graph."""
        return KnowledgeGraph(self.store.copy(), name=name or self.name)

    def save(self, path: str, format: str = "nt",
             prefixes: Optional[Dict[str, str]] = None) -> None:
        """Persist the graph to disk as N-Triples (``nt``) or Turtle (``ttl``)."""
        from repro.kg import rdf
        if format == "nt":
            rdf.dump_ntriples(self.store, path)
        elif format == "ttl":
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(rdf.dumps_turtle(self.store, prefixes))
        else:
            raise ValueError(f"unknown format {format!r}; use 'nt' or 'ttl'")

    @classmethod
    def durable(cls, directory: str, snapshot_every: Optional[int] = None,
                obs=None, name: Optional[str] = None) -> "KnowledgeGraph":
        """A graph over a crash-recoverable store persisted in ``directory``.

        The backing :class:`~repro.kg.wal.DurableTripleStore` recovers any
        existing snapshot + WAL on construction and logs every subsequent
        mutation; see the ``repro.kg.wal`` module for the on-disk format.
        """
        from repro.kg.wal import DurableTripleStore
        store = DurableTripleStore(directory, snapshot_every=snapshot_every,
                                   obs=obs)
        return cls(store, name=name or directory.rstrip("/").rsplit("/", 1)[-1])

    @classmethod
    def sharded(cls, shards: Optional[int] = None,
                directory: Optional[str] = None,
                snapshot_every: Optional[int] = None, executor=None,
                obs=None, name: Optional[str] = None) -> "KnowledgeGraph":
        """A graph over a hash-sharded store (optionally durable).

        With ``directory`` the backing store is a
        :class:`~repro.kg.sharding.DurableShardedTripleStore` (per-shard
        WAL + global snapshot under ``directory``); without it, an
        in-memory :class:`~repro.kg.sharding.ShardedTripleStore`. Either
        way the store is byte-identical to an unsharded one, so the
        graph's caches and navigation helpers work unchanged — but the
        label reverse index and secondary indexes invalidate per shard.

        ``shards=None`` means "the directory's manifest count" for a
        durable graph (so resuming never has to repeat the count) and the
        package default for an in-memory one.
        """
        from repro.kg.sharding import (DEFAULT_SHARDS,
                                       DurableShardedTripleStore,
                                       ShardedTripleStore)
        if directory is not None:
            store: TripleStore = DurableShardedTripleStore(
                directory, shards=shards, snapshot_every=snapshot_every,
                executor=executor, obs=obs)
            return cls(store,
                       name=name or directory.rstrip("/").rsplit("/", 1)[-1])
        return cls(ShardedTripleStore(shards=shards or DEFAULT_SHARDS,
                                      executor=executor),
                   name=name or "kg")

    @classmethod
    def load(cls, path: str, name: Optional[str] = None) -> "KnowledgeGraph":
        """Load a graph saved with :meth:`save` (format inferred from suffix)."""
        from repro.kg import rdf
        if path.endswith(".ttl"):
            with open(path, "r", encoding="utf-8") as handle:
                triples = rdf.loads_turtle(handle.read())
            store = TripleStore(triples)
        else:
            store = rdf.load_ntriples(path)
        return cls(store, name=name or path.rsplit("/", 1)[-1])

    def __len__(self) -> int:
        return len(self.store)


def _humanize_relation(predicate_label: str) -> str:
    """Turn a camelCase/snake_case relation name into verb-ish English."""
    label = predicate_label.replace("_", " ")
    out = []
    for ch in label:
        if ch.isupper() and out and out[-1] != " ":
            out.append(" ")
        out.append(ch.lower())
    return "".join(out)
