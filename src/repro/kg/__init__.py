"""Knowledge-graph substrate: terms, triple store, graph façade, ontology,
RDF serialization and seeded synthetic datasets.

This package is the structured-knowledge half of the LLM⟷KG interplay. Every
higher-level package (completion, validation, QA, RAG, ...) builds on the
types exported here.
"""

from repro.kg.triples import (
    IRI,
    Literal,
    Term,
    Triple,
    Namespace,
    RDF,
    RDFS,
    OWL,
    XSD,
    REPRO,
)
from repro.kg.store import TripleStore
from repro.kg.graph import KnowledgeGraph
from repro.kg.ontology import Ontology, ClassDef, PropertyDef, PropertyCharacteristic
from repro.kg.wal import DurableTripleStore, RecoveryReport, WriteAheadLog, recover
from repro.kg.sharding import (DurableShardedTripleStore, ShardedTripleStore,
                               recover_sharded, shard_of)
from repro.kg.replication import (
    PartitionWindow,
    ReplicatedShardedTripleStore,
    ReplicationError,
    ShardTransport,
    ShardUnavailableError,
    StaleReadError,
    TransportProfile,
    load_schedule_jsonl,
)
from repro.kg.indexes import FullTextIndex, NumericIndex

__all__ = [
    "IRI",
    "Literal",
    "Term",
    "Triple",
    "Namespace",
    "RDF",
    "RDFS",
    "OWL",
    "XSD",
    "REPRO",
    "TripleStore",
    "KnowledgeGraph",
    "Ontology",
    "ClassDef",
    "PropertyDef",
    "PropertyCharacteristic",
    "DurableTripleStore",
    "RecoveryReport",
    "WriteAheadLog",
    "recover",
    "ShardedTripleStore",
    "DurableShardedTripleStore",
    "recover_sharded",
    "shard_of",
    "FullTextIndex",
    "NumericIndex",
    "PartitionWindow",
    "ReplicatedShardedTripleStore",
    "ReplicationError",
    "ShardTransport",
    "ShardUnavailableError",
    "StaleReadError",
    "TransportProfile",
    "load_schedule_jsonl",
]
