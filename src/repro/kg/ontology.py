"""Ontology model: classes, property definitions, and RDFS-style closure.

The survey's RQ2 (ontology generation) and RQ3 (inconsistency detection)
both need a first-class ontology object — a schema layer over the instance
triples. We support the OWL-lite-ish fragment the surveyed systems use:
subclass hierarchies, domain/range, disjointness, and the property
characteristics (functional, symmetric, transitive, ...) that the
inconsistency detectors check.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.kg.store import TripleStore
from repro.kg.triples import IRI, Literal, OWL, RDF, RDFS, Triple


class PropertyCharacteristic(enum.Enum):
    """OWL property characteristics relevant to consistency checking."""

    FUNCTIONAL = "functional"
    INVERSE_FUNCTIONAL = "inverse_functional"
    SYMMETRIC = "symmetric"
    ASYMMETRIC = "asymmetric"
    TRANSITIVE = "transitive"
    IRREFLEXIVE = "irreflexive"


@dataclass
class ClassDef:
    """A class (concept) in the ontology."""

    iri: IRI
    label: str
    parents: Set[IRI] = field(default_factory=set)
    disjoint_with: Set[IRI] = field(default_factory=set)
    description: Optional[str] = None


@dataclass
class PropertyDef:
    """A property (relation) with schema constraints."""

    iri: IRI
    label: str
    domain: Optional[IRI] = None
    range: Optional[IRI] = None
    characteristics: Set[PropertyCharacteristic] = field(default_factory=set)
    inverse_of: Optional[IRI] = None
    description: Optional[str] = None

    def is_functional(self) -> bool:
        """True when each subject may have at most one object."""
        return PropertyCharacteristic.FUNCTIONAL in self.characteristics


class Ontology:
    """A schema: classes with a subclass DAG plus property definitions."""

    def __init__(self, name: str = "ontology"):
        self.name = name
        self.classes: Dict[IRI, ClassDef] = {}
        self.properties: Dict[IRI, PropertyDef] = {}

    # ------------------------------------------------------------------
    # Authoring
    # ------------------------------------------------------------------
    def add_class(self, iri: IRI, label: Optional[str] = None,
                  parents: Iterable[IRI] = (), description: Optional[str] = None) -> ClassDef:
        """Declare (or extend) a class. Re-declaring merges parents."""
        cls = self.classes.get(iri)
        if cls is None:
            cls = ClassDef(iri=iri, label=label or iri.local_name.replace("_", " "),
                           description=description)
            self.classes[iri] = cls
        cls.parents.update(parents)
        if description and not cls.description:
            cls.description = description
        for parent in parents:
            if parent not in self.classes:
                self.add_class(parent)
        return cls

    def add_property(self, iri: IRI, label: Optional[str] = None,
                     domain: Optional[IRI] = None, range: Optional[IRI] = None,
                     characteristics: Iterable[PropertyCharacteristic] = (),
                     inverse_of: Optional[IRI] = None,
                     description: Optional[str] = None) -> PropertyDef:
        """Declare (or extend) a property definition."""
        prop = self.properties.get(iri)
        if prop is None:
            prop = PropertyDef(iri=iri, label=label or iri.local_name.replace("_", " "),
                               domain=domain, range=range, inverse_of=inverse_of,
                               description=description)
            self.properties[iri] = prop
        prop.characteristics.update(characteristics)
        if domain is not None:
            prop.domain = domain
        if range is not None:
            prop.range = range
        if inverse_of is not None:
            prop.inverse_of = inverse_of
        return prop

    def set_disjoint(self, a: IRI, b: IRI) -> None:
        """Declare two classes disjoint (symmetrically)."""
        self.add_class(a)
        self.add_class(b)
        self.classes[a].disjoint_with.add(b)
        self.classes[b].disjoint_with.add(a)

    # ------------------------------------------------------------------
    # Hierarchy queries
    # ------------------------------------------------------------------
    def superclasses(self, cls: IRI, include_self: bool = False) -> Set[IRI]:
        """The transitive superclasses of ``cls``."""
        out: Set[IRI] = {cls} if include_self else set()
        stack = list(self.classes.get(cls, ClassDef(cls, "")).parents)
        while stack:
            parent = stack.pop()
            if parent in out:
                continue
            out.add(parent)
            stack.extend(self.classes.get(parent, ClassDef(parent, "")).parents)
        return out

    def subclasses(self, cls: IRI, include_self: bool = False) -> Set[IRI]:
        """The transitive subclasses of ``cls``."""
        out: Set[IRI] = {cls} if include_self else set()
        changed = True
        while changed:
            changed = False
            for candidate, cdef in self.classes.items():
                if candidate in out:
                    continue
                if cdef.parents & (out | {cls}):
                    out.add(candidate)
                    changed = True
        out.discard(cls)
        if include_self:
            out.add(cls)
        return out

    def is_subclass_of(self, sub: IRI, sup: IRI) -> bool:
        """True when ``sub`` ⊑ ``sup`` (reflexively)."""
        return sub == sup or sup in self.superclasses(sub)

    def are_disjoint(self, a: IRI, b: IRI) -> bool:
        """True when the two classes (or any of their ancestors) are declared disjoint."""
        a_up = self.superclasses(a, include_self=True)
        b_up = self.superclasses(b, include_self=True)
        for cls in a_up:
            declared = self.classes.get(cls)
            if declared and declared.disjoint_with & b_up:
                return True
        return False

    def roots(self) -> List[IRI]:
        """Classes with no declared parents."""
        return sorted((iri for iri, c in self.classes.items() if not c.parents),
                      key=lambda i: i.value)

    def depth(self, cls: IRI) -> int:
        """Length of the longest path from ``cls`` up to a root."""
        cdef = self.classes.get(cls)
        if cdef is None or not cdef.parents:
            return 0
        return 1 + max(self.depth(p) for p in cdef.parents)

    # ------------------------------------------------------------------
    # Instance-level reasoning helpers
    # ------------------------------------------------------------------
    def instance_types(self, store: TripleStore, entity: IRI) -> Set[IRI]:
        """Declared + inferred (via subclass closure) types of an entity."""
        declared = {t.object for t in store.match(entity, RDF.type, None)
                    if isinstance(t.object, IRI)}
        out: Set[IRI] = set()
        for cls in declared:
            out |= self.superclasses(cls, include_self=True)
        return out

    def rdfs_closure(self, store: TripleStore) -> TripleStore:
        """Materialize the RDFS-style closure of ``store`` under this schema.

        Adds: type triples implied by subclass axioms; types implied by
        domain/range; symmetric and transitive property consequences;
        inverse property consequences. Returns a new store (input unchanged).
        """
        out = store.copy()
        changed = True
        while changed:
            changed = False
            additions: List[Triple] = []
            for t in out:
                # Subclass propagation over rdf:type
                if t.predicate == RDF.type and isinstance(t.object, IRI):
                    for sup in self.superclasses(t.object):
                        additions.append(Triple(t.subject, RDF.type, sup))
                prop = self.properties.get(t.predicate)
                if prop is None:
                    continue
                if prop.domain is not None:
                    additions.append(Triple(t.subject, RDF.type, prop.domain))
                if prop.range is not None and isinstance(t.object, IRI):
                    additions.append(Triple(t.object, RDF.type, prop.range))
                if PropertyCharacteristic.SYMMETRIC in prop.characteristics and isinstance(t.object, IRI):
                    additions.append(Triple(t.object, t.predicate, t.subject))
                if prop.inverse_of is not None and isinstance(t.object, IRI):
                    additions.append(Triple(t.object, prop.inverse_of, t.subject))
                if PropertyCharacteristic.TRANSITIVE in prop.characteristics and isinstance(t.object, IRI):
                    for t2 in out.match(t.object, t.predicate, None):
                        if isinstance(t2.object, IRI):
                            additions.append(Triple(t.subject, t.predicate, t2.object))
            for triple in additions:
                if out.add(triple):
                    changed = True
        return out

    # ------------------------------------------------------------------
    # Serialization to triples (so ontologies live in the same store)
    # ------------------------------------------------------------------
    def to_triples(self) -> List[Triple]:
        """Serialize the schema into RDFS/OWL triples."""
        out: List[Triple] = []
        for iri, cls in sorted(self.classes.items(), key=lambda kv: kv[0].value):
            out.append(Triple(iri, RDF.type, OWL.Class))
            out.append(Triple(iri, RDFS.label, Literal(cls.label)))
            if cls.description:
                out.append(Triple(iri, RDFS.comment, Literal(cls.description)))
            for parent in sorted(cls.parents, key=lambda i: i.value):
                out.append(Triple(iri, RDFS.subClassOf, parent))
            for other in sorted(cls.disjoint_with, key=lambda i: i.value):
                out.append(Triple(iri, OWL.disjointWith, other))
        char_iri = {
            PropertyCharacteristic.FUNCTIONAL: OWL.FunctionalProperty,
            PropertyCharacteristic.INVERSE_FUNCTIONAL: OWL.InverseFunctionalProperty,
            PropertyCharacteristic.SYMMETRIC: OWL.SymmetricProperty,
            PropertyCharacteristic.ASYMMETRIC: OWL.AsymmetricProperty,
            PropertyCharacteristic.TRANSITIVE: OWL.TransitiveProperty,
            PropertyCharacteristic.IRREFLEXIVE: OWL.IrreflexiveProperty,
        }
        for iri, prop in sorted(self.properties.items(), key=lambda kv: kv[0].value):
            out.append(Triple(iri, RDF.type, OWL.ObjectProperty))
            out.append(Triple(iri, RDFS.label, Literal(prop.label)))
            if prop.description:
                out.append(Triple(iri, RDFS.comment, Literal(prop.description)))
            if prop.domain is not None:
                out.append(Triple(iri, RDFS.domain, prop.domain))
            if prop.range is not None:
                out.append(Triple(iri, RDFS.range, prop.range))
            if prop.inverse_of is not None:
                out.append(Triple(iri, OWL.inverseOf, prop.inverse_of))
            for char in prop.characteristics:
                out.append(Triple(iri, RDF.type, char_iri[char]))
        return out

    @classmethod
    def from_triples(cls, triples: Iterable[Triple], name: str = "ontology") -> "Ontology":
        """Rebuild an ontology from its :meth:`to_triples` serialization."""
        onto = cls(name=name)
        iri_char = {
            OWL.FunctionalProperty: PropertyCharacteristic.FUNCTIONAL,
            OWL.InverseFunctionalProperty: PropertyCharacteristic.INVERSE_FUNCTIONAL,
            OWL.SymmetricProperty: PropertyCharacteristic.SYMMETRIC,
            OWL.AsymmetricProperty: PropertyCharacteristic.ASYMMETRIC,
            OWL.TransitiveProperty: PropertyCharacteristic.TRANSITIVE,
            OWL.IrreflexiveProperty: PropertyCharacteristic.IRREFLEXIVE,
        }
        triple_list = list(triples)
        for t in triple_list:
            if t.predicate == RDF.type and t.object == OWL.Class:
                onto.add_class(t.subject)
            elif t.predicate == RDF.type and t.object == OWL.ObjectProperty:
                onto.add_property(t.subject)
        for t in triple_list:
            if t.predicate == RDFS.subClassOf and isinstance(t.object, IRI):
                onto.add_class(t.subject, parents=[t.object])
            elif t.predicate == OWL.disjointWith and isinstance(t.object, IRI):
                onto.set_disjoint(t.subject, t.object)
            elif t.predicate == RDFS.label and isinstance(t.object, Literal):
                if t.subject in onto.classes:
                    onto.classes[t.subject].label = t.object.lexical
                if t.subject in onto.properties:
                    onto.properties[t.subject].label = t.object.lexical
            elif t.predicate == RDFS.comment and isinstance(t.object, Literal):
                if t.subject in onto.classes:
                    onto.classes[t.subject].description = t.object.lexical
                if t.subject in onto.properties:
                    onto.properties[t.subject].description = t.object.lexical
            elif t.predicate == RDFS.domain and isinstance(t.object, IRI):
                onto.add_property(t.subject, domain=t.object)
            elif t.predicate == RDFS.range and isinstance(t.object, IRI):
                onto.add_property(t.subject, range=t.object)
            elif t.predicate == OWL.inverseOf and isinstance(t.object, IRI):
                onto.add_property(t.subject, inverse_of=t.object)
            elif t.predicate == RDF.type and t.object in iri_char:
                onto.add_property(t.subject, characteristics=[iri_char[t.object]])
        return onto

    # ------------------------------------------------------------------
    # Comparison (used by RQ2 ontology-generation scoring)
    # ------------------------------------------------------------------
    def f1_against(self, gold: "Ontology", match_on: str = "iri") -> Dict[str, float]:
        """Precision/recall/F1 of this ontology's classes, subclass edges and
        properties against a gold ontology. Used to score generated ontologies.

        ``match_on="label"`` compares case-normalized labels instead of IRIs,
        for learners that mint their own namespace.
        """
        def prf(pred: Set, gold_set: Set) -> Tuple[float, float, float]:
            if not pred and not gold_set:
                return 1.0, 1.0, 1.0
            tp = len(pred & gold_set)
            p = tp / len(pred) if pred else 0.0
            r = tp / len(gold_set) if gold_set else 0.0
            f = 2 * p * r / (p + r) if p + r else 0.0
            return p, r, f

        if match_on == "label":
            def class_key(onto: "Ontology", iri: IRI) -> str:
                return onto.classes[iri].label.strip().lower()

            def prop_key(onto: "Ontology", iri: IRI) -> str:
                return onto.properties[iri].label.strip().lower()

            pred_classes = {class_key(self, c) for c in self.classes}
            gold_classes = {class_key(gold, c) for c in gold.classes}
            pred_edges = {(class_key(self, c), class_key(self, p))
                          for c, d in self.classes.items() for p in d.parents
                          if p in self.classes}
            gold_edges = {(class_key(gold, c), class_key(gold, p))
                          for c, d in gold.classes.items() for p in d.parents
                          if p in gold.classes}
            pred_props = {prop_key(self, p) for p in self.properties}
            gold_props = {prop_key(gold, p) for p in gold.properties}
        elif match_on == "iri":
            pred_classes = set(self.classes)
            gold_classes = set(gold.classes)
            pred_edges = {(c, p) for c, d in self.classes.items() for p in d.parents}
            gold_edges = {(c, p) for c, d in gold.classes.items() for p in d.parents}
            pred_props = set(self.properties)
            gold_props = set(gold.properties)
        else:
            raise ValueError("match_on must be 'iri' or 'label'")
        cp, cr, cf = prf(pred_classes, gold_classes)
        ep, er, ef = prf(pred_edges, gold_edges)
        pp, pr, pf = prf(pred_props, gold_props)
        return {
            "class_precision": cp, "class_recall": cr, "class_f1": cf,
            "edge_precision": ep, "edge_recall": er, "edge_f1": ef,
            "property_precision": pp, "property_recall": pr, "property_f1": pf,
        }
