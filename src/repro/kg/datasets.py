"""Seeded synthetic knowledge graphs.

The surveyed systems evaluate on Freebase, Wikidata, DBpedia and domain KGs
we cannot ship. These generators produce structurally comparable graphs —
typed entities, labelled relations, a schema ontology, multi-hop structure,
functional properties, descriptions — with *gold labels for free*, which is
what lets every benchmark in this repo compute exact metrics.

All generators take a ``seed`` and are fully deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.kg.graph import KnowledgeGraph
from repro.kg.ontology import Ontology, PropertyCharacteristic
from repro.kg.triples import IRI, Literal, Namespace, XSD

EX = Namespace("http://repro.dev/kg/")
SCHEMA = Namespace("http://repro.dev/schema/")

_GIVEN = [
    "Alice", "Boris", "Chandra", "Dalia", "Emre", "Farah", "Goran", "Hana",
    "Imani", "Jonas", "Keiko", "Liam", "Mira", "Nadia", "Omar", "Priya",
    "Quentin", "Rosa", "Sven", "Tariq", "Uma", "Viktor", "Wei", "Ximena",
    "Yara", "Zoltan", "Anouk", "Bram", "Carmen", "Dmitri", "Elif", "Felix",
]
_FAMILY = [
    "Abbas", "Berger", "Chen", "Dubois", "Eriksen", "Fontana", "Garcia",
    "Haddad", "Ivanov", "Jensen", "Kato", "Lindqvist", "Moreau", "Novak",
    "Okafor", "Petrov", "Quispe", "Rahman", "Silva", "Tanaka", "Unger",
    "Vargas", "Weber", "Xu", "Yilmaz", "Zhang",
]
_CITY_PARTS = (
    ["North", "South", "East", "West", "New", "Old", "Port", "Lake", "Fort", "Mount"],
    ["haven", "ford", "brook", "field", "ville", "burg", "stad", "minster", "gate", "holm"],
)
_COUNTRY_NAMES = [
    "Avaloria", "Borduria", "Costaguana", "Drovania", "Elbonia", "Florin",
    "Genovia", "Havenland", "Illyria", "Jotunheim", "Krakozhia", "Latveria",
    "Molvania", "Novistrana", "Orsinia", "Pottsylvania",
]
_COMPANY_PARTS = (
    ["Acme", "Globex", "Initech", "Umbra", "Vertex", "Nimbus", "Quanta",
     "Helix", "Strata", "Apex", "Zenith", "Orbit"],
    ["Corp", "Systems", "Labs", "Industries", "Dynamics", "Analytics",
     "Networks", "Holdings"],
)
_UNIVERSITY_CITIES_HINT = ["Institute of Technology", "University", "Polytechnic", "College"]
_MOVIE_ADJ = ["Silent", "Crimson", "Lost", "Golden", "Midnight", "Broken",
              "Electric", "Distant", "Hidden", "Final", "Burning", "Frozen"]
_MOVIE_NOUN = ["Horizon", "Empire", "Garden", "Voyage", "Symphony", "Mirror",
               "Harvest", "Protocol", "Labyrinth", "Covenant", "Paradox", "Shore"]
_GENRES = ["Drama", "Comedy", "Thriller", "Science_Fiction", "Documentary",
           "Romance", "Horror", "Animation"]


def _unique_names(rng: random.Random, pool_a: Sequence[str], pool_b: Sequence[str],
                  n: int, joiner: str = " ") -> List[str]:
    """Deterministically draw ``n`` unique two-part names, suffixing on overflow."""
    combos = [(a, b) for a in pool_a for b in pool_b]
    rng.shuffle(combos)
    out = []
    index = 0
    while len(out) < n:
        if index < len(combos):
            a, b = combos[index]
            name = f"{a}{joiner}{b}"
        else:
            a, b = combos[index % len(combos)]
            name = f"{a}{joiner}{b} {_roman(index // len(combos) + 1)}"
        out.append(name)
        index += 1
    return out


def _roman(n: int) -> str:
    numerals = [(10, "X"), (9, "IX"), (5, "V"), (4, "IV"), (1, "I")]
    out = []
    for value, symbol in numerals:
        while n >= value:
            out.append(symbol)
            n -= value
    return "".join(out)


def _mint(label: str) -> IRI:
    return EX[label.replace(" ", "_").replace("'", "")]


@dataclass
class Dataset:
    """A generated KG together with its schema and generation metadata."""

    kg: KnowledgeGraph
    ontology: Ontology
    seed: int
    name: str
    metadata: Dict[str, object] = field(default_factory=dict)

    def stats(self) -> Dict[str, int]:
        """Convenience passthrough to the graph's statistics."""
        return self.kg.stats()


# ---------------------------------------------------------------------------
# Encyclopedia (Freebase/Wikidata analogue)
# ---------------------------------------------------------------------------

def encyclopedia_ontology() -> Ontology:
    """Schema for the general-knowledge graph (people, places, organizations)."""
    onto = Ontology("encyclopedia")
    onto.add_class(SCHEMA.Agent, "Agent")
    onto.add_class(SCHEMA.Person, "Person", parents=[SCHEMA.Agent])
    onto.add_class(SCHEMA.Organization, "Organization", parents=[SCHEMA.Agent])
    onto.add_class(SCHEMA.Company, "Company", parents=[SCHEMA.Organization])
    onto.add_class(SCHEMA.University, "University", parents=[SCHEMA.Organization])
    onto.add_class(SCHEMA.Place, "Place")
    onto.add_class(SCHEMA.City, "City", parents=[SCHEMA.Place])
    onto.add_class(SCHEMA.Country, "Country", parents=[SCHEMA.Place])
    onto.set_disjoint(SCHEMA.Person, SCHEMA.Place)
    onto.set_disjoint(SCHEMA.Person, SCHEMA.Organization)
    onto.set_disjoint(SCHEMA.City, SCHEMA.Country)
    onto.add_property(SCHEMA.bornIn, "born in", domain=SCHEMA.Person, range=SCHEMA.City,
                      characteristics=[PropertyCharacteristic.FUNCTIONAL])
    onto.add_property(SCHEMA.citizenOf, "citizen of", domain=SCHEMA.Person, range=SCHEMA.Country)
    onto.add_property(SCHEMA.locatedIn, "located in", domain=SCHEMA.Place, range=SCHEMA.Country,
                      characteristics=[PropertyCharacteristic.FUNCTIONAL])
    onto.add_property(SCHEMA.headquarteredIn, "headquartered in",
                      domain=SCHEMA.Organization, range=SCHEMA.City,
                      characteristics=[PropertyCharacteristic.FUNCTIONAL])
    onto.add_property(SCHEMA.capitalOf, "capital of", domain=SCHEMA.City, range=SCHEMA.Country,
                      characteristics=[PropertyCharacteristic.FUNCTIONAL,
                                       PropertyCharacteristic.INVERSE_FUNCTIONAL])
    onto.add_property(SCHEMA.foundedBy, "founded by", domain=SCHEMA.Organization,
                      range=SCHEMA.Person)
    onto.add_property(SCHEMA.worksFor, "works for", domain=SCHEMA.Person,
                      range=SCHEMA.Organization)
    onto.add_property(SCHEMA.educatedAt, "educated at", domain=SCHEMA.Person,
                      range=SCHEMA.University)
    onto.add_property(SCHEMA.spouse, "spouse", domain=SCHEMA.Person, range=SCHEMA.Person,
                      characteristics=[PropertyCharacteristic.SYMMETRIC,
                                       PropertyCharacteristic.IRREFLEXIVE])
    onto.add_property(SCHEMA.birthYear, "birth year", domain=SCHEMA.Person,
                      characteristics=[PropertyCharacteristic.FUNCTIONAL])
    return onto


def encyclopedia_kg(seed: int = 0, n_people: int = 120, n_cities: int = 24,
                    n_countries: int = 8, n_companies: int = 16,
                    n_universities: int = 8) -> Dataset:
    """A Freebase-like general-knowledge graph with gold schema conformance.

    Every generated triple respects the schema in
    :func:`encyclopedia_ontology`; the validation benchmarks inject
    violations *afterwards*, so detected violations are exactly the
    injected ones.
    """
    rng = random.Random(seed)
    kg = KnowledgeGraph(name=f"encyclopedia-{seed}")
    onto = encyclopedia_ontology()
    kg.add_triples(onto.to_triples())

    countries = []
    for name in rng.sample(_COUNTRY_NAMES, n_countries):
        iri = _mint(name)
        kg.set_type(iri, SCHEMA.Country)
        kg.set_label(iri, name)
        countries.append(iri)

    cities = []
    capitals: Dict[IRI, IRI] = {}
    for name in _unique_names(rng, *_CITY_PARTS, n=n_cities, joiner=""):
        iri = _mint(name)
        kg.set_type(iri, SCHEMA.City)
        kg.set_label(iri, name)
        country = countries[len(cities) % len(countries)]
        kg.add(iri, SCHEMA.locatedIn, country)
        if country not in capitals:
            capitals[country] = iri
            kg.add(iri, SCHEMA.capitalOf, country)
        cities.append(iri)

    universities = []
    for i in range(n_universities):
        city = cities[rng.randrange(len(cities))]
        name = f"{kg.label(city)} {_UNIVERSITY_CITIES_HINT[i % len(_UNIVERSITY_CITIES_HINT)]}"
        iri = _mint(name)
        kg.set_type(iri, SCHEMA.University)
        kg.set_label(iri, name)
        kg.add(iri, SCHEMA.headquarteredIn, city)
        universities.append(iri)

    companies = []
    for name in _unique_names(rng, *_COMPANY_PARTS, n=n_companies):
        iri = _mint(name)
        kg.set_type(iri, SCHEMA.Company)
        kg.set_label(iri, name)
        kg.add(iri, SCHEMA.headquarteredIn, cities[rng.randrange(len(cities))])
        companies.append(iri)

    people = []
    for name in _unique_names(rng, _GIVEN, _FAMILY, n=n_people):
        iri = _mint(name)
        kg.set_type(iri, SCHEMA.Person)
        kg.set_label(iri, name)
        birth_city = cities[rng.randrange(len(cities))]
        kg.add(iri, SCHEMA.bornIn, birth_city)
        country = kg.store.value(birth_city, SCHEMA.locatedIn)
        if country is not None:
            kg.add(iri, SCHEMA.citizenOf, country)
        kg.add(iri, SCHEMA.birthYear,
               Literal(str(rng.randrange(1940, 2005)), datatype=XSD.gYear))
        if rng.random() < 0.8:
            kg.add(iri, SCHEMA.worksFor, companies[rng.randrange(len(companies))])
        if rng.random() < 0.6:
            kg.add(iri, SCHEMA.educatedAt, universities[rng.randrange(len(universities))])
        people.append(iri)

    # Spouses: pair up a deterministic subset, symmetric closure applied.
    shuffled = people[:]
    rng.shuffle(shuffled)
    for a, b in zip(shuffled[0::2], shuffled[1::2]):
        if rng.random() < 0.5:
            kg.add(a, SCHEMA.spouse, b)
            kg.add(b, SCHEMA.spouse, a)

    for company in companies:
        founder = people[rng.randrange(len(people))]
        kg.add(company, SCHEMA.foundedBy, founder)

    # Descriptions for a subset (the KG-to-text gold side).
    for person in people[: n_people // 3]:
        born = kg.store.value(person, SCHEMA.bornIn)
        year = kg.store.value(person, SCHEMA.birthYear)
        if born is not None and year is not None:
            kg.set_description(
                person,
                f"{kg.label(person)} is a person born in {kg.label(born)} in {year.lexical}.",
            )

    return Dataset(kg=kg, ontology=onto, seed=seed, name="encyclopedia",
                   metadata={"people": [p.value for p in people],
                             "cities": [c.value for c in cities],
                             "countries": [c.value for c in countries],
                             "companies": [c.value for c in companies],
                             "universities": [u.value for u in universities]})


# ---------------------------------------------------------------------------
# Family (multi-hop / FOL reasoning substrate)
# ---------------------------------------------------------------------------

def family_ontology() -> Ontology:
    """Schema for the kinship graph used by reasoning and multi-hop QA."""
    onto = Ontology("family")
    onto.add_class(SCHEMA.Person, "Person")
    onto.add_class(SCHEMA.Man, "Man", parents=[SCHEMA.Person])
    onto.add_class(SCHEMA.Woman, "Woman", parents=[SCHEMA.Person])
    onto.set_disjoint(SCHEMA.Man, SCHEMA.Woman)
    onto.add_property(SCHEMA.parentOf, "parent of", domain=SCHEMA.Person,
                      range=SCHEMA.Person,
                      characteristics=[PropertyCharacteristic.ASYMMETRIC,
                                       PropertyCharacteristic.IRREFLEXIVE],
                      inverse_of=SCHEMA.childOf)
    onto.add_property(SCHEMA.childOf, "child of", domain=SCHEMA.Person,
                      range=SCHEMA.Person, inverse_of=SCHEMA.parentOf)
    onto.add_property(SCHEMA.marriedTo, "married to", domain=SCHEMA.Person,
                      range=SCHEMA.Person,
                      characteristics=[PropertyCharacteristic.SYMMETRIC,
                                       PropertyCharacteristic.IRREFLEXIVE])
    onto.add_property(SCHEMA.siblingOf, "sibling of", domain=SCHEMA.Person,
                      range=SCHEMA.Person,
                      characteristics=[PropertyCharacteristic.SYMMETRIC,
                                       PropertyCharacteristic.IRREFLEXIVE])
    onto.add_property(SCHEMA.ancestorOf, "ancestor of", domain=SCHEMA.Person,
                      range=SCHEMA.Person,
                      characteristics=[PropertyCharacteristic.TRANSITIVE,
                                       PropertyCharacteristic.IRREFLEXIVE])
    onto.add_property(SCHEMA.livesIn, "lives in", domain=SCHEMA.Person,
                      characteristics=[PropertyCharacteristic.FUNCTIONAL])
    return onto


def family_kg(seed: int = 0, n_generations: int = 3, families: int = 6) -> Dataset:
    """A kinship graph: ``families`` founding couples, ``n_generations`` deep.

    parentOf/childOf inverses, marriedTo/siblingOf symmetry and the
    transitive ancestorOf closure are all materialized, making this the
    substrate for FOL query answering (E-REASON) and multi-hop QA (RQ5).
    """
    rng = random.Random(seed)
    kg = KnowledgeGraph(name=f"family-{seed}")
    onto = family_ontology()
    kg.add_triples(onto.to_triples())

    towns = [_mint(n) for n in _unique_names(rng, *_CITY_PARTS, n=families, joiner="")]
    for town in towns:
        kg.set_label(town, town.local_name)

    names = iter(_unique_names(rng, _GIVEN, _FAMILY, n=families * (2 ** (n_generations + 2))))

    def new_person(gender: str, town: IRI) -> IRI:
        name = next(names)
        iri = _mint(name)
        kg.set_type(iri, SCHEMA.Man if gender == "m" else SCHEMA.Woman)
        kg.set_type(iri, SCHEMA.Person)
        kg.set_label(iri, name)
        kg.add(iri, SCHEMA.livesIn, town)
        return iri

    all_people: List[IRI] = []
    parent_edges: List[Tuple[IRI, IRI]] = []
    for f in range(families):
        town = towns[f]
        father = new_person("m", town)
        mother = new_person("f", town)
        kg.add(father, SCHEMA.marriedTo, mother)
        kg.add(mother, SCHEMA.marriedTo, father)
        all_people.extend([father, mother])
        generation = [(father, mother)]
        for _ in range(n_generations):
            next_generation = []
            for dad, mom in generation:
                n_children = rng.randrange(1, 4)
                children = []
                for _ in range(n_children):
                    child = new_person(rng.choice("mf"), town)
                    for parent in (dad, mom):
                        kg.add(parent, SCHEMA.parentOf, child)
                        kg.add(child, SCHEMA.childOf, parent)
                        parent_edges.append((parent, child))
                    children.append(child)
                    all_people.append(child)
                for i, a in enumerate(children):
                    for b in children[i + 1:]:
                        kg.add(a, SCHEMA.siblingOf, b)
                        kg.add(b, SCHEMA.siblingOf, a)
                # Marry some children to fresh spouses to continue the line.
                for child in children:
                    if rng.random() < 0.7:
                        spouse = new_person(rng.choice("mf"), town)
                        kg.add(child, SCHEMA.marriedTo, spouse)
                        kg.add(spouse, SCHEMA.marriedTo, child)
                        all_people.append(spouse)
                        next_generation.append((child, spouse))
            generation = next_generation
            if not generation:
                break

    # Materialize the transitive ancestorOf closure.
    children_of: Dict[IRI, List[IRI]] = {}
    for parent, child in parent_edges:
        children_of.setdefault(parent, []).append(child)

    def descendants(node: IRI) -> List[IRI]:
        out = []
        stack = list(children_of.get(node, []))
        while stack:
            current = stack.pop()
            out.append(current)
            stack.extend(children_of.get(current, []))
        return out

    for person in list(children_of):
        for descendant in descendants(person):
            kg.add(person, SCHEMA.ancestorOf, descendant)

    return Dataset(kg=kg, ontology=onto, seed=seed, name="family",
                   metadata={"people": [p.value for p in all_people],
                             "towns": [t.value for t in towns]})


# ---------------------------------------------------------------------------
# Movie (KG-to-text / QA / chatbot substrate)
# ---------------------------------------------------------------------------

def movie_ontology() -> Ontology:
    """Schema for the film-domain graph."""
    onto = Ontology("movie")
    onto.add_class(SCHEMA.Person, "Person")
    onto.add_class(SCHEMA.Actor, "Actor", parents=[SCHEMA.Person])
    onto.add_class(SCHEMA.Director, "Director", parents=[SCHEMA.Person])
    onto.add_class(SCHEMA.Movie, "Movie")
    onto.add_class(SCHEMA.Genre, "Genre")
    onto.set_disjoint(SCHEMA.Person, SCHEMA.Movie)
    onto.set_disjoint(SCHEMA.Movie, SCHEMA.Genre)
    onto.add_property(SCHEMA.directedBy, "directed by", domain=SCHEMA.Movie,
                      range=SCHEMA.Director)
    onto.add_property(SCHEMA.starring, "starring", domain=SCHEMA.Movie, range=SCHEMA.Actor)
    onto.add_property(SCHEMA.hasGenre, "has genre", domain=SCHEMA.Movie, range=SCHEMA.Genre)
    onto.add_property(SCHEMA.releaseYear, "release year", domain=SCHEMA.Movie,
                      characteristics=[PropertyCharacteristic.FUNCTIONAL])
    onto.add_property(SCHEMA.sequelOf, "sequel of", domain=SCHEMA.Movie, range=SCHEMA.Movie,
                      characteristics=[PropertyCharacteristic.ASYMMETRIC,
                                       PropertyCharacteristic.FUNCTIONAL,
                                       PropertyCharacteristic.IRREFLEXIVE])
    onto.add_property(SCHEMA.wonAward, "won award", domain=SCHEMA.Movie)
    return onto


def movie_kg(seed: int = 0, n_movies: int = 60, n_actors: int = 40,
             n_directors: int = 12) -> Dataset:
    """A film-domain graph with actors, directors, genres and sequels."""
    rng = random.Random(seed)
    kg = KnowledgeGraph(name=f"movie-{seed}")
    onto = movie_ontology()
    kg.add_triples(onto.to_triples())

    genres = []
    for g in _GENRES:
        iri = _mint(g)
        kg.set_type(iri, SCHEMA.Genre)
        kg.set_label(iri, g.replace("_", " "))
        genres.append(iri)

    directors = []
    for name in _unique_names(rng, _GIVEN, _FAMILY, n=n_directors):
        iri = _mint("Dir " + name)
        kg.set_type(iri, SCHEMA.Director)
        kg.set_type(iri, SCHEMA.Person)
        kg.set_label(iri, name)
        directors.append(iri)

    actors = []
    for name in _unique_names(rng, list(reversed(_GIVEN)), _FAMILY, n=n_actors):
        iri = _mint("Act " + name)
        kg.set_type(iri, SCHEMA.Actor)
        kg.set_type(iri, SCHEMA.Person)
        kg.set_label(iri, name)
        actors.append(iri)

    movies = []
    titles = _unique_names(rng, _MOVIE_ADJ, _MOVIE_NOUN, n=n_movies)
    for title in titles:
        iri = _mint(title)
        kg.set_type(iri, SCHEMA.Movie)
        kg.set_label(iri, f"The {title}")
        kg.add(iri, SCHEMA.directedBy, directors[rng.randrange(len(directors))])
        for actor in rng.sample(actors, k=min(len(actors), rng.randrange(2, 5))):
            kg.add(iri, SCHEMA.starring, actor)
        kg.add(iri, SCHEMA.hasGenre, genres[rng.randrange(len(genres))])
        kg.add(iri, SCHEMA.releaseYear,
               Literal(str(rng.randrange(1975, 2024)), datatype=XSD.gYear))
        if movies and rng.random() < 0.15:
            kg.add(iri, SCHEMA.sequelOf, movies[rng.randrange(len(movies))])
        if rng.random() < 0.2:
            kg.add(iri, SCHEMA.wonAward, Literal("Golden Reel"))
        movies.append(iri)

    return Dataset(kg=kg, ontology=onto, seed=seed, name="movie",
                   metadata={"movies": [m.value for m in movies],
                             "actors": [a.value for a in actors],
                             "directors": [d.value for d in directors],
                             "genres": [g.value for g in genres]})


# ---------------------------------------------------------------------------
# COVID-19 biomedical (RQ2 ontology-generation substrate, after [28])
# ---------------------------------------------------------------------------

def covid_ontology() -> Ontology:
    """The gold biomedical schema the ontology-generation experiment targets."""
    onto = Ontology("covid")
    onto.add_class(SCHEMA.BiomedicalEntity, "Biomedical Entity")
    onto.add_class(SCHEMA.Disease, "Disease", parents=[SCHEMA.BiomedicalEntity])
    onto.add_class(SCHEMA.Pathogen, "Pathogen", parents=[SCHEMA.BiomedicalEntity])
    onto.add_class(SCHEMA.Virus, "Virus", parents=[SCHEMA.Pathogen])
    onto.add_class(SCHEMA.Symptom, "Symptom", parents=[SCHEMA.BiomedicalEntity])
    onto.add_class(SCHEMA.Intervention, "Intervention", parents=[SCHEMA.BiomedicalEntity])
    onto.add_class(SCHEMA.Treatment, "Treatment", parents=[SCHEMA.Intervention])
    onto.add_class(SCHEMA.Vaccine, "Vaccine", parents=[SCHEMA.Intervention])
    onto.set_disjoint(SCHEMA.Disease, SCHEMA.Symptom)
    onto.set_disjoint(SCHEMA.Pathogen, SCHEMA.Intervention)
    onto.add_property(SCHEMA.causedBy, "caused by", domain=SCHEMA.Disease,
                      range=SCHEMA.Pathogen)
    onto.add_property(SCHEMA.hasSymptom, "has symptom", domain=SCHEMA.Disease,
                      range=SCHEMA.Symptom)
    onto.add_property(SCHEMA.treatedBy, "treated by", domain=SCHEMA.Disease,
                      range=SCHEMA.Treatment)
    onto.add_property(SCHEMA.preventedBy, "prevented by", domain=SCHEMA.Disease,
                      range=SCHEMA.Vaccine)
    onto.add_property(SCHEMA.transmittedVia, "transmitted via", domain=SCHEMA.Disease)
    onto.add_property(SCHEMA.variantOf, "variant of", domain=SCHEMA.Virus,
                      range=SCHEMA.Virus,
                      characteristics=[PropertyCharacteristic.ASYMMETRIC,
                                       PropertyCharacteristic.IRREFLEXIVE])
    return onto


_COVID_FACTS: List[Tuple[str, str, str]] = [
    ("COVID-19", "causedBy", "SARS-CoV-2"),
    ("COVID-19", "hasSymptom", "Fever"),
    ("COVID-19", "hasSymptom", "Dry_Cough"),
    ("COVID-19", "hasSymptom", "Fatigue"),
    ("COVID-19", "hasSymptom", "Loss_of_Smell"),
    ("COVID-19", "treatedBy", "Antiviral_Therapy"),
    ("COVID-19", "treatedBy", "Oxygen_Therapy"),
    ("COVID-19", "preventedBy", "mRNA_Vaccine"),
    ("COVID-19", "preventedBy", "Vector_Vaccine"),
    ("COVID-19", "transmittedVia", "Respiratory_Droplets"),
    ("Influenza", "causedBy", "Influenza_Virus"),
    ("Influenza", "hasSymptom", "Fever"),
    ("Influenza", "hasSymptom", "Muscle_Ache"),
    ("Influenza", "treatedBy", "Antiviral_Therapy"),
    ("Influenza", "preventedBy", "Flu_Vaccine"),
    ("Common_Cold", "causedBy", "Rhinovirus"),
    ("Common_Cold", "hasSymptom", "Runny_Nose"),
    ("Common_Cold", "hasSymptom", "Sore_Throat"),
    ("Omicron_Variant", "variantOf", "SARS-CoV-2"),
    ("Delta_Variant", "variantOf", "SARS-CoV-2"),
]

_COVID_TYPES: Dict[str, str] = {
    "COVID-19": "Disease", "Influenza": "Disease", "Common_Cold": "Disease",
    "SARS-CoV-2": "Virus", "Influenza_Virus": "Virus", "Rhinovirus": "Virus",
    "Omicron_Variant": "Virus", "Delta_Variant": "Virus",
    "Fever": "Symptom", "Dry_Cough": "Symptom", "Fatigue": "Symptom",
    "Loss_of_Smell": "Symptom", "Muscle_Ache": "Symptom",
    "Runny_Nose": "Symptom", "Sore_Throat": "Symptom",
    "Antiviral_Therapy": "Treatment", "Oxygen_Therapy": "Treatment",
    "mRNA_Vaccine": "Vaccine", "Vector_Vaccine": "Vaccine", "Flu_Vaccine": "Vaccine",
}


def covid_kg(seed: int = 0) -> Dataset:
    """The small biomedical KG mirroring the survey's COVID-19 case study."""
    kg = KnowledgeGraph(name=f"covid-{seed}")
    onto = covid_ontology()
    kg.add_triples(onto.to_triples())
    for name, cls in _COVID_TYPES.items():
        iri = _mint(name)
        kg.set_type(iri, SCHEMA[cls])
        kg.set_label(iri, name.replace("_", " "))
    for s, p, o in _COVID_FACTS:
        obj_iri = _mint(o)
        if o not in _COVID_TYPES:
            kg.set_label(obj_iri, o.replace("_", " "))
        kg.add(_mint(s), SCHEMA[p], obj_iri)
    return Dataset(kg=kg, ontology=onto, seed=seed, name="covid",
                   metadata={"facts": list(_COVID_FACTS), "types": dict(_COVID_TYPES)})


# ---------------------------------------------------------------------------
# Enterprise (RAG / GraphRAG substrate with documents)
# ---------------------------------------------------------------------------

def enterprise_ontology() -> Ontology:
    """Schema for the enterprise graph used by the RAG experiments."""
    onto = Ontology("enterprise")
    onto.add_class(SCHEMA.Employee, "Employee")
    onto.add_class(SCHEMA.Department, "Department")
    onto.add_class(SCHEMA.Project, "Project")
    onto.add_class(SCHEMA.Product, "Product")
    onto.add_class(SCHEMA.Customer, "Customer")
    onto.set_disjoint(SCHEMA.Employee, SCHEMA.Department)
    onto.add_property(SCHEMA.worksIn, "works in", domain=SCHEMA.Employee,
                      range=SCHEMA.Department,
                      characteristics=[PropertyCharacteristic.FUNCTIONAL])
    onto.add_property(SCHEMA.manages, "manages", domain=SCHEMA.Employee,
                      range=SCHEMA.Department,
                      characteristics=[PropertyCharacteristic.INVERSE_FUNCTIONAL])
    onto.add_property(SCHEMA.assignedTo, "assigned to", domain=SCHEMA.Employee,
                      range=SCHEMA.Project)
    onto.add_property(SCHEMA.delivers, "delivers", domain=SCHEMA.Project,
                      range=SCHEMA.Product)
    onto.add_property(SCHEMA.purchasedBy, "purchased by", domain=SCHEMA.Product,
                      range=SCHEMA.Customer)
    onto.add_property(SCHEMA.dependsOn, "depends on", domain=SCHEMA.Project,
                      range=SCHEMA.Project,
                      characteristics=[PropertyCharacteristic.ASYMMETRIC,
                                       PropertyCharacteristic.IRREFLEXIVE])
    return onto


_DEPARTMENTS = ["Engineering", "Research", "Sales", "Support", "Operations", "Design"]
_PROJECT_CODE = ["Atlas", "Borealis", "Cascade", "Dynamo", "Ember", "Falcon",
                 "Granite", "Harbor", "Ion", "Jade", "Krypton", "Lumen"]
_PRODUCTS = ["DataHub", "FlowEngine", "InsightBoard", "QueryForge",
             "StreamCache", "GraphVault"]


def enterprise_kg(seed: int = 0, n_employees: int = 48, n_projects: int = 12,
                  n_customers: int = 10) -> Dataset:
    """An org-chart graph plus per-department prose documents for RAG.

    ``metadata["documents"]`` holds (doc_id, text) pairs whose contents are
    consistent with the graph — the corpus Naive RAG chunks and GraphRAG
    summarizes in E-RAG.
    """
    rng = random.Random(seed)
    kg = KnowledgeGraph(name=f"enterprise-{seed}")
    onto = enterprise_ontology()
    kg.add_triples(onto.to_triples())

    departments = []
    for name in _DEPARTMENTS:
        iri = _mint("Dept " + name)
        kg.set_type(iri, SCHEMA.Department)
        kg.set_label(iri, name)
        departments.append(iri)

    products = []
    for name in _PRODUCTS:
        iri = _mint(name)
        kg.set_type(iri, SCHEMA.Product)
        kg.set_label(iri, name)
        products.append(iri)

    projects = []
    for code in rng.sample(_PROJECT_CODE, n_projects):
        iri = _mint("Project " + code)
        kg.set_type(iri, SCHEMA.Project)
        kg.set_label(iri, f"Project {code}")
        kg.add(iri, SCHEMA.delivers, products[rng.randrange(len(products))])
        projects.append(iri)
    for project in projects[1:]:
        if rng.random() < 0.4:
            other = projects[rng.randrange(len(projects))]
            if other != project:
                kg.add(project, SCHEMA.dependsOn, other)

    customers = []
    for name in _unique_names(rng, *_COMPANY_PARTS, n=n_customers):
        iri = _mint("Cust " + name)
        kg.set_type(iri, SCHEMA.Customer)
        kg.set_label(iri, name)
        customers.append(iri)
    for product in products:
        for customer in rng.sample(customers, k=rng.randrange(1, 4)):
            kg.add(product, SCHEMA.purchasedBy, customer)

    employees = []
    managers: Dict[IRI, IRI] = {}
    for name in _unique_names(rng, _GIVEN, _FAMILY, n=n_employees):
        iri = _mint("Emp " + name)
        kg.set_type(iri, SCHEMA.Employee)
        kg.set_label(iri, name)
        department = departments[len(employees) % len(departments)]
        kg.add(iri, SCHEMA.worksIn, department)
        if department not in managers:
            managers[department] = iri
            kg.add(iri, SCHEMA.manages, department)
        for project in rng.sample(projects, k=rng.randrange(1, 3)):
            kg.add(iri, SCHEMA.assignedTo, project)
        employees.append(iri)

    # Documents: one narrative per department, consistent with the graph.
    documents: List[Tuple[str, str]] = []
    for department in departments:
        dept_name = kg.label(department)
        manager = managers[department]
        members = [e for e in employees
                   if kg.store.value(e, SCHEMA.worksIn) == department]
        sentences = [
            f"{kg.label(manager)} manages the {dept_name} department.",
            f"The {dept_name} department has {len(members)} employees.",
        ]
        for employee in members:
            assigned = kg.store.objects(employee, SCHEMA.assignedTo)
            for project in assigned:
                sentences.append(
                    f"{kg.label(employee)} of {dept_name} is assigned to {kg.label(project)}."
                )
        documents.append((f"doc-{dept_name.lower()}", " ".join(sentences)))
    project_sentences = []
    for project in projects:
        product = kg.store.objects(project, SCHEMA.delivers)
        if product:
            project_sentences.append(
                f"{kg.label(project)} delivers the {kg.label(product[0])} product."
            )
        for dep in kg.store.objects(project, SCHEMA.dependsOn):
            project_sentences.append(
                f"{kg.label(project)} depends on {kg.label(dep)}."
            )
    documents.append(("doc-projects", " ".join(project_sentences)))

    return Dataset(kg=kg, ontology=onto, seed=seed, name="enterprise",
                   metadata={"documents": documents,
                             "employees": [e.value for e in employees],
                             "departments": [d.value for d in departments],
                             "projects": [p.value for p in projects],
                             "products": [p.value for p in products],
                             "customers": [c.value for c in customers]})


#: Registry used by examples and benchmarks to iterate over all datasets.
DATASET_BUILDERS = {
    "encyclopedia": encyclopedia_kg,
    "family": family_kg,
    "movie": movie_kg,
    "covid": covid_kg,
    "enterprise": enterprise_kg,
}
