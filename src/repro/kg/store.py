"""An in-memory triple store with hash indexes over all access paths.

The store is the substrate every SPARQL query, completion model, and RAG
retriever in this toolkit runs against. It maintains three nested hash
indexes (SPO, POS, OSP) so that any triple pattern with at least one bound
position is answered without a full scan — the property the E-SPARQL
micro-benchmark measures.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.kg.triples import IRI, Literal, Term, Triple


class TripleStore:
    """A set of triples with SPO/POS/OSP indexes and pattern matching.

    The store behaves like a mathematical set of triples: duplicate inserts
    are idempotent, iteration order is insertion order (useful for
    reproducible tests), and all pattern queries return freshly constructed
    lists so callers may mutate the store while holding results.
    """

    def __init__(self, triples: Optional[Iterable[Triple]] = None):
        self._triples: Dict[Triple, None] = {}
        self._spo: Dict[IRI, Dict[IRI, Set[Term]]] = defaultdict(lambda: defaultdict(set))
        self._pos: Dict[IRI, Dict[Term, Set[IRI]]] = defaultdict(lambda: defaultdict(set))
        self._osp: Dict[Term, Dict[IRI, Set[IRI]]] = defaultdict(lambda: defaultdict(set))
        self._version = 0
        if triples is not None:
            self.add_all(triples)

    @property
    def version(self) -> int:
        """A counter bumped by every effective mutation.

        Read-path caches (notably :class:`~repro.kg.graph.KnowledgeGraph`'s
        label/description/type caches) key their validity off this value:
        comparing versions is O(1) and never misses a mutation, including
        mutations made directly on the store behind a graph façade.
        """
        return self._version

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, triple: Triple) -> bool:
        """Insert ``triple``; returns True if it was not already present."""
        if not self._insert(triple):
            return False
        self._version += 1
        self._committed("add", (triple,))
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Insert every triple; returns the number actually added.

        Bulk-load fast path: the whole batch is **one effective mutation**,
        so the version counter is bumped once (and only when at least one
        triple was actually new). Read caches keyed off :attr:`version`
        only need to observe *that* the store changed; bumping per triple
        would invalidate them ``n`` times per load for no extra safety.
        """
        added = [t for t in triples if self._insert(t)]
        if added:
            self._version += 1
            self._committed("add", added)
        return len(added)

    def _insert(self, triple: Triple) -> bool:
        """Index ``triple`` without touching the version counter."""
        if triple in self._triples:
            return False
        self._triples[triple] = None
        s, p, o = triple.as_tuple()
        self._spo[s][p].add(o)
        self._pos[p][o].add(s)
        self._osp[o][s].add(p)
        return True

    def remove(self, triple: Triple) -> bool:
        """Remove ``triple``; returns True if it was present."""
        if not self._delete(triple):
            return False
        self._version += 1
        self._committed("remove", (triple,))
        return True

    def remove_all(self, triples: Iterable[Triple]) -> int:
        """Remove every triple; returns the number actually removed.

        Like :meth:`add_all`, one version bump per *effective* batch: a
        batch where nothing was present removes nothing, bumps nothing,
        and invalidates no read caches.
        """
        removed = [t for t in list(triples) if self._delete(t)]
        if removed:
            self._version += 1
            self._committed("remove", removed)
        return len(removed)

    def _delete(self, triple: Triple) -> bool:
        """Unindex ``triple`` without touching the version counter."""
        if triple not in self._triples:
            return False
        del self._triples[triple]
        s, p, o = triple.as_tuple()
        self._discard_index(self._spo, s, p, o)
        self._discard_index(self._pos, p, o, s)
        self._discard_index(self._osp, o, s, p)
        return True

    @staticmethod
    def _discard_index(index, k1, k2, value) -> None:
        bucket = index[k1][k2]
        bucket.discard(value)
        if not bucket:
            del index[k1][k2]
            if not index[k1]:
                del index[k1]

    def clear(self) -> None:
        """Remove every triple.

        Always counts as one effective mutation (unlike the batch
        mutators, ``clear`` is an explicit whole-store reset and callers
        rely on it invalidating read caches unconditionally).
        """
        self._triples.clear()
        self._spo.clear()
        self._pos.clear()
        self._osp.clear()
        self._version += 1
        self._committed("clear", ())

    def _committed(self, op: str, triples: Iterable[Triple]) -> None:
        """Hook invoked after every *effective* mutation batch.

        ``op`` is one of ``"add"``/``"remove"``/``"clear"`` and ``triples``
        holds exactly the triples that changed state (empty for ``clear``).
        The base store does nothing; durable subclasses append the batch to
        a write-ahead log. The hook fires *after* the version bump, so the
        current :attr:`version` is the batch's LSN.
        """

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def match(
        self,
        subject: Optional[IRI] = None,
        predicate: Optional[IRI] = None,
        object: Optional[Term] = None,
    ) -> List[Triple]:
        """All triples matching the pattern; ``None`` positions are wildcards.

        The most selective available index is chosen based on which positions
        are bound, so only fully unbound patterns scan the whole store.
        """
        s, p, o = subject, predicate, object
        if s is not None and p is not None and o is not None:
            t = Triple(s, p, o)
            return [t] if t in self._triples else []
        if s is not None and p is not None:
            return [Triple(s, p, obj) for obj in sorted(self._spo.get(s, {}).get(p, ()), key=_term_key)]
        if p is not None and o is not None:
            return [Triple(subj, p, o) for subj in sorted(self._pos.get(p, {}).get(o, ()), key=_term_key)]
        if s is not None and o is not None:
            return [Triple(s, pred, o) for pred in sorted(self._osp.get(o, {}).get(s, ()), key=_term_key)]
        if s is not None:
            out: List[Triple] = []
            for pred, objs in sorted(self._spo.get(s, {}).items(), key=lambda kv: _term_key(kv[0])):
                out.extend(Triple(s, pred, obj) for obj in sorted(objs, key=_term_key))
            return out
        if p is not None:
            out = []
            for obj, subjs in sorted(self._pos.get(p, {}).items(), key=lambda kv: _term_key(kv[0])):
                out.extend(Triple(subj, p, obj) for subj in sorted(subjs, key=_term_key))
            return out
        if o is not None:
            out = []
            for subj, preds in sorted(self._osp.get(o, {}).items(), key=lambda kv: _term_key(kv[0])):
                out.extend(Triple(subj, pred, o) for pred in sorted(preds, key=_term_key))
            return out
        return list(self._triples)

    def match_count(
        self,
        subject: Optional[IRI] = None,
        predicate: Optional[IRI] = None,
        object: Optional[Term] = None,
    ) -> int:
        """Number of triples matching the pattern, without materializing them."""
        s, p, o = subject, predicate, object
        if s is not None and p is not None and o is not None:
            return 1 if Triple(s, p, o) in self._triples else 0
        if s is not None and p is not None:
            return len(self._spo.get(s, {}).get(p, ()))
        if p is not None and o is not None:
            return len(self._pos.get(p, {}).get(o, ()))
        if s is not None and o is not None:
            return len(self._osp.get(o, {}).get(s, ()))
        if s is not None:
            return sum(len(objs) for objs in self._spo.get(s, {}).values())
        if p is not None:
            return sum(len(subjs) for subjs in self._pos.get(p, {}).values())
        if o is not None:
            return sum(len(preds) for preds in self._osp.get(o, {}).values())
        return len(self._triples)

    def scan_match(
        self,
        subject: Optional[IRI] = None,
        predicate: Optional[IRI] = None,
        object: Optional[Term] = None,
    ) -> List[Triple]:
        """Pattern matching by full scan — the baseline for E-SPARQL.

        Semantically identical to :meth:`match` but deliberately ignores the
        indexes; benchmarks use it to quantify what the indexes buy.
        """
        out = []
        for t in self._triples:
            if subject is not None and t.subject != subject:
                continue
            if predicate is not None and t.predicate != predicate:
                continue
            if object is not None and t.object != object:
                continue
            out.append(t)
        return out

    # ------------------------------------------------------------------
    # Vocabulary accessors
    # ------------------------------------------------------------------
    def subjects(self, predicate: Optional[IRI] = None, object: Optional[Term] = None) -> List[IRI]:
        """Distinct subjects of triples matching the (p, o) pattern.

        Reads distinct keys straight off the POS/OSP indexes (no ``Triple``
        lists are materialized); ordering is identical to deduplicating the
        corresponding :meth:`match` results.
        """
        p, o = predicate, object
        if p is not None and o is not None:
            return sorted(self._pos.get(p, {}).get(o, ()), key=_term_key)
        if p is not None:
            return _distinct(
                subj
                for _, subjs in sorted(self._pos.get(p, {}).items(),
                                       key=lambda kv: _term_key(kv[0]))
                for subj in sorted(subjs, key=_term_key))
        if o is not None:
            return sorted(self._osp.get(o, {}).keys(), key=_term_key)
        return _distinct(t.subject for t in self._triples)

    def predicates(self, subject: Optional[IRI] = None, object: Optional[Term] = None) -> List[IRI]:
        """Distinct predicates of triples matching the (s, o) pattern.

        Index-key reads like :meth:`subjects`, via SPO/OSP.
        """
        s, o = subject, object
        if s is not None and o is not None:
            return sorted(self._osp.get(o, {}).get(s, ()), key=_term_key)
        if s is not None:
            return sorted(self._spo.get(s, {}).keys(), key=_term_key)
        if o is not None:
            return _distinct(
                pred
                for _, preds in sorted(self._osp.get(o, {}).items(),
                                       key=lambda kv: _term_key(kv[0]))
                for pred in sorted(preds, key=_term_key))
        return _distinct(t.predicate for t in self._triples)

    def objects(self, subject: Optional[IRI] = None, predicate: Optional[IRI] = None) -> List[Term]:
        """Distinct objects of triples matching the (s, p) pattern.

        Index-key reads like :meth:`subjects`, via SPO/POS.
        """
        s, p = subject, predicate
        if s is not None and p is not None:
            return sorted(self._spo.get(s, {}).get(p, ()), key=_term_key)
        if s is not None:
            return _distinct(
                obj
                for _, objs in sorted(self._spo.get(s, {}).items(),
                                      key=lambda kv: _term_key(kv[0]))
                for obj in sorted(objs, key=_term_key))
        if p is not None:
            return sorted(self._pos.get(p, {}).keys(), key=_term_key)
        return _distinct(t.object for t in self._triples)

    def value(self, subject: IRI, predicate: IRI) -> Optional[Term]:
        """The unique object for (subject, predicate), or None.

        Raises ValueError when more than one object exists — callers that
        expect functional properties should hear about violations.
        """
        objs = self._spo.get(subject, {}).get(predicate, set())
        if not objs:
            return None
        if len(objs) > 1:
            raise ValueError(
                f"value() on non-functional data: {subject.n3()} {predicate.n3()} has {len(objs)} objects"
            )
        return next(iter(objs))

    def entities(self) -> List[IRI]:
        """Every IRI appearing in subject or object position."""
        seen: Dict[IRI, None] = {}
        for t in self._triples:
            seen.setdefault(t.subject, None)
            if isinstance(t.object, IRI):
                seen.setdefault(t.object, None)
        return list(seen)

    def relations(self) -> List[IRI]:
        """Every predicate in the store."""
        return list(self._pos.keys())

    def has_predicate(self, predicate: IRI) -> bool:
        """Whether any triple uses ``predicate``.

        O(1); the sharded façade uses this for predicate-routed broadcast
        (skipping shards that cannot contribute to a bound-predicate
        pattern) and the query planner for zero-cardinality short-circuits.
        """
        return predicate in self._pos

    def predicate_stats(self) -> Dict[IRI, Dict[str, int]]:
        """Per-predicate cardinality statistics for the query planner.

        For each predicate: the triple ``count`` and the number of distinct
        ``subjects``/``objects`` it relates. O(total triples); callers
        (:class:`repro.sparql.planner.StoreStatistics`) cache the result
        keyed off :attr:`version`.
        """
        out: Dict[IRI, Dict[str, int]] = {}
        for p, objmap in self._pos.items():
            subjects: Set[IRI] = set()
            count = 0
            for subjs in objmap.values():
                count += len(subjs)
                subjects.update(subjs)
            out[p] = {"count": count, "subjects": len(subjects),
                      "objects": len(objmap)}
        return out

    # ------------------------------------------------------------------
    # Whole-store operations
    # ------------------------------------------------------------------
    def copy(self) -> "TripleStore":
        """A shallow copy (terms are immutable so this is a safe fork)."""
        return TripleStore(self._triples)

    def union(self, other: "TripleStore") -> "TripleStore":
        """A new store containing every triple of both stores."""
        out = self.copy()
        out.add_all(other)
        return out

    def difference(self, other: "TripleStore") -> "TripleStore":
        """A new store with the triples of ``self`` not in ``other``."""
        return TripleStore(t for t in self._triples if t not in other)

    def stats(self) -> Dict[str, int]:
        """Coarse statistics used by dataset reports and benchmarks."""
        return {
            "triples": len(self._triples),
            "entities": len(self.entities()),
            "relations": len(self._pos),
            "literals": sum(1 for t in self._triples if isinstance(t.object, Literal)),
        }


def _term_key(term: Term) -> Tuple[int, str, str, str]:
    """A total order over mixed IRI/Literal collections for stable output."""
    if isinstance(term, IRI):
        return (0, term.value, "", "")
    return (1, term.lexical, term.datatype or "", term.language or "")


def _distinct(items: Iterable) -> List:
    seen: Dict = {}
    for item in items:
        seen.setdefault(item, None)
    return list(seen)
