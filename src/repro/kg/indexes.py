"""Secondary indexes: full-text tokens and numeric ranges (survey §5.2/§7).

The store's SPO/POS/OSP hash maps answer *exact* term lookups; the two
query shapes they cannot accelerate are substring search over labels and
descriptions (``FILTER(CONTAINS(?label, "graph"))``) and range predicates
over typed literals (``FILTER(?year >= 2020)``). Both are staples of the
agentic GraphRAG workloads the roadmap targets, so this module maintains
them as *secondary* indexes, off the mutation path:

* **Version-keyed laziness.** Nothing is updated on ``add``/``remove``.
  Each index holds one *segment* per backing store — per shard for a
  :class:`~repro.kg.sharding.ShardedTripleStore`, a single segment
  otherwise — and every segment remembers the ``version`` of its backing
  store at build time. A read revalidates cheaply (one int compare per
  segment) and rebuilds only the segments whose shard actually mutated,
  so a write to shard k never cold-starts lookups served by the others.
* **Sound candidates, exact answers.** Index lookups return a *superset*
  of the matching triples (see :meth:`FullTextIndex.candidates` for the
  containment argument); the SPARQL evaluator re-applies the pushed
  filter after every index-driven extension, so answers are exact and
  the index is a pure access-path optimization. Candidate lists are
  sorted by ``(object, subject)`` term key — the same order
  ``store.match(None, p, None)`` produces — so an index-backed plan is
  byte-identical to the scan it replaces.

Thread safety matches the KnowledgeGraph caches: one lock per index
guards segment swaps; stale reads rebuild outside the hot dict probes.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left, bisect_right
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.kg.store import TripleStore, _term_key
from repro.kg.triples import IRI, Literal, RDFS, Term, Triple, XSD

#: Datatypes the numeric index (and the SPARQL comparison machinery)
#: treats as numbers. Kept in sync with the evaluator's ``_NUMERIC_TYPES``.
NUMERIC_DATATYPES = frozenset(
    {XSD.integer, XSD.decimal, XSD.double, XSD.float, XSD.gYear})

#: Predicates the full-text index covers by default: the label and
#: description properties every verbalization path reads.
DEFAULT_TEXT_PREDICATES: Tuple[IRI, ...] = (RDFS.label, RDFS.comment)

_TOKEN = re.compile(r"[a-z0-9]+")


def _backing_stores(store: TripleStore) -> Sequence[TripleStore]:
    """The independently-versioned stores behind ``store``.

    A sharded façade exposes its sub-stores via ``shards``; anything else
    is its own single segment.
    """
    shards = getattr(store, "shards", None)
    if shards:
        return tuple(shards)
    return (store,)


def _text_of(term: Term) -> str:
    """The searchable text of a term (mirrors SPARQL ``STR``)."""
    if isinstance(term, Literal):
        return term.lexical
    return term.value


def tokenize(text: str) -> List[str]:
    """Lower-cased maximal alphanumeric runs of ``text``."""
    return _TOKEN.findall(text.lower())


def indexable_needle(needle: str) -> Optional[str]:
    """The token-safe form of a CONTAINS needle, or ``None``.

    Only needles that lower-case to a single alphanumeric run can be
    answered from token postings: such a needle can never span a token
    boundary, so every triple whose text contains it (case-sensitively
    or not) has at least one token containing its lower-cased form —
    the postings union is a complete candidate superset.
    """
    lowered = needle.lower()
    return lowered if _TOKEN.fullmatch(lowered) else None


class _TextSegment:
    """Token postings for one backing store, valid at one version."""

    __slots__ = ("version", "postings")

    def __init__(self) -> None:
        self.version = -1
        # predicate -> token -> list of triples containing that token.
        self.postings: Dict[IRI, Dict[str, List[Triple]]] = {}

    def rebuild(self, backing: TripleStore, predicates: Sequence[IRI]) -> None:
        postings: Dict[IRI, Dict[str, List[Triple]]] = {}
        for predicate in predicates:
            by_token: Dict[str, List[Triple]] = {}
            for triple in backing.match(None, predicate, None):
                for token in set(tokenize(_text_of(triple.object))):
                    by_token.setdefault(token, []).append(triple)
            postings[predicate] = by_token
        self.postings = postings
        self.version = backing.version


class FullTextIndex:
    """A token index over label/description-style text predicates.

    ``candidates(predicate, needle)`` answers "which triples *might*
    satisfy ``CONTAINS(STR(?o), needle)``" from postings instead of a
    predicate scan. The caller must re-check the filter — candidates are
    a superset whenever the needle is token-safe (case-insensitive
    containment is implied by case-sensitive containment).
    """

    def __init__(self, store: TripleStore,
                 predicates: Sequence[IRI] = DEFAULT_TEXT_PREDICATES):
        self.store = store
        self.predicates: Tuple[IRI, ...] = tuple(predicates)
        self._lock = threading.Lock()
        self._segments: List[_TextSegment] = []
        self._rebuilds = 0
        self._hits = 0

    def covers(self, predicate: IRI) -> bool:
        """Whether ``predicate`` is one of the indexed text properties."""
        return predicate in self.predicates

    def _fresh_segments(self) -> List[_TextSegment]:
        """Segments revalidated against their backing stores.

        Only stale segments rebuild; a reshard (segment-count change)
        rebuilds everything. Rebuilds run under the lock — they are rare
        and the postings swap must be atomic with the version stamp.
        """
        backings = _backing_stores(self.store)
        with self._lock:
            if len(self._segments) != len(backings):
                self._segments = [_TextSegment() for _ in backings]
            stale = False
            for segment, backing in zip(self._segments, backings):
                if segment.version != backing.version:
                    segment.rebuild(backing, self.predicates)
                    self._rebuilds += 1
                    stale = True
            if not stale:
                self._hits += 1
            return list(self._segments)

    def candidates(self, predicate: IRI, needle: str) -> Optional[List[Triple]]:
        """Triples that may satisfy ``CONTAINS`` of ``needle``, or ``None``.

        ``None`` means the index cannot answer (uncovered predicate or a
        needle that is not a single alphanumeric run) and the caller must
        fall back to a scan. The returned list is sorted by
        ``(object, subject)`` term key — identical to the order of
        ``store.match(None, predicate, None)`` restricted to candidates.
        """
        token_needle = indexable_needle(needle)
        if token_needle is None or not self.covers(predicate):
            return None
        out: Dict[Triple, None] = {}
        for segment in self._fresh_segments():
            by_token = segment.postings.get(predicate, {})
            for token, triples in by_token.items():
                if token_needle in token:
                    for triple in triples:
                        out[triple] = None
        return sorted(out, key=lambda t: (_term_key(t.object),
                                          _term_key(t.subject)))

    def stats(self) -> Dict[str, int]:
        """Cardinalities and maintenance counters for ``repro kg stats``."""
        segments = self._fresh_segments()
        tokens = sum(len(by_token)
                     for segment in segments
                     for by_token in segment.postings.values())
        entries = sum(len(triples)
                      for segment in segments
                      for by_token in segment.postings.values()
                      for triples in by_token.values())
        with self._lock:
            return {"segments": len(segments), "tokens": tokens,
                    "entries": entries, "predicates": len(self.predicates),
                    "rebuilds": self._rebuilds, "hits": self._hits}


class _NumericSegment:
    """Per-predicate sorted numeric entries for one backing store."""

    __slots__ = ("version", "entries")

    def __init__(self) -> None:
        self.version = -1
        # predicate -> list of (value, sort_key, triple) sorted by value
        # then by (object, subject) term key for deterministic ties.
        self.entries: Dict[IRI, List[Tuple[float, tuple, Triple]]] = {}

    def rebuild(self, backing: TripleStore) -> None:
        entries: Dict[IRI, List[Tuple[float, tuple, Triple]]] = {}
        for triple in backing:
            obj = triple.object
            if not isinstance(obj, Literal) or \
                    obj.datatype not in NUMERIC_DATATYPES:
                continue
            try:
                value = float(obj.lexical)
            except ValueError:
                continue  # the evaluator rejects these rows too
            key = (_term_key(obj), _term_key(triple.subject))
            entries.setdefault(triple.predicate, []).append(
                (value, key, triple))
        for rows in entries.values():
            rows.sort(key=lambda row: (row[0], row[1]))
        self.entries = entries
        self.version = backing.version


class NumericIndex:
    """A range index over numerically-typed literal objects.

    Supports ``FILTER(?o < n)``-style pushes: ``range_triples`` returns
    exactly the triples whose object parses as a number within the
    bounds. Rows the evaluator would reject (unparseable lexicals,
    non-numeric datatypes, IRIs) are never indexed, so the candidate set
    equals the filter-satisfying set for the numeric comparison itself;
    the evaluator still re-applies the filter for belt-and-braces.
    """

    def __init__(self, store: TripleStore):
        self.store = store
        self._lock = threading.Lock()
        self._segments: List[_NumericSegment] = []
        self._rebuilds = 0
        self._hits = 0

    def _fresh_segments(self) -> List[_NumericSegment]:
        backings = _backing_stores(self.store)
        with self._lock:
            if len(self._segments) != len(backings):
                self._segments = [_NumericSegment() for _ in backings]
            stale = False
            for segment, backing in zip(self._segments, backings):
                if segment.version != backing.version:
                    segment.rebuild(backing)
                    self._rebuilds += 1
                    stale = True
            if not stale:
                self._hits += 1
            return list(self._segments)

    @staticmethod
    def _slice(rows: List[Tuple[float, tuple, Triple]],
               low: Optional[float], high: Optional[float],
               include_low: bool, include_high: bool
               ) -> List[Tuple[float, tuple, Triple]]:
        lo = 0
        if low is not None:
            lo = bisect_left(rows, low, key=lambda row: row[0]) \
                if include_low else bisect_right(rows, low,
                                                 key=lambda row: row[0])
        hi = len(rows)
        if high is not None:
            hi = bisect_right(rows, high, key=lambda row: row[0]) \
                if include_high else bisect_left(rows, high,
                                                 key=lambda row: row[0])
        return rows[lo:hi]

    def range_triples(self, predicate: IRI,
                      low: Optional[float] = None,
                      high: Optional[float] = None,
                      include_low: bool = True,
                      include_high: bool = True) -> List[Triple]:
        """Triples of ``predicate`` whose numeric object lies in range.

        Sorted by ``(object, subject)`` term key — the order a
        ``match(None, predicate, None)`` scan filtered to the range
        would produce — so index-backed plans stay byte-identical.
        """
        selected: List[Tuple[float, tuple, Triple]] = []
        for segment in self._fresh_segments():
            rows = segment.entries.get(predicate)
            if rows:
                selected.extend(self._slice(rows, low, high,
                                            include_low, include_high))
        selected.sort(key=lambda row: row[1])
        return [row[2] for row in selected]

    def range_count(self, predicate: IRI,
                    low: Optional[float] = None,
                    high: Optional[float] = None,
                    include_low: bool = True,
                    include_high: bool = True) -> int:
        """Cardinality of :meth:`range_triples` without materializing."""
        total = 0
        for segment in self._fresh_segments():
            rows = segment.entries.get(predicate)
            if rows:
                total += len(self._slice(rows, low, high,
                                         include_low, include_high))
        return total

    def stats(self) -> Dict[str, int]:
        """Cardinalities and maintenance counters for ``repro kg stats``."""
        segments = self._fresh_segments()
        entries = sum(len(rows)
                      for segment in segments
                      for rows in segment.entries.values())
        predicates = len({p for segment in segments for p in segment.entries})
        with self._lock:
            return {"segments": len(segments), "entries": entries,
                    "predicates": predicates, "rebuilds": self._rebuilds,
                    "hits": self._hits}
