"""N-Triples and Turtle-subset serialization.

Interchange so KGs built here can be inspected or diffed as text. We
implement N-Triples fully (it is line-oriented and regular) and a pragmatic
Turtle subset (prefixes + predicate lists) for compact human-readable dumps.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, Iterator, List, Optional, TextIO, Union

from repro.kg.store import TripleStore
from repro.kg.triples import IRI, Literal, Term, Triple


class RDFSyntaxError(ValueError):
    """Raised when a serialized RDF document cannot be parsed."""


_NT_IRI = r"<([^<>\"{}|^`\\\x00-\x20]*)>"
_NT_LITERAL = r'"((?:[^"\\]|\\.)*)"(?:\^\^<([^<>]*)>|@([A-Za-z][A-Za-z0-9-]*))?'
_NT_LINE = re.compile(
    rf"^\s*{_NT_IRI}\s+{_NT_IRI}\s+(?:{_NT_IRI}|{_NT_LITERAL})\s*\.\s*$"
)


def _unescape(text: str) -> str:
    return (
        text.replace("\\n", "\n")
        .replace("\\t", "\t")
        .replace('\\"', '"')
        .replace("\\\\", "\\")
    )


def parse_ntriples_line(line: str) -> Optional[Triple]:
    """Parse one N-Triples line; returns None for blank/comment lines."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    m = _NT_LINE.match(line)
    if m is None:
        raise RDFSyntaxError(f"malformed N-Triples line: {line!r}")
    subject_iri, predicate_iri, object_iri, lex, datatype, language = m.groups()
    subject = IRI(subject_iri)
    predicate = IRI(predicate_iri)
    obj: Term
    if object_iri is not None:
        obj = IRI(object_iri)
    else:
        obj = Literal(_unescape(lex), datatype=datatype, language=language)
    return Triple(subject, predicate, obj)


def loads_ntriples(text: str) -> List[Triple]:
    """Parse an N-Triples document from a string."""
    out = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        try:
            triple = parse_ntriples_line(line)
        except RDFSyntaxError as exc:
            raise RDFSyntaxError(f"line {lineno}: {exc}") from exc
        if triple is not None:
            out.append(triple)
    return out


def dumps_ntriples(triples: Iterable[Triple]) -> str:
    """Serialize triples to an N-Triples document string."""
    return "".join(t.n3() + "\n" for t in triples)


def load_ntriples(path_or_file: Union[str, TextIO]) -> TripleStore:
    """Read an N-Triples file into a fresh :class:`TripleStore`."""
    if isinstance(path_or_file, str):
        with open(path_or_file, "r", encoding="utf-8") as handle:
            return TripleStore(loads_ntriples(handle.read()))
    return TripleStore(loads_ntriples(path_or_file.read()))


def dump_ntriples(store: Iterable[Triple], path_or_file: Union[str, TextIO]) -> None:
    """Write triples to an N-Triples file."""
    text = dumps_ntriples(store)
    if isinstance(path_or_file, str):
        with open(path_or_file, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        path_or_file.write(text)


def dumps_turtle(store: Iterable[Triple], prefixes: Optional[Dict[str, str]] = None) -> str:
    """Serialize triples to a compact Turtle subset.

    Groups triples by subject and emits predicate lists. ``prefixes`` maps
    prefix labels to IRI prefixes, e.g. ``{"ex": "http://example.org/"}``.
    """
    prefixes = dict(prefixes or {})
    lines: List[str] = [f"@prefix {label}: <{iri}> ." for label, iri in sorted(prefixes.items())]
    if lines:
        lines.append("")

    def shorten(term: Term) -> str:
        if isinstance(term, Literal):
            return term.n3()
        for label, prefix in prefixes.items():
            if term.value.startswith(prefix):
                local = term.value[len(prefix):]
                if local and re.fullmatch(r"[A-Za-z_][\w.-]*", local):
                    return f"{label}:{local}"
        return term.n3()

    by_subject: Dict[IRI, List[Triple]] = {}
    for t in store:
        by_subject.setdefault(t.subject, []).append(t)
    for subject in sorted(by_subject, key=lambda s: s.value):
        group = sorted(by_subject[subject], key=lambda t: (t.predicate.value, t.object.n3()))
        parts = [f"{shorten(t.predicate)} {shorten(t.object)}" for t in group]
        lines.append(f"{shorten(subject)} " + " ;\n    ".join(parts) + " .")
    return "\n".join(lines) + "\n"


_TTL_PREFIX = re.compile(r"^@prefix\s+([A-Za-z][\w-]*):\s*<([^>]*)>\s*\.\s*$")


def loads_turtle(text: str) -> List[Triple]:
    """Parse the Turtle subset produced by :func:`dumps_turtle`.

    Supports ``@prefix`` declarations, prefixed names, IRIs in angle
    brackets, literals with datatype/language, and ``;`` predicate lists.
    Not a general Turtle parser — it round-trips our own output.
    """
    prefixes: Dict[str, str] = {}
    triples: List[Triple] = []
    # Re-join predicate-list continuations into single statements.
    statements: List[str] = []
    buffer = ""
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        m = _TTL_PREFIX.match(line)
        if m:
            prefixes[m.group(1)] = m.group(2)
            continue
        buffer = f"{buffer} {line}".strip()
        if buffer.endswith("."):
            statements.append(buffer[:-1].strip())
            buffer = ""
    if buffer:
        raise RDFSyntaxError(f"unterminated statement: {buffer!r}")

    term_pattern = re.compile(
        rf"{_NT_IRI}|{_NT_LITERAL}|([A-Za-z][\w-]*):([\w.-]+)"
    )

    def parse_term(token: str) -> Term:
        m = term_pattern.fullmatch(token)
        if m is None:
            raise RDFSyntaxError(f"cannot parse term {token!r}")
        iri, lex, datatype, language, prefix, local = m.groups()
        if iri is not None:
            return IRI(iri)
        if prefix is not None:
            if prefix not in prefixes:
                raise RDFSyntaxError(f"undeclared prefix {prefix!r}")
            return IRI(prefixes[prefix] + local)
        return Literal(_unescape(lex), datatype=datatype, language=language)

    def split_terms(chunk: str) -> List[str]:
        tokens = []
        for m in term_pattern.finditer(chunk):
            tokens.append(m.group(0))
        return tokens

    for statement in statements:
        segments = [seg.strip() for seg in statement.split(";")]
        first_tokens = split_terms(segments[0])
        if len(first_tokens) != 3:
            raise RDFSyntaxError(f"expected subject predicate object in {segments[0]!r}")
        subject = parse_term(first_tokens[0])
        if not isinstance(subject, IRI):
            raise RDFSyntaxError("subject must be an IRI")
        predicate = parse_term(first_tokens[1])
        if not isinstance(predicate, IRI):
            raise RDFSyntaxError("predicate must be an IRI")
        triples.append(Triple(subject, predicate, parse_term(first_tokens[2])))
        for segment in segments[1:]:
            tokens = split_terms(segment)
            if len(tokens) != 2:
                raise RDFSyntaxError(f"expected predicate object in {segment!r}")
            predicate = parse_term(tokens[0])
            if not isinstance(predicate, IRI):
                raise RDFSyntaxError("predicate must be an IRI")
            triples.append(Triple(subject, predicate, parse_term(tokens[1])))
    return triples
