"""Write-ahead logging, snapshots, and crash recovery for the triple store.

The survey's construction pipelines build KGs over thousands of LLM calls;
losing the store to a process crash means re-spending all of them. This
module gives :class:`~repro.kg.store.TripleStore` process-level durability
with the classic WAL discipline:

* every *effective* mutation batch (the same batches that bump
  :attr:`~repro.kg.store.TripleStore.version`) is appended to a
  checksummed log **before** control returns to the caller — the version
  counter doubles as the log sequence number (LSN);
* a compacted **snapshot** (plain N-Triples plus an LSN header comment)
  is written atomically (tmp file + ``os.replace``) every
  ``snapshot_every`` records, after which the log is reset;
* :func:`recover` replays snapshot + log back into an identical store,
  detecting torn or corrupt tail records by their per-record CRC32 and
  truncating them — a crash mid-``write`` can cost at most the batch that
  was being logged, never consistency.

Record format (binary, little machinery on the hot path)::

    +--------------+-------------+----------------------------------+
    | length (u32) | crc32 (u32) | payload (UTF-8, ``length`` bytes)|
    +--------------+-------------+----------------------------------+

with a payload of ``"<op> <lsn>\\n"`` (op ∈ add/remove/clear) followed by
one N-Triples line per affected triple — the same ``Triple.n3()`` encoding
the rest of the toolkit round-trips. Appends are flushed to the OS per
record, so any process-level crash (the crash-injection harness uses
``os._exit``) preserves every completed batch.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.core.observability import resolve_obs
from repro.kg.rdf import RDFSyntaxError, parse_ntriples_line
from repro.kg.store import TripleStore
from repro.kg.triples import IRI, Triple

__all__ = [
    "DurableTripleStore", "RecoveryReport", "SNAPSHOT_FILENAME",
    "WAL_FILENAME", "WalCorruptionError", "WalRecord", "WriteAheadLog",
    "apply_record", "decode_payload", "encode_record", "read_snapshot",
    "recover", "scan_wal", "write_snapshot",
]


def apply_record(store: TripleStore, record: "WalRecord") -> None:
    """Apply one WAL record to ``store`` without logging or version bumps.

    The single definition of what a record *means*, shared by local
    recovery (``DurableTripleStore._apply``) and replica catch-up (the
    replication layer ships these same records to keep followers
    consistent with the primary's log).
    """
    if record.op == "add":
        for triple in record.triples:
            store._insert(triple)
    elif record.op == "remove":
        for triple in record.triples:
            store._delete(triple)
    elif record.op == "clear":
        store._triples.clear()
        store._spo.clear()
        store._pos.clear()
        store._osp.clear()
    else:
        raise ValueError(f"unknown WAL op {record.op!r}")

#: Per-record frame header: payload length then CRC32, both big-endian u32.
_HEADER = struct.Struct(">II")

#: Log file name inside a durability directory.
WAL_FILENAME = "wal.log"
#: Snapshot file name inside a durability directory.
SNAPSHOT_FILENAME = "snapshot.nt"

_OPS = ("add", "remove", "clear")


class WalCorruptionError(ValueError):
    """Raised when a WAL payload passes framing but cannot be decoded."""


@dataclass(frozen=True)
class WalRecord:
    """One logged mutation batch: the op, its LSN, and the triples touched.

    ``lsn`` is the store's :attr:`~repro.kg.store.TripleStore.version`
    *after* the batch committed; replaying a record therefore both applies
    the triples and restores the exact version counter.
    """

    op: str
    lsn: int
    triples: Tuple[Triple, ...] = ()
    #: Optional global sequence number. Sharded stores append to one WAL per
    #: shard, losing the cross-shard interleave that the single-file log gets
    #: for free; ``seq`` restores it — recovery merges all shards' records by
    #: ``seq`` and replays in that order. Unsharded records omit it, so old
    #: logs (two-token headers) stay readable.
    seq: Optional[int] = None


def encode_record(record: WalRecord) -> bytes:
    """Serialize a record to its framed on-disk bytes."""
    if record.seq is None:
        lines = [f"{record.op} {record.lsn}"]
    else:
        lines = [f"{record.op} {record.lsn} {record.seq}"]
    append = lines.append
    for t in record.triples:
        # Equivalent to t.n3(), with the all-IRI case (the overwhelming
        # majority of logged triples) flattened to one f-string — encoding
        # sits on the bulk-load hot path, budgeted at ≤10% overhead (see
        # benchmarks/test_bench_durability.py).
        o = t.object
        if type(o) is IRI:
            append(f"<{t.subject.value}> <{t.predicate.value}> <{o.value}> .")
        else:
            append(f"<{t.subject.value}> <{t.predicate.value}> {o.n3()} .")
    payload = ("\n".join(lines) + "\n").encode("utf-8")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def decode_payload(payload: bytes) -> WalRecord:
    """Decode one CRC-verified payload back into a :class:`WalRecord`."""
    try:
        lines = payload.decode("utf-8").splitlines()
        head = lines[0].split(" ") if lines else []
        if len(head) not in (2, 3) or head[0] not in _OPS:
            raise WalCorruptionError(f"malformed WAL record header: {lines[:1]!r}")
        triples = []
        for line in lines[1:]:
            triple = parse_ntriples_line(line)
            if triple is not None:
                triples.append(triple)
        seq = int(head[2]) if len(head) == 3 else None
        return WalRecord(op=head[0], lsn=int(head[1]), triples=tuple(triples),
                         seq=seq)
    except (UnicodeDecodeError, RDFSyntaxError, ValueError) as exc:
        if isinstance(exc, WalCorruptionError):
            raise
        raise WalCorruptionError(f"undecodable WAL payload: {exc}") from exc


def scan_wal(path: str, truncate: bool = False) -> Tuple[List[WalRecord], int]:
    """Read every complete record from a log file.

    Returns ``(records, truncated_bytes)`` where ``truncated_bytes`` counts
    the torn/corrupt tail (short frame, short payload, CRC mismatch, or
    undecodable payload — everything from the first bad frame on). With
    ``truncate=True`` the bad tail is also physically cut from the file, so
    subsequent appends continue from a consistent state.
    """
    if not os.path.exists(path):
        return [], 0
    with open(path, "rb") as handle:
        data = handle.read()
    records: List[WalRecord] = []
    offset, size = 0, len(data)
    while offset < size:
        if size - offset < _HEADER.size:
            break
        length, crc = _HEADER.unpack_from(data, offset)
        end = offset + _HEADER.size + length
        if end > size:
            break
        payload = data[offset + _HEADER.size:end]
        if zlib.crc32(payload) != crc:
            break
        try:
            records.append(decode_payload(payload))
        except WalCorruptionError:
            break
        offset = end
    truncated = size - offset
    if truncate and truncated:
        with open(path, "r+b") as handle:
            handle.truncate(offset)
    return records, truncated


class WriteAheadLog:
    """An append-only record log over one file.

    Owns the append handle (opened lazily, line-buffered ``ab``) and the
    written-records/bytes counters surfaced by ``durability_stats()``.
    Appends flush to the OS per record: a process crash — however abrupt —
    loses at most the record being framed at that instant, which the CRC
    then catches on recovery.
    """

    def __init__(self, path: str):
        self.path = path
        self._handle = None
        self.records_written = 0
        self.bytes_written = 0

    def append(self, record: WalRecord) -> int:
        """Frame + append one record; returns the bytes written."""
        if self._handle is None:
            self._handle = open(self.path, "ab")
        data = encode_record(record)
        self._handle.write(data)
        self._handle.flush()
        self.records_written += 1
        self.bytes_written += len(data)
        return len(data)

    def reset(self) -> None:
        """Truncate the log to empty (called right after a snapshot)."""
        self.close()
        with open(self.path, "wb"):
            pass

    def close(self) -> None:
        """Close the append handle (reopened lazily by the next append)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def write_snapshot(triples: Iterable[Triple], path: str, lsn: int) -> int:
    """Write a compacted snapshot atomically; returns the triple count.

    The snapshot is a regular N-Triples document whose first line is an
    ``# lsn=<n>`` comment (comments are skipped by every N-Triples reader,
    so the file stays loadable by :func:`repro.kg.rdf.load_ntriples`). The
    write goes to a temp file that is fsynced and then ``os.replace``d over
    the target, so a crash mid-snapshot leaves the previous snapshot
    intact.
    """
    tmp_path = path + ".tmp"
    count = 0
    with open(tmp_path, "w", encoding="utf-8") as handle:
        handle.write(f"# lsn={lsn}\n")
        for triple in triples:
            handle.write(triple.n3() + "\n")
            count += 1
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    return count


def read_snapshot(path: str) -> Tuple[List[Triple], int]:
    """Read a snapshot back as ``(triples, lsn)`` (lsn 0 when unheadered)."""
    lsn = 0
    triples: List[Triple] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            if line.startswith("# lsn="):
                lsn = int(line[len("# lsn="):].strip())
                continue
            triple = parse_ntriples_line(line)
            if triple is not None:
                triples.append(triple)
    return triples, lsn


@dataclass(frozen=True)
class RecoveryReport:
    """What a recovery found: snapshot state, replay extent, damage cut."""

    snapshot_lsn: int
    snapshot_triples: int
    records_replayed: int
    truncated_bytes: int
    version: int
    triples: int


class DurableTripleStore(TripleStore):
    """A :class:`TripleStore` whose mutations survive process crashes.

    State lives in one directory: ``snapshot.nt`` (the compacted base
    image) and ``wal.log`` (batches since the snapshot). Construction *is*
    recovery — the snapshot is loaded, the log's consistent prefix is
    replayed, and any torn tail is truncated — after which the store
    behaves exactly like its in-memory parent, logging each effective
    batch through the :meth:`~repro.kg.store.TripleStore._committed` hook.

    ``snapshot_every`` bounds log growth: after that many logged batches a
    compacted snapshot is written and the log reset. Snapshot-then-reset
    ordering is crash-safe — a crash between the two leaves records whose
    LSN is ≤ the snapshot LSN in the log, and replay skips those.
    """

    def __init__(self, directory: str,
                 snapshot_every: Optional[int] = None,
                 obs=None):
        self._wal: Optional[WriteAheadLog] = None  # gates _committed during recovery
        self.directory = directory
        self.snapshot_every = snapshot_every
        self.obs = resolve_obs(obs)
        self.wal_path = os.path.join(directory, WAL_FILENAME)
        self.snapshot_path = os.path.join(directory, SNAPSHOT_FILENAME)
        self._records_since_snapshot = 0
        self.recoveries = 0
        self.truncated_bytes = 0
        self.snapshots_written = 0
        os.makedirs(directory, exist_ok=True)
        super().__init__()
        self.last_recovery = self._recover()
        self._wal = WriteAheadLog(self.wal_path)
        self.obs.register_source("kg.wal", self.durability_stats)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover(self) -> RecoveryReport:
        """Load snapshot + consistent log prefix; truncate any torn tail."""
        snapshot_lsn = 0
        snapshot_count = 0
        had_state = os.path.exists(self.snapshot_path) or os.path.exists(self.wal_path)
        if os.path.exists(self.snapshot_path):
            triples, snapshot_lsn = read_snapshot(self.snapshot_path)
            for triple in triples:
                self._insert(triple)
            snapshot_count = len(triples)
            self._version = snapshot_lsn
        records, truncated = scan_wal(self.wal_path, truncate=True)
        replayed = 0
        for record in records:
            if record.lsn <= snapshot_lsn:
                continue  # already folded into the snapshot (crash before log reset)
            self._apply(record)
            self._version = record.lsn
            replayed += 1
        self._records_since_snapshot = replayed
        self.truncated_bytes += truncated
        if had_state:
            self.recoveries += 1
            if self.obs.enabled:
                self.obs.count("wal.recoveries")
                if truncated:
                    self.obs.count("wal.truncated_bytes", truncated)
        return RecoveryReport(
            snapshot_lsn=snapshot_lsn, snapshot_triples=snapshot_count,
            records_replayed=replayed, truncated_bytes=truncated,
            version=self._version, triples=len(self))

    def _apply(self, record: WalRecord) -> None:
        """Apply one replayed record without logging or version bumps."""
        apply_record(self, record)

    # ------------------------------------------------------------------
    # Logging
    # ------------------------------------------------------------------
    def _committed(self, op: str, triples: Iterable[Triple]) -> None:
        """Append the just-committed batch to the log (WAL discipline)."""
        if self._wal is None:
            return  # bootstrap/replay: state is already on disk
        nbytes = self._wal.append(WalRecord(op, self._version, tuple(triples)))
        if self.obs.enabled:
            self.obs.count("wal.records")
            self.obs.count("wal.bytes", nbytes)
        self._records_since_snapshot += 1
        if self.snapshot_every and self._records_since_snapshot >= self.snapshot_every:
            self.snapshot()

    def snapshot(self) -> int:
        """Write a compacted snapshot and reset the log; returns the count.

        Safe at any point: the snapshot replaces atomically, and only once
        it is durable is the log truncated.
        """
        count = write_snapshot(self, self.snapshot_path, self._version)
        if self._wal is not None:
            self._wal.reset()
        self._records_since_snapshot = 0
        self.snapshots_written += 1
        if self.obs.enabled:
            self.obs.count("wal.snapshots")
        return count

    def close(self) -> None:
        """Release the log's file handle (state on disk stays recoverable)."""
        if self._wal is not None:
            self._wal.close()

    def durability_stats(self) -> dict:
        """Counters for the observability layer's ``kg.wal`` source."""
        wal = self._wal
        return {
            "wal_records": wal.records_written if wal else 0,
            "wal_bytes": wal.bytes_written if wal else 0,
            "snapshots": self.snapshots_written,
            "recoveries": self.recoveries,
            "truncated_bytes": self.truncated_bytes,
            "lsn": self._version,
            "triples": len(self),
        }


def recover(directory: str, obs=None) -> DurableTripleStore:
    """Recover the durable store persisted under ``directory``.

    Convenience spelling of ``DurableTripleStore(directory)`` that reads as
    intent at call sites (the CLI's ``repro kg recover``). The recovery's
    findings are on the returned store's ``last_recovery`` report.
    """
    return DurableTripleStore(directory, obs=obs)
