"""RDF-style terms and triples.

The survey's KG side is grounded in RDF-ish graphs (Freebase, Wikidata,
DBpedia). We model the three RDF term kinds we need — IRIs and literals
(blank nodes are represented as IRIs under the ``_:`` scheme) — as small
immutable value objects so they can be dictionary keys in the store indexes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union


@dataclass(frozen=True, order=True)
class IRI:
    """An IRI reference identifying an entity, class, or property.

    ``value`` is the full IRI string, e.g. ``"http://repro.dev/kg/Alice"``.
    """

    value: str

    def __post_init__(self) -> None:
        if not self.value:
            raise ValueError("IRI value must be a non-empty string")

    @property
    def local_name(self) -> str:
        """The fragment after the last ``#`` or ``/`` — a human-ish label."""
        for sep in ("#", "/", ":"):
            if sep in self.value:
                tail = self.value.rsplit(sep, 1)[1]
                if tail:
                    return tail
        return self.value

    def n3(self) -> str:
        """N-Triples serialization of this term."""
        return f"<{self.value}>"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.value


@dataclass(frozen=True, order=True)
class Literal:
    """An RDF literal: a lexical form plus optional datatype or language tag."""

    lexical: str
    datatype: Optional[str] = None
    language: Optional[str] = None

    def __post_init__(self) -> None:
        if self.datatype is not None and self.language is not None:
            raise ValueError("a literal cannot carry both a datatype and a language tag")

    @property
    def value(self) -> Union[str, int, float, bool]:
        """The Python value of the literal, decoded from its datatype."""
        if self.datatype == XSD.integer:
            return int(self.lexical)
        if self.datatype in (XSD.decimal, XSD.double, XSD.float):
            return float(self.lexical)
        if self.datatype == XSD.boolean:
            return self.lexical in ("true", "1")
        return self.lexical

    def n3(self) -> str:
        """N-Triples serialization of this term."""
        escaped = (
            self.lexical.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        )
        if self.language:
            return f'"{escaped}"@{self.language}'
        if self.datatype:
            return f'"{escaped}"^^<{self.datatype}>'
        return f'"{escaped}"'

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.lexical


Term = Union[IRI, Literal]


def term_from_python(value: Union[str, int, float, bool, IRI, Literal]) -> Term:
    """Coerce a plain Python value into an RDF term.

    Strings become plain literals; use :class:`IRI` explicitly for IRIs.
    """
    if isinstance(value, (IRI, Literal)):
        return value
    if isinstance(value, bool):
        return Literal("true" if value else "false", datatype=XSD.boolean)
    if isinstance(value, int):
        return Literal(str(value), datatype=XSD.integer)
    if isinstance(value, float):
        return Literal(repr(value), datatype=XSD.double)
    if isinstance(value, str):
        return Literal(value)
    raise TypeError(f"cannot convert {type(value).__name__} to an RDF term")


@dataclass(frozen=True, order=True)
class Triple:
    """A single (subject, predicate, object) statement.

    Subjects and predicates are IRIs; objects may be IRIs or literals.
    """

    subject: IRI
    predicate: IRI
    object: Term

    def __post_init__(self) -> None:
        if not isinstance(self.subject, IRI):
            raise TypeError("triple subject must be an IRI")
        if not isinstance(self.predicate, IRI):
            raise TypeError("triple predicate must be an IRI")
        if not isinstance(self.object, (IRI, Literal)):
            raise TypeError("triple object must be an IRI or a Literal")

    def as_tuple(self) -> Tuple[IRI, IRI, Term]:
        """The triple as a plain 3-tuple (subject, predicate, object)."""
        return (self.subject, self.predicate, self.object)

    def n3(self) -> str:
        """One N-Triples line (without the trailing newline)."""
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."

    def replace(self, subject: Optional[IRI] = None, predicate: Optional[IRI] = None,
                object: Optional[Term] = None) -> "Triple":
        """A copy of this triple with the given positions substituted."""
        return Triple(
            subject if subject is not None else self.subject,
            predicate if predicate is not None else self.predicate,
            object if object is not None else self.object,
        )


class Namespace:
    """A convenience factory minting IRIs under a common prefix.

    >>> EX = Namespace("http://example.org/")
    >>> EX.Alice
    IRI(value='http://example.org/Alice')
    >>> EX["knows"]
    IRI(value='http://example.org/knows')
    """

    def __init__(self, prefix: str):
        if not prefix:
            raise ValueError("namespace prefix must be non-empty")
        self.prefix = prefix

    def __getattr__(self, name: str) -> IRI:
        if name.startswith("_"):
            raise AttributeError(name)
        return IRI(self.prefix + name)

    def __getitem__(self, name: str) -> IRI:
        return IRI(self.prefix + name)

    def term(self, name: str) -> IRI:
        """Mint an IRI for ``name`` under this namespace."""
        return IRI(self.prefix + name)

    def __contains__(self, term: Term) -> bool:
        return isinstance(term, IRI) and term.value.startswith(self.prefix)

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"Namespace({self.prefix!r})"


class _XSD:
    """The XML Schema datatypes used by :class:`Literal`."""

    integer = "http://www.w3.org/2001/XMLSchema#integer"
    decimal = "http://www.w3.org/2001/XMLSchema#decimal"
    double = "http://www.w3.org/2001/XMLSchema#double"
    float = "http://www.w3.org/2001/XMLSchema#float"
    boolean = "http://www.w3.org/2001/XMLSchema#boolean"
    string = "http://www.w3.org/2001/XMLSchema#string"
    date = "http://www.w3.org/2001/XMLSchema#date"
    gYear = "http://www.w3.org/2001/XMLSchema#gYear"


XSD = _XSD()

RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
OWL = Namespace("http://www.w3.org/2002/07/owl#")

#: The default namespace for entities minted by this toolkit.
REPRO = Namespace("http://repro.dev/kg/")
