"""Hash-sharded triple storage behind a drop-in ``TripleStore`` façade.

The survey's "millions of users" read path outgrows one monolithic
:class:`~repro.kg.store.TripleStore`: every index lives in one set of hash
maps, so bulk load, mixed read/write and selective pattern matching all
serialize on one structure. :class:`ShardedTripleStore` partitions the
store into N sub-stores **by subject hash** (CRC32 of the subject IRI —
Python's string hash is process-salted and would not be stable across
runs) while preserving the *entire* TripleStore contract:

* **insertion-order iteration** — the façade keeps the global
  ``_triples`` dict itself (membership + order); only the SPO/POS/OSP
  indexes move down into the shards, so ``list(store)`` is byte-identical
  to the unsharded store at any shard count;
* **idempotent batch mutators** with one version bump per effective
  batch, and a ``version`` counter *composed* from the shard versions
  (direct writes to a sub-store are folded in as drift), so the
  KnowledgeGraph read caches and the WAL's version-as-LSN discipline
  keep working unchanged;
* **deterministic reads** — a subject-bound pattern routes to exactly one
  shard; an unbound-subject pattern broadcasts to the shards that contain
  the bound predicate (predicate-routed broadcast) and k-way-merges the
  per-shard sorted results with the same ``_term_key`` order the
  unsharded ``match`` produces. The fan-out can run through a
  :class:`~repro.core.executor.ParallelExecutor`; results are identical
  at any worker count.

:class:`DurableShardedTripleStore` adds per-shard write-ahead logs under
``shard-NN/`` plus one *global* snapshot. Per-shard logs lose the
cross-shard interleave a single log gets for free, so every logged run
carries a globally monotonic ``seq`` (see ``WalRecord.seq``); recovery
scans all shard logs, truncates torn tails, merges records by ``seq`` and
replays the **longest contiguous prefix** — a gap (a run lost to a torn
tail on one shard) cuts everything after it, on every shard, so the
recovered state is always a state the store actually passed through. A
batch interrupted *mid-logging* may be restored only up to its last
durable run; crashes between batches (the case the crash harness
injects) recover byte-identically.
"""

from __future__ import annotations

import heapq
import json
import os
import zlib
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.observability import resolve_obs
from repro.kg.rdf import parse_ntriples_line
from repro.kg.store import TripleStore, _distinct, _term_key
from repro.kg.triples import IRI, Literal, Term, Triple
from repro.kg.wal import (
    RecoveryReport,
    WalRecord,
    WriteAheadLog,
    encode_record,
    scan_wal,
)

__all__ = [
    "DEFAULT_SHARDS", "DurableShardedTripleStore", "MANIFEST_FILENAME",
    "ShardedTripleStore", "recover_sharded", "shard_of",
]

DEFAULT_SHARDS = 4

#: Advisory shard-count manifest inside a durable sharded directory.
MANIFEST_FILENAME = "manifest.json"

#: Global snapshot file (insertion order, ``# lsn=`` + ``# version=`` header).
SNAPSHOT_FILENAME = "snapshot.nt"

_SHARD_DIR = "shard-{:02d}"


def shard_of(subject: IRI, shard_count: int) -> int:
    """The shard owning ``subject``: CRC32 of the IRI, mod the shard count.

    CRC32 rather than ``hash()`` because Python salts string hashes per
    process — routing must agree between the writer, a recovery in a fresh
    process, and any future reader of the same directory.
    """
    return zlib.crc32(subject.value.encode("utf-8")) % shard_count


class ShardedTripleStore(TripleStore):
    """N hash-partitioned sub-stores behind the full TripleStore contract.

    The façade owns global membership and insertion order (the inherited
    ``_triples`` dict) plus a predicate registry that replicates the POS
    index's key lifecycle (created on first use, dropped when emptied) so
    ``relations()``/``stats()`` stay byte-identical. The inherited
    SPO/POS/OSP maps stay empty — all index structure lives in the shards.
    """

    def __init__(self, triples: Optional[Iterable[Triple]] = None, *,
                 shards: int = DEFAULT_SHARDS, executor=None):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        # Shard state must exist before TripleStore.__init__, which calls
        # (our) add_all for any seed triples.
        self._shards: List[TripleStore] = [TripleStore() for _ in range(shards)]
        self._executor = executor
        self._pred_counts: Dict[IRI, int] = {}
        self._shard_version_base = 0
        super().__init__(triples)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def shards(self) -> Tuple[TripleStore, ...]:
        """The sub-stores, in shard order (read-only view)."""
        return tuple(self._shards)

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def shard_index(self, subject: IRI) -> int:
        """Which shard owns ``subject``."""
        return shard_of(subject, len(self._shards))

    def shard_stats(self) -> List[Dict[str, int]]:
        """Per-shard triple/relation counts and versions (``repro kg stats``)."""
        return [{"triples": len(shard), "relations": len(shard.relations()),
                 "version": shard.version}
                for shard in self._shards]

    # ------------------------------------------------------------------
    # Version composition
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Façade version plus any un-folded drift from direct shard writes.

        Every façade mutation bumps ``_version`` once and re-bases on the
        shard versions it advanced; a write made directly on a sub-store
        shows up as drift (shard-version sum above the base) and raises the
        composed value immediately, so version-keyed caches can never serve
        state the shards no longer hold. Monotone by construction.
        """
        return self._version + (sum(s.version for s in self._shards)
                                - self._shard_version_base)

    def _sync_drift(self) -> None:
        """Fold accumulated direct-shard-write drift into ``_version``."""
        current = sum(s.version for s in self._shards)
        drift = current - self._shard_version_base
        if drift:
            self._version += drift
            self._shard_version_base = current

    def _rebase(self) -> None:
        """Absorb this mutator's own shard bumps into the version base."""
        self._shard_version_base = sum(s.version for s in self._shards)

    # ------------------------------------------------------------------
    # Mutation (batch overrides: one bump per touched shard per batch)
    # ------------------------------------------------------------------
    def _bump_pred(self, predicate: IRI, delta: int) -> None:
        count = self._pred_counts.get(predicate, 0) + delta
        if count <= 0:
            # Dropping the key (and re-appending on the next add) replicates
            # the POS index's key order exactly — relations() depends on it.
            self._pred_counts.pop(predicate, None)
        else:
            self._pred_counts[predicate] = count

    def add(self, triple: Triple) -> bool:
        return self.add_all((triple,)) == 1

    def add_all(self, triples: Iterable[Triple]) -> int:
        self._sync_drift()
        added: List[Triple] = []
        groups: Dict[int, List[Triple]] = {}
        for t in triples:
            if t in self._triples:
                continue
            self._triples[t] = None
            self._bump_pred(t.predicate, +1)
            groups.setdefault(self.shard_index(t.subject), []).append(t)
            added.append(t)
        if not added:
            return 0
        for index, group in groups.items():
            self._shards[index].add_all(group)
        self._rebase()
        self._version += 1
        self._committed("add", added)
        return len(added)

    def remove(self, triple: Triple) -> bool:
        return self.remove_all((triple,)) == 1

    def remove_all(self, triples: Iterable[Triple]) -> int:
        self._sync_drift()
        removed: List[Triple] = []
        groups: Dict[int, List[Triple]] = {}
        for t in list(triples):
            if t not in self._triples:
                continue
            del self._triples[t]
            self._bump_pred(t.predicate, -1)
            groups.setdefault(self.shard_index(t.subject), []).append(t)
            removed.append(t)
        if not removed:
            return 0
        for index, group in groups.items():
            self._shards[index].remove_all(group)
        self._rebase()
        self._version += 1
        self._committed("remove", removed)
        return len(removed)

    def clear(self) -> None:
        self._sync_drift()
        self._triples.clear()
        self._pred_counts.clear()
        for shard in self._shards:
            shard.clear()
        self._rebase()
        self._version += 1
        self._committed("clear", ())

    # ------------------------------------------------------------------
    # Reads (route on subject; predicate-routed broadcast otherwise)
    # ------------------------------------------------------------------
    def _read(self, index: int, fn: Callable[[TripleStore], List]):
        """Apply one read closure to the shard at ``index``.

        Every per-shard read in the contract funnels through this hook —
        subject-routed single-shard lookups and each branch of a broadcast
        alike — so a subclass can interpose a transport (replica choice,
        fault injection, failover) without re-implementing the routing
        logic. The base implementation reads the local sub-store directly.
        """
        return fn(self._shards[index])

    def _targets(self, predicate: Optional[IRI]) -> List[int]:
        """Broadcast target *indices*: with a bound predicate, only the
        shards that actually contain it (predicate-routed broadcast)."""
        if predicate is None:
            return list(range(len(self._shards)))
        return [i for i, s in enumerate(self._shards)
                if s.has_predicate(predicate)]

    def _fanout(self, targets: List[int],
                fn: Callable[[TripleStore], List]) -> List[List]:
        executor = self._executor
        if executor is not None and not executor.sequential and len(targets) > 1:
            return executor.map(targets, lambda i: self._read(i, fn),
                                label="kg.shard")
        return [self._read(i, fn) for i in targets]

    @staticmethod
    def _merge(parts: List[List], key) -> List:
        live = [part for part in parts if part]
        if not live:
            return []
        if len(live) == 1:
            return live[0]
        return list(heapq.merge(*live, key=key))

    def match(self, subject: Optional[IRI] = None,
              predicate: Optional[IRI] = None,
              object: Optional[Term] = None) -> List[Triple]:
        s, p, o = subject, predicate, object
        if s is None and p is None and o is None:
            return list(self._triples)
        if s is not None and p is not None and o is not None:
            t = Triple(s, p, o)
            return [t] if t in self._triples else []
        if s is not None:
            return self._read(self.shard_index(s), lambda sh: sh.match(s, p, o))
        parts = self._fanout(self._targets(p), lambda sh: sh.match(s, p, o))
        # Per-shard results arrive in the unsharded order for their branch;
        # the merge key re-states that order so the k-way merge reproduces
        # the monolithic store's output exactly.
        if p is not None and o is not None:
            key = lambda t: _term_key(t.subject)  # noqa: E731
        elif p is not None:
            key = lambda t: (_term_key(t.object), _term_key(t.subject))  # noqa: E731
        else:  # o bound only
            key = lambda t: (_term_key(t.subject), _term_key(t.predicate))  # noqa: E731
        return self._merge(parts, key)

    def match_count(self, subject: Optional[IRI] = None,
                    predicate: Optional[IRI] = None,
                    object: Optional[Term] = None) -> int:
        s, p, o = subject, predicate, object
        if s is None and p is None and o is None:
            return len(self._triples)
        if s is not None and p is not None and o is not None:
            return 1 if Triple(s, p, o) in self._triples else 0
        if s is not None:
            return self._read(self.shard_index(s),
                              lambda sh: sh.match_count(s, p, o))
        return sum(self._fanout(self._targets(p),
                                lambda sh: sh.match_count(s, p, o)))

    def subjects(self, predicate: Optional[IRI] = None,
                 object: Optional[Term] = None) -> List[IRI]:
        p, o = predicate, object
        if p is None and o is None:
            return _distinct(t.subject for t in self._triples)
        if p is not None and o is None:
            # Dedup over the merged match stream — identical to the
            # unsharded first-appearance-in-(object, subject)-order.
            return _distinct(t.subject for t in self.match(None, p, None))
        # Subjects are disjoint across shards, so a plain sorted merge of
        # the per-shard (already sorted, already distinct) lists suffices.
        parts = self._fanout(self._targets(p), lambda sh: sh.subjects(p, o))
        return self._merge(parts, _term_key)

    def predicates(self, subject: Optional[IRI] = None,
                   object: Optional[Term] = None) -> List[IRI]:
        s, o = subject, object
        if s is not None:
            return self._read(self.shard_index(s),
                              lambda sh: sh.predicates(s, o))
        if o is None:
            return _distinct(t.predicate for t in self._triples)
        return _distinct(t.predicate for t in self.match(None, None, o))

    def objects(self, subject: Optional[IRI] = None,
                predicate: Optional[IRI] = None) -> List[Term]:
        s, p = subject, predicate
        if s is not None:
            return self._read(self.shard_index(s),
                              lambda sh: sh.objects(s, p))
        if p is None:
            return _distinct(t.object for t in self._triples)
        # The same object may live in several shards; merge with
        # adjacent-equal dedup (equal _term_key implies equal term).
        parts = self._fanout(self._targets(p), lambda sh: sh.objects(None, p))
        merged = self._merge(parts, _term_key)
        out: List[Term] = []
        for term in merged:
            if not out or out[-1] != term:
                out.append(term)
        return out

    def value(self, subject: IRI, predicate: IRI) -> Optional[Term]:
        return self._read(self.shard_index(subject),
                          lambda sh: sh.value(subject, predicate))

    def relations(self) -> List[IRI]:
        return list(self._pred_counts)

    def has_predicate(self, predicate: IRI) -> bool:
        return predicate in self._pred_counts

    def predicate_stats(self) -> Dict[IRI, Dict[str, int]]:
        out: Dict[IRI, Dict[str, int]] = {}
        per_shard = self._fanout(list(range(len(self._shards))),
                                 lambda sh: sh.predicate_stats())
        for p in self._pred_counts:
            count = subjects = 0
            for stats in per_shard:
                row = stats.get(p)
                if row:
                    count += row["count"]
                    subjects += row["subjects"]  # disjoint across shards
            out[p] = {"count": count, "subjects": subjects,
                      "objects": len(self.objects(None, p))}
        return out

    def stats(self) -> Dict[str, int]:
        return {
            "triples": len(self._triples),
            "entities": len(self.entities()),
            "relations": len(self._pred_counts),
            "literals": sum(1 for t in self._triples
                            if isinstance(t.object, Literal)),
        }

    def copy(self) -> "ShardedTripleStore":
        return ShardedTripleStore(self._triples, shards=len(self._shards),
                                  executor=self._executor)

    # ------------------------------------------------------------------
    # Replay-level application (no version bumps, no _committed)
    # ------------------------------------------------------------------
    def _replay_insert(self, triple: Triple) -> None:
        if triple in self._triples:
            return
        self._triples[triple] = None
        self._bump_pred(triple.predicate, +1)
        self._shards[self.shard_index(triple.subject)]._insert(triple)

    def _replay_delete(self, triple: Triple) -> None:
        if triple not in self._triples:
            return
        del self._triples[triple]
        self._bump_pred(triple.predicate, -1)
        self._shards[self.shard_index(triple.subject)]._delete(triple)

    def _replay_clear(self) -> None:
        self._triples.clear()
        self._pred_counts.clear()
        for shard in self._shards:
            shard._triples.clear()
            shard._spo.clear()
            shard._pos.clear()
            shard._osp.clear()


class DurableShardedTripleStore(ShardedTripleStore):
    """A sharded store with per-shard WALs and a global snapshot.

    Layout under ``directory``::

        manifest.json      {"shards": N}   (advisory; recovery re-routes)
        snapshot.nt        global image, insertion order,
                           "# lsn=<seq>" + "# version=<version>" header
        shard-00/wal.log   runs owned by shard 0, framed + CRC'd
        ...

    Each effective batch is logged as consecutive same-shard *runs*, one
    record per run, each carrying the batch's LSN (the composed version
    after the batch) and a globally monotonic ``seq``. Recovery merges all
    shards' records by ``seq`` and replays the longest contiguous prefix;
    records beyond a gap are dropped from their logs so re-used sequence
    numbers can never collide. Routing happens at replay time, so a
    directory written with one shard count recovers correctly under
    another (the manifest is advisory).
    """

    def __init__(self, directory: str, *, shards: Optional[int] = None,
                 snapshot_every: Optional[int] = None, executor=None,
                 obs=None):
        self._wals: Optional[List[WriteAheadLog]] = None  # gates _committed
        self.directory = directory
        self.snapshot_every = snapshot_every
        self.obs = resolve_obs(obs)
        self.manifest_path = os.path.join(directory, MANIFEST_FILENAME)
        self.snapshot_path = os.path.join(directory, SNAPSHOT_FILENAME)
        if shards is None:
            shards = self._read_manifest() or DEFAULT_SHARDS
        self.wal_paths = [os.path.join(directory, _SHARD_DIR.format(i), "wal.log")
                          for i in range(shards)]
        for path in self.wal_paths:
            os.makedirs(os.path.dirname(path), exist_ok=True)
        self._seq = 0
        self._records_since_snapshot = 0
        self.recoveries = 0
        self.truncated_bytes = 0
        self.snapshots_written = 0
        super().__init__(shards=shards, executor=executor)
        self.last_recovery = self._recover()
        self._wals = [WriteAheadLog(path) for path in self.wal_paths]
        self._write_manifest()
        self.obs.register_source("kg.wal", self.durability_stats)

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    def _read_manifest(self) -> Optional[int]:
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as handle:
                return int(json.load(handle)["shards"])
        except (OSError, ValueError, KeyError):
            return None

    def _write_manifest(self) -> None:
        tmp = self.manifest_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump({"shards": len(self._shards)}, handle)
        os.replace(tmp, self.manifest_path)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover(self) -> RecoveryReport:
        snap_seq = 0
        snap_count = 0
        had_state = os.path.exists(self.snapshot_path) or any(
            os.path.exists(path) for path in self.wal_paths)
        if os.path.exists(self.snapshot_path):
            triples, snap_seq, snap_version = _read_global_snapshot(
                self.snapshot_path)
            for triple in triples:
                self._replay_insert(triple)
            snap_count = len(triples)
            self._version = snap_version
        per_shard_records: List[List[WalRecord]] = []
        truncated = 0
        for path in self.wal_paths:
            records, cut = scan_wal(path, truncate=True)
            truncated += cut
            per_shard_records.append(
                [r for r in records
                 if r.seq is not None and r.seq > snap_seq])
        merged = sorted((r for records in per_shard_records for r in records),
                        key=lambda r: r.seq)
        # Longest contiguous prefix: a missing seq means a run was lost to a
        # torn tail on its shard; everything after it (on every shard) is
        # beyond the last globally consistent state and must be dropped.
        cutoff = snap_seq
        prefix: List[WalRecord] = []
        for record in merged:
            if record.seq != cutoff + 1:
                break
            cutoff = record.seq
            prefix.append(record)
        if len(prefix) != len(merged):
            truncated += self._drop_orphan_records(per_shard_records, cutoff)
        replayed = 0
        for record in prefix:
            if record.op == "add":
                for triple in record.triples:
                    self._replay_insert(triple)
            elif record.op == "remove":
                for triple in record.triples:
                    self._replay_delete(triple)
            else:  # clear (one replicated record per shard; idempotent)
                self._replay_clear()
            self._version = record.lsn
            replayed += 1
        self._seq = cutoff
        self._records_since_snapshot = replayed
        self._rebase()
        self.truncated_bytes += truncated
        if had_state:
            self.recoveries += 1
            if self.obs.enabled:
                self.obs.count("wal.recoveries")
                if truncated:
                    self.obs.count("wal.truncated_bytes", truncated)
        return RecoveryReport(
            snapshot_lsn=snap_seq, snapshot_triples=snap_count,
            records_replayed=replayed, truncated_bytes=truncated,
            version=self._version, triples=len(self))

    def _drop_orphan_records(self, per_shard_records: List[List[WalRecord]],
                             cutoff: int) -> int:
        """Rewrite shard logs to drop records past the consistent prefix.

        Returns the byte count dropped (reported as truncation). Without
        this, sequence numbers re-allocated after recovery would collide
        with the orphaned records still sitting in other shards' logs.
        """
        dropped = 0
        for path, records in zip(self.wal_paths, per_shard_records):
            keep = [r for r in records if r.seq <= cutoff]
            if len(keep) == len(records):
                continue
            dropped += sum(len(encode_record(r)) for r in records[len(keep):])
            wal = WriteAheadLog(path)
            wal.reset()
            for record in keep:
                wal.append(record)
            wal.close()
        return dropped

    # ------------------------------------------------------------------
    # Logging
    # ------------------------------------------------------------------
    def _committed(self, op: str, triples: Iterable[Triple]) -> None:
        if self._wals is None:
            return  # bootstrap/replay: state is already on disk
        lsn = self._version
        nbytes = records = 0
        if op == "clear":
            # Replicated to every shard so each log is self-contained;
            # replay is idempotent and the seqs keep the global order.
            for wal in self._wals:
                self._seq += 1
                nbytes += wal.append(WalRecord("clear", lsn, (), seq=self._seq))
                records += 1
        else:
            # One record per consecutive same-shard run, preserving the
            # batch's internal order across the per-shard logs.
            run: List[Triple] = []
            run_shard = -1
            for t in triples:
                index = self.shard_index(t.subject)
                if index != run_shard and run:
                    self._seq += 1
                    nbytes += self._wals[run_shard].append(
                        WalRecord(op, lsn, tuple(run), seq=self._seq))
                    records += 1
                    run = []
                run_shard = index
                run.append(t)
            if run:
                self._seq += 1
                nbytes += self._wals[run_shard].append(
                    WalRecord(op, lsn, tuple(run), seq=self._seq))
                records += 1
        if self.obs.enabled:
            self.obs.count("wal.records", records)
            self.obs.count("wal.bytes", nbytes)
        self._records_since_snapshot += 1
        if self.snapshot_every and \
                self._records_since_snapshot >= self.snapshot_every:
            self.snapshot()

    def snapshot(self) -> int:
        """Write the global snapshot atomically, then reset every shard log.

        Crash-safe in the same way as the unsharded snapshot: records left
        in a log whose reset did not happen carry ``seq`` ≤ the snapshot's
        and are skipped on replay.
        """
        tmp = self.snapshot_path + ".tmp"
        count = 0
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(f"# lsn={self._seq}\n")
            handle.write(f"# version={self._version}\n")
            for triple in self._triples:
                handle.write(triple.n3() + "\n")
                count += 1
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.snapshot_path)
        for wal in (self._wals or ()):
            wal.reset()
        self._records_since_snapshot = 0
        self.snapshots_written += 1
        if self.obs.enabled:
            self.obs.count("wal.snapshots")
        return count

    def close(self) -> None:
        """Close every shard's WAL file handle."""
        for wal in (self._wals or ()):
            wal.close()

    def durability_stats(self) -> dict:
        """Aggregate durability counters across all shard WALs."""
        wals = self._wals or []
        return {
            "wal_records": sum(w.records_written for w in wals),
            "wal_bytes": sum(w.bytes_written for w in wals),
            "snapshots": self.snapshots_written,
            "recoveries": self.recoveries,
            "truncated_bytes": self.truncated_bytes,
            "lsn": self._version,
            "seq": self._seq,
            "triples": len(self),
            "shards": len(self._shards),
        }


def _read_global_snapshot(path: str) -> Tuple[List[Triple], int, int]:
    """Read a global snapshot back as ``(triples, seq, version)``."""
    seq = version = 0
    triples: List[Triple] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            if line.startswith("# lsn="):
                seq = int(line[len("# lsn="):].strip())
                continue
            if line.startswith("# version="):
                version = int(line[len("# version="):].strip())
                continue
            triple = parse_ntriples_line(line)
            if triple is not None:
                triples.append(triple)
    return triples, seq, version


def recover_sharded(directory: str, *, shards: Optional[int] = None,
                    executor=None, obs=None) -> DurableShardedTripleStore:
    """Recover the sharded durable store persisted under ``directory``."""
    return DurableShardedTripleStore(directory, shards=shards,
                                     executor=executor, obs=obs)
