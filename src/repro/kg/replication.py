"""Replicated shard serving: partition-tolerant reads over the hash shards.

The sharded store (:mod:`repro.kg.sharding`) parallelizes reads but keeps
every shard in-process: one dead shard stalls every broadcast. This module
adds the distributed half of the story in the repo's deterministic,
no-wall-clock style:

* :class:`TransportProfile` / :class:`ShardTransport` — a *simulated*
  network between the read path and each (shard, replica) endpoint.
  Latency, slow tails, drops, timeouts and full partitions are a pure
  function of ``(seed, shard, replica, op, per-endpoint call index)`` —
  the same discipline as ``FaultProfile`` — so every chaos run replays
  byte-identically at any worker count.
* :class:`ReplicatedShardedTripleStore` — each of the N hash shards
  backed by R replicas (replica 0 *is* the primary sub-store; followers
  are kept consistent by shipping the primary's WAL records through the
  transport). Reads route through per-(shard, replica) circuit breakers,
  fire a hedged backup request when the first replica is slower than the
  profile's seeded p99 threshold, and fail over across replicas. When a
  shard loses read quorum the store degrades to stale-but-versioned
  reads: results are served from a lagging follower and flagged (or, in
  ``strict`` mode, rejected with :class:`StaleReadError`); a shard with
  no reachable replica raises :class:`ShardUnavailableError`. Both are
  :class:`~repro.core.resilience.ResilienceError` subclasses, so the
  serving gateway's tier ladder and the agent's tools degrade instead of
  erroring.
* **Anti-entropy** — a partitioned follower accumulates pending WAL
  records; :meth:`ReplicatedShardedTripleStore.heal` re-ships them once
  the partition lifts and :meth:`verify_replicas` proves the healed
  follower byte-identical (same N-Triples lines, same order) to its
  primary.

Nothing here sleeps or opens sockets; "the network" is seeded arithmetic
charged to the read's simulated latency, which is exactly what makes the
availability and hedging claims gateable in CI.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.observability import percentile, resolve_obs
from repro.core.resilience import CircuitBreaker, ResilienceError, _stable_unit
from repro.kg.sharding import DEFAULT_SHARDS, ShardedTripleStore
from repro.kg.store import TripleStore
from repro.kg.triples import Triple
from repro.kg.wal import WalRecord, apply_record

__all__ = [
    "PartitionWindow", "ReplicaUnreachableError", "ReplicatedShardedTripleStore",
    "ReplicationError", "ShardTransport", "ShardUnavailableError",
    "StaleReadError", "TransportProfile", "load_schedule_jsonl",
]


# ----------------------------------------------------------------------
# Errors
# ----------------------------------------------------------------------
class ReplicationError(ResilienceError):
    """Base class for replicated-read failures.

    Subclassing :class:`ResilienceError` is load-bearing: the serving
    gateway catches that base on tier 0 and falls through to a degraded
    tier instead of failing the request.
    """


class ReplicaUnreachableError(ReplicationError):
    """One (shard, replica) endpoint failed a simulated transport call."""

    def __init__(self, shard: int, replica: int, kind: str,
                 simulated_latency: float):
        super().__init__(
            f"shard {shard} replica {replica} unreachable ({kind})")
        self.shard = shard
        self.replica = replica
        self.kind = kind
        self.simulated_latency = simulated_latency


class ShardUnavailableError(ReplicationError):
    """No replica of a shard could serve the read (not even stale)."""

    def __init__(self, shard: int,
                 attempts: Iterable[Tuple[int, str]] = ()):
        attempts = list(attempts)
        detail = ", ".join(f"r{r}:{kind}" for r, kind in attempts) or "none"
        super().__init__(
            f"shard {shard} unavailable (attempts: {detail})")
        self.shard = shard
        self.attempts = attempts


class StaleReadError(ReplicationError):
    """Strict-consistency read refused: only lagging replicas reachable.

    Carries the version lag so a caller can decide whether the staleness
    is tolerable and retry under ``stale_ok``.
    """

    def __init__(self, shard: int, replica: int, lag: int,
                 applied_seq: int, committed_seq: int):
        super().__init__(
            f"shard {shard} replica {replica} is {lag} batch(es) stale "
            f"(applied seq {applied_seq} < committed seq {committed_seq})")
        self.shard = shard
        self.replica = replica
        self.lag = lag
        self.applied_seq = applied_seq
        self.committed_seq = committed_seq


# ----------------------------------------------------------------------
# Transport
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PartitionWindow:
    """A scheduled partition of one endpoint (or a wildcard set of them).

    ``shard``/``replica`` of ``None`` match every shard/replica; the
    window covers per-endpoint call indexes ``start <= index < stop``
    (``stop=None`` means "until restored"). Indexes — not wall clock —
    because per-endpoint call counts are the only time base that replays
    identically at every worker count.
    """

    shard: Optional[int] = None
    replica: Optional[int] = None
    start: int = 0
    stop: Optional[int] = None

    def covers(self, shard: int, replica: int, index: int) -> bool:
        """Whether this window cuts ``(shard, replica)`` at call ``index``."""
        if self.shard is not None and self.shard != shard:
            return False
        if self.replica is not None and self.replica != replica:
            return False
        if index < self.start:
            return False
        return self.stop is None or index < self.stop

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the window for a fault-schedule JSONL record."""
        return {"type": "partition", "shard": self.shard,
                "replica": self.replica, "start": self.start,
                "stop": self.stop}


@dataclass(frozen=True)
class TransportOutcome:
    """What the simulated network did to one call."""

    status: str          # ok | drop | timeout | partition
    latency: float       # simulated seconds until response/detection

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass(frozen=True)
class TransportProfile:
    """Seeded distribution of latency and faults for the shard network.

    Per-call behaviour is a pure function of ``(seed, shard, replica,
    op, index)``: base latency spread by ``jitter``, a ``tail_rate``
    fraction of calls multiplied into a slow tail, and independent
    ``drop_rate``/``timeout_rate`` failures that cost
    ``timeout_latency`` to detect. ``partitions`` adds scheduled
    windows during which an endpoint is fully unreachable.
    """

    seed: int = 0
    base_latency: float = 0.004
    jitter: float = 0.5
    tail_rate: float = 0.0
    tail_multiplier: float = 25.0
    drop_rate: float = 0.0
    timeout_rate: float = 0.0
    timeout_latency: float = 0.25
    partitions: Tuple[PartitionWindow, ...] = ()

    def hedge_threshold(self) -> float:
        """The seeded p99 proxy after which a hedged backup read fires.

        Non-tail latencies land in ``[base, base * (1 + jitter))``, so
        the upper edge separates the healthy distribution from tails and
        timeouts exactly — the profile's own "p99" with no measurement.
        """
        return self.base_latency * (1.0 + self.jitter)

    def outcome(self, shard: int, replica: int, op: str,
                index: int) -> TransportOutcome:
        """The deterministic fate of call ``index`` to one endpoint."""
        for window in self.partitions:
            if window.covers(shard, replica, index):
                return TransportOutcome("partition", self.timeout_latency)
        key = (str(self.seed), str(shard), str(replica), op, str(index))
        if self.drop_rate and _stable_unit("drop", *key) < self.drop_rate:
            return TransportOutcome("drop", self.timeout_latency)
        if self.timeout_rate and \
                _stable_unit("timeout", *key) < self.timeout_rate:
            return TransportOutcome("timeout", self.timeout_latency)
        latency = self.base_latency * (
            1.0 + self.jitter * _stable_unit("lat", *key))
        if self.tail_rate and _stable_unit("tail", *key) < self.tail_rate:
            latency *= self.tail_multiplier
        return TransportOutcome("ok", latency)

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the profile for a fault-schedule JSONL record."""
        return {
            "type": "profile", "seed": self.seed,
            "base_latency": self.base_latency, "jitter": self.jitter,
            "tail_rate": self.tail_rate,
            "tail_multiplier": self.tail_multiplier,
            "drop_rate": self.drop_rate, "timeout_rate": self.timeout_rate,
            "timeout_latency": self.timeout_latency,
        }


class ShardTransport:
    """The simulated network in front of every (shard, replica) endpoint.

    Keeps one call counter per ``(shard, replica, op)`` endpoint — the
    deterministic time base for the profile — plus a set of *forced*
    partitions that tests, the chaos suite and the CLI flip mid-run
    (``force_partition``/``restore``). A faulted call raises
    :class:`ReplicaUnreachableError` **without** invoking the payload:
    a dropped message must not have applied its records.
    """

    def __init__(self, profile: Optional[TransportProfile] = None):
        self.profile = profile or TransportProfile()
        self._ops: Dict[Tuple[int, int, str], int] = {}
        self._forced: set = set()
        self._lock = threading.Lock()
        self.calls = 0
        self.ok = 0
        self.drops = 0
        self.timeouts = 0
        self.partitioned = 0

    def force_partition(self, shard: int, replica: int) -> None:
        """Cut one endpoint off until :meth:`restore` (chaos/CLI knob)."""
        with self._lock:
            self._forced.add((shard, replica))

    def restore(self, shard: int, replica: int) -> None:
        """Lift a forced partition from one ``(shard, replica)`` endpoint."""
        with self._lock:
            self._forced.discard((shard, replica))

    def restore_all(self) -> None:
        """Lift every forced partition (scheduled windows still apply)."""
        with self._lock:
            self._forced.clear()

    def forced_partitions(self) -> List[Tuple[int, int]]:
        """The currently forced ``(shard, replica)`` pairs, sorted."""
        with self._lock:
            return sorted(self._forced)

    def call(self, shard: int, replica: int, op: str,
             fn: Callable[[], Any]) -> Tuple[Any, float]:
        """Run ``fn`` "over the network": returns ``(value, latency)``.

        Raises :class:`ReplicaUnreachableError` (payload not invoked)
        when the profile or a forced partition fails the call.
        """
        with self._lock:
            key = (shard, replica, op)
            index = self._ops.get(key, 0)
            self._ops[key] = index + 1
            self.calls += 1
            forced = (shard, replica) in self._forced
        if forced:
            outcome = TransportOutcome("partition",
                                       self.profile.timeout_latency)
        else:
            outcome = self.profile.outcome(shard, replica, op, index)
        if not outcome.ok:
            with self._lock:
                if outcome.status == "drop":
                    self.drops += 1
                elif outcome.status == "timeout":
                    self.timeouts += 1
                else:
                    self.partitioned += 1
            raise ReplicaUnreachableError(shard, replica, outcome.status,
                                          outcome.latency)
        value = fn()
        with self._lock:
            self.ok += 1
        return value, outcome.latency

    def stats(self) -> Dict[str, int]:
        """Transport ledger: calls == ok + drops + timeouts + partitioned."""
        with self._lock:
            return {"calls": self.calls, "ok": self.ok,
                    "drops": self.drops, "timeouts": self.timeouts,
                    "partitioned": self.partitioned,
                    "forced_partitions": len(self._forced)}

    # ------------------------------------------------------------------
    # Fault-schedule JSONL (CI artifact / `serve replay --schedule`)
    # ------------------------------------------------------------------
    def export_schedule_jsonl(self, path: str) -> int:
        """Write the profile + partition schedule as one JSONL file.

        The first record is the profile; each further record is one
        scheduled window or currently forced partition. The file round-
        trips through :func:`load_schedule_jsonl`, so a chaos run's
        exact fault schedule can be archived by CI and replayed later.
        """
        records = [self.profile.to_dict()]
        records.extend(w.to_dict() for w in self.profile.partitions)
        for shard, replica in self.forced_partitions():
            records.append({"type": "forced", "shard": shard,
                            "replica": replica})
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        return len(records)


def load_schedule_jsonl(path: str) -> Tuple[TransportProfile,
                                            List[Tuple[int, int]]]:
    """Read a fault schedule back: ``(profile, forced partitions)``.

    Raises :class:`ValueError` with a one-line message on a corrupt or
    misleading file — including a corrupt *first* record — so CLI
    callers can degrade to rc 2 without a traceback.
    """
    windows: List[PartitionWindow] = []
    forced: List[Tuple[int, int]] = []
    profile_fields: Optional[Dict[str, Any]] = None
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}: corrupt schedule record at line {lineno}: "
                    f"{exc.msg}") from exc
            if not isinstance(record, dict) or "type" not in record:
                raise ValueError(
                    f"{path}: schedule record at line {lineno} has no type")
            kind = record["type"]
            if kind == "profile":
                profile_fields = {k: v for k, v in record.items()
                                  if k != "type"}
            elif kind == "partition":
                windows.append(PartitionWindow(
                    shard=record.get("shard"), replica=record.get("replica"),
                    start=int(record.get("start", 0)),
                    stop=record.get("stop")))
            elif kind == "forced":
                forced.append((int(record["shard"]), int(record["replica"])))
            else:
                raise ValueError(
                    f"{path}: unknown schedule record type {kind!r} "
                    f"at line {lineno}")
    if profile_fields is None:
        raise ValueError(f"{path}: schedule has no profile record")
    try:
        profile = TransportProfile(partitions=tuple(windows),
                                   **profile_fields)
    except TypeError as exc:
        raise ValueError(f"{path}: bad profile record: {exc}") from exc
    return profile, forced


# ----------------------------------------------------------------------
# Replicated store
# ----------------------------------------------------------------------
class ReplicatedShardedTripleStore(ShardedTripleStore):
    """N hash shards × R replicas behind the full TripleStore contract.

    Replica 0 of each shard *is* the primary sub-store; followers are
    plain :class:`TripleStore` copies kept consistent by shipping the
    primary's WAL records (:class:`~repro.kg.wal.WalRecord`, applied via
    :func:`~repro.kg.wal.apply_record`) through the transport. Writes are
    coordinator-local — the façade is the primary — so partitions affect
    the *read* and *ship* paths, which is where availability is won.

    Read policy, per shard, in deterministic replica order (primary
    first):

    1. Skip replicas whose breaker is open (``allow()`` drives cooldown).
    2. Call the replica through the transport; a failure records on its
       breaker and fails over to the next replica.
    3. If the **first** transport attempt exceeds the profile's hedge
       threshold (its seeded p99), fire one backup read at the next
       allowed replica and take the race winner — capping tail latency
       and masking timeouts at the cost of one extra simulated call.
    4. A reachable replica that has applied every shipped batch is
       *fresh*: serve it. A lagging replica is remembered as the best
       stale candidate while fresher ones are tried.
    5. With no fresh replica: under ``stale_ok`` serve the stale
       candidate flagged with its version lag (``last_read``); under
       ``strict`` raise :class:`StaleReadError`. With *no* reachable
       replica at all raise :class:`ShardUnavailableError`. A read that
       finds fewer than ``read_quorum`` healthy replicas counts as a
       quorum loss in the stats either way.
    """

    def __init__(self, triples: Optional[Iterable[Triple]] = None, *,
                 shards: int = DEFAULT_SHARDS, replicas: int = 2,
                 profile: Optional[TransportProfile] = None,
                 transport: Optional[ShardTransport] = None,
                 executor=None, hedging: bool = True,
                 consistency: str = "stale_ok",
                 read_quorum: Optional[int] = None,
                 breaker_threshold: int = 2, breaker_cooldown: int = 16,
                 obs=None):
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        if consistency not in ("strict", "stale_ok"):
            raise ValueError(f"unknown consistency mode {consistency!r}")
        self.replica_count = replicas
        self.transport = transport or ShardTransport(profile)
        self.hedging = hedging
        self.consistency = consistency
        self.read_quorum = read_quorum or replicas // 2 + 1
        self.obs = resolve_obs(obs)
        self._followers: List[List[TripleStore]] = [
            [TripleStore() for _ in range(replicas - 1)]
            for _ in range(shards)]
        self._shard_seq = [0] * shards
        self._applied = [[0] * replicas for _ in range(shards)]
        self._pending: List[List[List[WalRecord]]] = [
            [[] for _ in range(replicas - 1)] for _ in range(shards)]
        self._breakers = [
            [CircuitBreaker(failure_threshold=breaker_threshold,
                            cooldown=breaker_cooldown,
                            name=f"kg.shard{i}.r{r}")
             for r in range(replicas)]
            for i in range(shards)]
        self._stats_lock = threading.Lock()
        self.reads = 0
        self.hedges_fired = 0
        self.hedge_wins = 0
        self.failovers = 0
        self.stale_reads = 0
        self.stale_rejections = 0
        self.quorum_losses = 0
        self.unavailable = 0
        self.ships = 0
        self.ship_failures = 0
        self.heals = 0
        self.read_latencies: List[float] = []
        self.last_read: Dict[str, Any] = {}
        super().__init__(triples, shards=shards, executor=executor)
        self.obs.register_source("kg.replication", self.replication_stats)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def replica_store(self, shard: int, replica: int) -> TripleStore:
        """The backing store of one replica (0 = the primary sub-store)."""
        if replica == 0:
            return self._shards[shard]
        return self._followers[shard][replica - 1]

    def breaker(self, shard: int, replica: int) -> CircuitBreaker:
        """The circuit breaker guarding ``(shard, replica)``."""
        return self._breakers[shard][replica]

    def breaker_states(self) -> List[List[str]]:
        """Per-shard breaker states, e.g. ``[["closed", "open"], ...]``."""
        return [[b.state for b in row] for row in self._breakers]

    def replica_lag(self, shard: int, replica: int) -> int:
        """How many committed records ``(shard, replica)`` has not applied."""
        return self._shard_seq[shard] - self._applied[shard][replica]

    # ------------------------------------------------------------------
    # Write path: WAL-record shipping
    # ------------------------------------------------------------------
    def _committed(self, op: str, triples: Iterable[Triple]) -> None:
        super()._committed(op, triples)
        lsn = self._version
        if op == "clear":
            groups: Dict[int, Tuple[Triple, ...]] = {
                i: () for i in range(len(self._shards))}
        else:
            by_shard: Dict[int, List[Triple]] = {}
            for t in triples:
                by_shard.setdefault(self.shard_index(t.subject), []).append(t)
            groups = {i: tuple(g) for i, g in by_shard.items()}
        for shard, group in groups.items():
            self._shard_seq[shard] += 1
            seq = self._shard_seq[shard]
            self._applied[shard][0] = seq
            record = WalRecord(op, lsn, group, seq=seq)
            for replica in range(1, self.replica_count):
                self._pending[shard][replica - 1].append(record)
                self._ship(shard, replica)

    def _ship(self, shard: int, replica: int, *,
              bypass_breaker: bool = False) -> bool:
        """Ship every pending WAL record to one follower.

        The whole pending queue goes in one transport call, so a follower
        that rejoins after a partition catches up in one successful ship
        (this *is* the anti-entropy transfer). A faulted call applies
        nothing — the queue survives for the next attempt.
        """
        pending = self._pending[shard][replica - 1]
        if not pending:
            return True
        breaker = self._breakers[shard][replica]
        if not bypass_breaker and not breaker.allow():
            with self._stats_lock:
                self.ship_failures += 1
            return False
        store = self._followers[shard][replica - 1]

        def apply() -> int:
            for record in pending:
                apply_record(store, record)
            return len(pending)

        try:
            self.transport.call(shard, replica, "ship", apply)
        except ReplicaUnreachableError:
            breaker.record_failure()
            with self._stats_lock:
                self.ship_failures += 1
            return False
        if bypass_breaker:
            breaker.reset()
        else:
            breaker.record_success()
        self._applied[shard][replica] = pending[-1].seq
        pending.clear()
        with self._stats_lock:
            self.ships += 1
        return True

    # ------------------------------------------------------------------
    # Anti-entropy
    # ------------------------------------------------------------------
    def heal(self) -> Dict[str, List[Tuple[int, int]]]:
        """One anti-entropy pass: re-ship to every lagging follower.

        Bypasses (and on success resets) the replica's breaker — the heal
        *is* the recovery probe. Returns which replicas healed and which
        are still lagging (endpoint still partitioned/faulted).
        """
        healed: List[Tuple[int, int]] = []
        lagging: List[Tuple[int, int]] = []
        for shard in range(len(self._shards)):
            for replica in range(1, self.replica_count):
                if not self._pending[shard][replica - 1]:
                    continue
                if self._ship(shard, replica, bypass_breaker=True):
                    healed.append((shard, replica))
                else:
                    lagging.append((shard, replica))
        with self._stats_lock:
            self.heals += 1
        if self.obs.enabled and healed:
            self.obs.count("kg.replica.healed", len(healed))
        return {"healed": healed, "lagging": lagging}

    def verify_replicas(self) -> List[Dict[str, Any]]:
        """Byte-level comparison of every follower against its primary.

        ``identical`` compares the full N-Triples serialization *in
        insertion order* — the same bytes a snapshot would write — so a
        healed follower is provably the same store, not just the same
        set.
        """
        out: List[Dict[str, Any]] = []
        for shard in range(len(self._shards)):
            primary_lines = [t.n3() for t in self._shards[shard]]
            for replica in range(1, self.replica_count):
                follower = self._followers[shard][replica - 1]
                lines = [t.n3() for t in follower]
                out.append({
                    "shard": shard, "replica": replica,
                    "identical": lines == primary_lines,
                    "lag": self.replica_lag(shard, replica),
                    "triples": len(lines),
                })
        return out

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    @contextmanager
    def reads_consistency(self, mode: str):
        """Temporarily switch the read-consistency mode (``strict`` /
        ``stale_ok``) — e.g. the gateway runs tier 0 strict and degraded
        tiers stale-tolerant."""
        if mode not in ("strict", "stale_ok"):
            raise ValueError(f"unknown consistency mode {mode!r}")
        previous = self.consistency
        self.consistency = mode
        try:
            yield self
        finally:
            self.consistency = previous

    def _attempt(self, shard: int, replica: int,
                 fn: Callable[[TripleStore], Any]
                 ) -> Tuple[bool, Any, float, str]:
        """One transport read against one replica, breaker-recorded."""
        breaker = self._breakers[shard][replica]
        store = self.replica_store(shard, replica)
        try:
            value, latency = self.transport.call(
                shard, replica, "read", lambda: fn(store))
        except ReplicaUnreachableError as exc:
            breaker.record_failure()
            return False, None, exc.simulated_latency, exc.kind
        breaker.record_success()
        return True, value, latency, "ok"

    def _next_allowed(self, shard: int, start: int) -> Optional[int]:
        """The next replica whose breaker admits a call (consumes the
        admission — the caller must attempt it)."""
        for replica in range(start, self.replica_count):
            if self._breakers[shard][replica].allow():
                return replica
        return None

    def _read(self, index: int, fn: Callable[[TripleStore], Any]):
        seq = self._shard_seq[index]
        threshold = self.transport.profile.hedge_threshold()
        total_latency = 0.0
        stale_best: Optional[Tuple[int, Any, int]] = None  # (lag, value, r)
        failures: List[Tuple[int, str]] = []
        hedge_armed = self.hedging and self.replica_count > 1
        replica = 0
        while replica < self.replica_count:
            breaker = self._breakers[index][replica]
            if not breaker.allow():
                failures.append((replica, "breaker-open"))
                replica += 1
                continue
            ok, value, latency, kind = self._attempt(index, replica, fn)
            served = replica
            if hedge_armed and latency > threshold:
                # First attempt is slower than the seeded p99 (slow tail
                # or a timeout still ticking): race one backup replica.
                hedge_armed = False
                backup = self._next_allowed(index, replica + 1)
                if backup is not None:
                    with self._stats_lock:
                        self.hedges_fired += 1
                    ok2, value2, latency2, kind2 = self._attempt(
                        index, backup, fn)
                    race: List[Tuple[bool, float, int, Any]] = []
                    if ok:
                        race.append((self._applied[index][replica] < seq,
                                     latency, replica, value))
                    if ok2:
                        race.append((self._applied[index][backup] < seq,
                                     threshold + latency2, backup, value2))
                    if race:
                        # Freshness beats latency: a slower fresh leg wins
                        # over a faster stale one (both are already paid
                        # for — the race cost is the winner's latency).
                        race.sort(key=lambda c: (c[0], c[1]))
                        _, won_latency, won_replica, won_value = race[0]
                        if won_replica == backup:
                            with self._stats_lock:
                                self.hedge_wins += 1
                        ok, value, latency = True, won_value, won_latency
                        served = won_replica
                    else:
                        # Both legs failed: detection takes as long as the
                        # slower leg; carry on past the backup.
                        total_latency += max(latency, threshold + latency2)
                        failures.append((replica, kind))
                        failures.append((backup, kind2))
                        replica = backup + 1
                        continue
                    replica = max(replica, served)
            if not ok:
                total_latency += latency
                failures.append((replica, kind))
                replica += 1
                continue
            total_latency += latency
            lag = seq - self._applied[index][served]
            if lag <= 0:
                return self._finish(index, served, value, total_latency,
                                    stale=False, lag=0, seq=seq)
            if stale_best is None or lag < stale_best[0]:
                stale_best = (lag, value, served)
            replica += 1
        healthy = sum(1 for b in self._breakers[index] if b.state != "open")
        if healthy < self.read_quorum:
            with self._stats_lock:
                self.quorum_losses += 1
            if self.obs.enabled:
                self.obs.count("kg.replica.quorum_losses")
        if stale_best is not None:
            lag, value, served = stale_best
            if self.consistency == "strict":
                with self._stats_lock:
                    self.stale_rejections += 1
                raise StaleReadError(index, served, lag,
                                     applied_seq=self._applied[index][served],
                                     committed_seq=seq)
            return self._finish(index, served, value, total_latency,
                                stale=True, lag=lag, seq=seq)
        with self._stats_lock:
            self.unavailable += 1
        if self.obs.enabled:
            self.obs.count("kg.replica.unavailable")
        raise ShardUnavailableError(index, failures)

    def _finish(self, shard: int, replica: int, value: Any, latency: float,
                *, stale: bool, lag: int, seq: int):
        with self._stats_lock:
            self.reads += 1
            if replica != 0:
                self.failovers += 1
            if stale:
                self.stale_reads += 1
            self.read_latencies.append(latency)
            self.last_read = {
                "shard": shard, "replica": replica, "stale": stale,
                "lag": lag, "applied_seq": seq - lag, "committed_seq": seq,
                "latency": latency,
            }
        if self.obs.enabled:
            self.obs.observe("kg.replica.read_latency", latency)
            if stale:
                self.obs.count("kg.replica.stale_reads")
            if replica != 0:
                self.obs.count("kg.replica.failovers")
        return value

    # ------------------------------------------------------------------
    # Chaos / CLI helpers
    # ------------------------------------------------------------------
    def partition_one_replica_per_shard(self) -> List[Tuple[int, int]]:
        """Force exactly one replica of every shard off the network.

        The victim rotates (``shard % replicas``) so both primary loss
        (read failover) and follower loss (ship lag) are exercised in one
        schedule. Returns the victims; ``restore_partitions`` lifts them.
        """
        victims = []
        for shard in range(len(self._shards)):
            replica = shard % self.replica_count
            self.transport.force_partition(shard, replica)
            victims.append((shard, replica))
        return victims

    def restore_partitions(self) -> None:
        """Lift all forced partitions from the transport."""
        self.transport.restore_all()

    def reset_read_stats(self) -> None:
        """Clear latency samples and read counters (between bench phases)."""
        with self._stats_lock:
            self.reads = 0
            self.hedges_fired = 0
            self.hedge_wins = 0
            self.failovers = 0
            self.stale_reads = 0
            self.stale_rejections = 0
            self.quorum_losses = 0
            self.unavailable = 0
            self.read_latencies = []
            self.last_read = {}

    def read_latency_quantile(self, q: float) -> float:
        """The q-th percentile (0-100) of simulated read latencies."""
        with self._stats_lock:
            return percentile(self.read_latencies, q)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def replication_stats(self) -> Dict[str, Any]:
        """Replication ledger: topology, read outcomes, ship/heal counts."""
        states = self.breaker_states()
        lags = [self.replica_lag(i, r)
                for i in range(len(self._shards))
                for r in range(self.replica_count)]
        with self._stats_lock:
            return {
                "shards": len(self._shards),
                "replicas": self.replica_count,
                "consistency": self.consistency,
                "read_quorum": self.read_quorum,
                "reads": self.reads,
                "hedges_fired": self.hedges_fired,
                "hedge_wins": self.hedge_wins,
                "failovers": self.failovers,
                "stale_reads": self.stale_reads,
                "stale_rejections": self.stale_rejections,
                "quorum_losses": self.quorum_losses,
                "unavailable": self.unavailable,
                "ships": self.ships,
                "ship_failures": self.ship_failures,
                "heals": self.heals,
                "open_breakers": sum(row.count("open") for row in states),
                "max_lag": max(lags) if lags else 0,
                "transport": self.transport.stats(),
            }
