"""Structural KG embedding models: TransE, DistMult, ComplEx, RotatE.

Faithful (small-scale) implementations: margin/softplus losses, uniform
negative sampling, seeded numpy SGD. These are the triple-based methods the
survey contrasts with text-based completion — they only see the training
triples, so entities that are sparsely connected in training rank poorly,
which is exactly the weakness the text-aware methods exploit.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

import numpy as np

from repro.kg.triples import IRI, Triple


class KGEmbeddingModel:
    """Base class: vocabulary handling, SGD loop, negative sampling.

    Subclasses implement :meth:`_score_ids` (higher = more plausible) and
    :meth:`_gradient_step`.
    """

    def __init__(self, dim: int = 32, learning_rate: float = 0.05,
                 margin: float = 1.0, seed: int = 0):
        self.dim = dim
        self.learning_rate = learning_rate
        self.margin = margin
        self.seed = seed
        self.entity_index: Dict[IRI, int] = {}
        self.relation_index: Dict[IRI, int] = {}
        self.entity_vectors: Optional[np.ndarray] = None
        self.relation_vectors: Optional[np.ndarray] = None
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Vocabulary
    # ------------------------------------------------------------------
    def _build_vocab(self, triples: Sequence[Triple],
                     extra_entities: Iterable[IRI] = ()) -> None:
        for triple in triples:
            self.entity_index.setdefault(triple.subject, len(self.entity_index))
            if isinstance(triple.object, IRI):
                self.entity_index.setdefault(triple.object, len(self.entity_index))
            self.relation_index.setdefault(triple.predicate, len(self.relation_index))
        for entity in extra_entities:
            self.entity_index.setdefault(entity, len(self.entity_index))

    def _init_vectors(self) -> None:
        bound = 6.0 / math.sqrt(self.dim)
        self.entity_vectors = self._rng.uniform(
            -bound, bound, (len(self.entity_index), self._entity_width()))
        self.relation_vectors = self._rng.uniform(
            -bound, bound, (len(self.relation_index), self._relation_width()))

    def _entity_width(self) -> int:
        return self.dim

    def _relation_width(self) -> int:
        return self.dim

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(self, triples: Sequence[Triple], epochs: int = 100,
            extra_entities: Iterable[IRI] = (),
            negatives_per_positive: int = 4) -> "KGEmbeddingModel":
        """Train on entity-object triples with uniform negative sampling.

        ``negatives_per_positive`` corruptions are drawn per positive per
        epoch (half tail-corrupted, half head-corrupted on average).
        """
        triples = [t for t in triples if isinstance(t.object, IRI)]
        if not triples:
            raise ValueError("no trainable (IRI-object) triples")
        self._build_vocab(triples, extra_entities)
        self._init_vectors()
        ids = np.array([
            (self.entity_index[t.subject], self.relation_index[t.predicate],
             self.entity_index[t.object])
            for t in triples
        ], dtype=np.int64)
        n_entities = len(self.entity_index)
        k = max(1, negatives_per_positive)
        for _ in range(epochs):
            order = self._rng.permutation(len(ids))
            corrupt_tail = self._rng.random((len(ids), k)) < 0.5
            corrupt_ids = self._rng.integers(0, n_entities, (len(ids), k))
            for position in order:
                h, r, t = ids[position]
                for j in range(k):
                    if corrupt_tail[position, j]:
                        h_neg, t_neg = h, int(corrupt_ids[position, j])
                    else:
                        h_neg, t_neg = int(corrupt_ids[position, j]), t
                    if (h_neg, r, t_neg) == (h, r, t):
                        continue
                    self._gradient_step(h, r, t, h_neg, t_neg)
            self._post_epoch()
        return self

    def _post_epoch(self) -> None:
        """Hook: e.g. entity-vector normalization (TransE)."""

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def score(self, triple: Triple) -> float:
        """Plausibility of a triple (higher = better). Unknown vocabulary
        scores -inf so it ranks last."""
        if self.entity_vectors is None:
            raise RuntimeError("model is not trained; call fit() first")
        h = self.entity_index.get(triple.subject)
        r = self.relation_index.get(triple.predicate)
        t = self.entity_index.get(triple.object) if isinstance(triple.object, IRI) else None
        if h is None or r is None or t is None:
            return float("-inf")
        return self._score_ids(h, r, t)

    def score_tails(self, head: IRI, relation: IRI,
                    candidates: Sequence[IRI]) -> List[float]:
        """Scores of (head, relation, c) for every candidate tail."""
        return [self.score(Triple(head, relation, c)) for c in candidates]

    def _score_ids(self, h: int, r: int, t: int) -> float:
        raise NotImplementedError

    def _gradient_step(self, h: int, r: int, t: int,
                       h_neg: int, t_neg: int) -> None:
        raise NotImplementedError


class TransE(KGEmbeddingModel):
    """Bordes et al. 2013: ``h + r ≈ t`` under the L2 norm."""

    def _score_ids(self, h: int, r: int, t: int) -> float:
        diff = self.entity_vectors[h] + self.relation_vectors[r] - self.entity_vectors[t]
        return -float(np.linalg.norm(diff))

    def _gradient_step(self, h, r, t, h_neg, t_neg):
        pos = -self._score_ids(h, r, t)
        neg = -self._score_ids(h_neg, r, t_neg)
        if pos + self.margin <= neg:
            return  # margin satisfied
        lr = self.learning_rate

        def l2_grad(hh, tt):
            diff = self.entity_vectors[hh] + self.relation_vectors[r] - self.entity_vectors[tt]
            norm = np.linalg.norm(diff)
            return diff / norm if norm > 1e-9 else diff

        grad_pos = l2_grad(h, t)
        grad_neg = l2_grad(h_neg, t_neg)
        self.entity_vectors[h] -= lr * grad_pos
        self.entity_vectors[t] += lr * grad_pos
        self.relation_vectors[r] -= lr * (grad_pos - grad_neg)
        self.entity_vectors[h_neg] += lr * grad_neg
        self.entity_vectors[t_neg] -= lr * grad_neg

    def _post_epoch(self) -> None:
        norms = np.linalg.norm(self.entity_vectors, axis=1, keepdims=True)
        norms[norms < 1.0] = 1.0
        self.entity_vectors /= norms


class DistMult(KGEmbeddingModel):
    """Bilinear diagonal model: score = <h, r, t>.

    Entity vectors are norm-capped after each epoch (the standard DistMult
    constraint) and the default learning rate is higher than TransE's —
    the logistic loss needs it at this scale.
    """

    def __init__(self, dim: int = 32, learning_rate: float = 0.1,
                 margin: float = 1.0, seed: int = 0):
        super().__init__(dim=dim, learning_rate=learning_rate,
                         margin=margin, seed=seed)

    def _post_epoch(self) -> None:
        norms = np.linalg.norm(self.entity_vectors, axis=1, keepdims=True)
        norms[norms < 1.0] = 1.0
        self.entity_vectors /= norms

    def _score_ids(self, h, r, t):
        return float(np.sum(self.entity_vectors[h] * self.relation_vectors[r]
                            * self.entity_vectors[t]))

    def _gradient_step(self, h, r, t, h_neg, t_neg):
        lr = self.learning_rate

        def step(hh, rr, tt, label):
            score = self._score_ids(hh, rr, tt)
            # logistic loss gradient: σ(score) - label
            sigmoid = 1.0 / (1.0 + math.exp(-max(-30.0, min(30.0, score))))
            coeff = (sigmoid - label) * lr
            e_h = self.entity_vectors[hh].copy()
            e_t = self.entity_vectors[tt].copy()
            rel = self.relation_vectors[rr].copy()
            self.entity_vectors[hh] -= coeff * rel * e_t
            self.relation_vectors[rr] -= coeff * e_h * e_t
            self.entity_vectors[tt] -= coeff * e_h * rel

        step(h, r, t, 1.0)
        step(h_neg, r, t_neg, 0.0)


class ComplEx(KGEmbeddingModel):
    """Trouillon et al. 2016: complex-valued bilinear model.

    Vectors are stored as [real | imaginary] halves of width ``2 * dim``.
    Entity vectors are norm-capped per epoch, like DistMult.
    """

    def __init__(self, dim: int = 32, learning_rate: float = 0.1,
                 margin: float = 1.0, seed: int = 0):
        super().__init__(dim=dim, learning_rate=learning_rate,
                         margin=margin, seed=seed)

    def _post_epoch(self) -> None:
        norms = np.linalg.norm(self.entity_vectors, axis=1, keepdims=True)
        norms[norms < 1.0] = 1.0
        self.entity_vectors /= norms

    def _entity_width(self) -> int:
        return 2 * self.dim

    def _relation_width(self) -> int:
        return 2 * self.dim

    def _split(self, vector: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        return vector[: self.dim], vector[self.dim:]

    def _score_ids(self, h, r, t):
        h_re, h_im = self._split(self.entity_vectors[h])
        r_re, r_im = self._split(self.relation_vectors[r])
        t_re, t_im = self._split(self.entity_vectors[t])
        return float(
            np.sum(r_re * h_re * t_re) + np.sum(r_re * h_im * t_im)
            + np.sum(r_im * h_re * t_im) - np.sum(r_im * h_im * t_re)
        )

    def _gradient_step(self, h, r, t, h_neg, t_neg):
        lr = self.learning_rate

        def step(hh, rr, tt, label):
            score = self._score_ids(hh, rr, tt)
            sigmoid = 1.0 / (1.0 + math.exp(-max(-30.0, min(30.0, score))))
            coeff = (sigmoid - label) * lr
            h_re, h_im = self._split(self.entity_vectors[hh].copy())
            r_re, r_im = self._split(self.relation_vectors[rr].copy())
            t_re, t_im = self._split(self.entity_vectors[tt].copy())
            grad_h_re = r_re * t_re + r_im * t_im
            grad_h_im = r_re * t_im - r_im * t_re
            grad_r_re = h_re * t_re + h_im * t_im
            grad_r_im = h_re * t_im - h_im * t_re
            grad_t_re = r_re * h_re - r_im * h_im
            grad_t_im = r_re * h_im + r_im * h_re
            self.entity_vectors[hh] -= coeff * np.concatenate([grad_h_re, grad_h_im])
            self.relation_vectors[rr] -= coeff * np.concatenate([grad_r_re, grad_r_im])
            self.entity_vectors[tt] -= coeff * np.concatenate([grad_t_re, grad_t_im])

        step(h, r, t, 1.0)
        step(h_neg, r, t_neg, 0.0)


class RotatE(KGEmbeddingModel):
    """Relations as rotations in the complex plane: ``t ≈ h ∘ e^{iθ_r}``.

    Entities are complex ([real | imaginary]); relations store phase angles.
    Trained with a margin loss on the rotation distance; entity vectors are
    norm-capped per epoch and the default learning rate matches DistMult's.
    """

    def __init__(self, dim: int = 32, learning_rate: float = 0.1,
                 margin: float = 1.0, seed: int = 0):
        super().__init__(dim=dim, learning_rate=learning_rate,
                         margin=margin, seed=seed)

    def _entity_width(self) -> int:
        return 2 * self.dim

    def _relation_width(self) -> int:
        return self.dim  # phases

    def _distance(self, h: int, r: int, t: int) -> float:
        h_re = self.entity_vectors[h][: self.dim]
        h_im = self.entity_vectors[h][self.dim:]
        t_re = self.entity_vectors[t][: self.dim]
        t_im = self.entity_vectors[t][self.dim:]
        phase = self.relation_vectors[r]
        rot_re = h_re * np.cos(phase) - h_im * np.sin(phase)
        rot_im = h_re * np.sin(phase) + h_im * np.cos(phase)
        return float(np.linalg.norm(rot_re - t_re) + np.linalg.norm(rot_im - t_im))

    def _score_ids(self, h, r, t):
        return -self._distance(h, r, t)

    def _gradient_step(self, h, r, t, h_neg, t_neg):
        if self._distance(h, r, t) + self.margin <= self._distance(h_neg, r, t_neg):
            return
        lr = self.learning_rate
        h_re = self.entity_vectors[h][: self.dim]
        h_im = self.entity_vectors[h][self.dim:]
        t_re = self.entity_vectors[t][: self.dim]
        t_im = self.entity_vectors[t][self.dim:]
        phase = self.relation_vectors[r]
        cos, sin = np.cos(phase), np.sin(phase)
        rot_re = h_re * cos - h_im * sin
        rot_im = h_re * sin + h_im * cos
        back_re = rot_re - t_re
        back_im = rot_im - t_im
        # Pull the rotated head and the tail together...
        self.entity_vectors[t][: self.dim] += lr * back_re
        self.entity_vectors[t][self.dim:] += lr * back_im
        self.entity_vectors[h][: self.dim] -= lr * (back_re * cos + back_im * sin)
        self.entity_vectors[h][self.dim:] -= lr * (-back_re * sin + back_im * cos)
        # ...and rotate the relation phase toward alignment:
        # ∂(½‖rot−t‖²)/∂θ = (rot_re−t_re)·(−rot_im) + (rot_im−t_im)·rot_re.
        self.relation_vectors[r] -= lr * (-back_re * rot_im + back_im * rot_re)
        # Push the negative pair apart (half strength).
        n_re = self.entity_vectors[h_neg][: self.dim]
        n_im = self.entity_vectors[h_neg][self.dim:]
        rot_n_re = n_re * cos - n_im * sin
        rot_n_im = n_re * sin + n_im * cos
        neg_re = rot_n_re - self.entity_vectors[t_neg][: self.dim]
        neg_im = rot_n_im - self.entity_vectors[t_neg][self.dim:]
        self.entity_vectors[t_neg][: self.dim] -= lr * 0.5 * neg_re
        self.entity_vectors[t_neg][self.dim:] -= lr * 0.5 * neg_im
        self.relation_vectors[r] += lr * 0.5 * (
            -neg_re * rot_n_im + neg_im * rot_n_re)

    def _post_epoch(self) -> None:
        norms = np.linalg.norm(self.entity_vectors, axis=1, keepdims=True)
        norms[norms < 1.0] = 1.0
        self.entity_vectors /= norms


#: Registry used by the completion benchmarks.
EMBEDDING_MODELS: Dict[str, Type[KGEmbeddingModel]] = {
    "TransE": TransE,
    "DistMult": DistMult,
    "ComplEx": ComplEx,
    "RotatE": RotatE,
}
