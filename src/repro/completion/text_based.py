"""Text-based KG completion (survey §2.4).

These methods ground completion in *textual* knowledge rather than graph
structure, which is why they handle entities that are sparse in the training
graph:

* :class:`KGBertScorer` — KG-BERT: a PLM cross-encoder fine-tuned on
  (h, r, t) sequences. Simulated as: fine-tuned memory of training triples
  plus the backbone's parametric textual knowledge of the world, with a
  type-compatibility prior for everything else.
* :class:`SimKGCScorer` — SimKGC: a contrastive bi-encoder. Simulated as a
  text-space translation model: entity vectors come from their labels (so
  *any* named entity has one) and each relation learns a closed-form offset
  vector from the training pairs; candidates are ranked by cosine. The
  in-batch / pre-batch / self negatives of the paper collapse to the
  closed-form least-squares fit in this deterministic setting.
* :class:`StARScorer` — StAR: a self-adaptive ensemble of a Siamese text
  encoder and a structural embedding model.
* :class:`GenKGCCompleter` — GenKGC/KG-S2S: generate the missing entity
  directly with the seq2seq backbone (QA over parametric memory), with
  relation-guided demonstrations.
* :class:`KICGPTReranker` — KICGPT: training-free; take a structural
  ranker's candidate list and let the LLM rerank its top-k with in-context
  knowledge.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.kg.graph import KnowledgeGraph, _humanize_relation
from repro.kg.store import TripleStore
from repro.kg.triples import IRI, RDF, Triple
from repro.llm import prompts as P
from repro.llm.embedding import TextEncoder
from repro.llm.model import SimulatedLLM, _stable_unit


class KGBertScorer:
    """KG-BERT-style cross-encoder triple scoring."""

    def __init__(self, llm: SimulatedLLM, kg: KnowledgeGraph,
                 multi_task: bool = False):
        """``multi_task=True`` adds the relation-prediction auxiliary signal
        (Kim et al.'s multi-task variant): a bonus for candidates whose
        types match the relation's observed argument types."""
        self.llm = llm
        self.kg = kg
        self.multi_task = multi_task
        self._train = TripleStore()
        self._range_types: Dict[IRI, Set[IRI]] = {}

    def fit(self, triples: Sequence[Triple]) -> None:
        """Fine-tune on the training triples."""
        self._train = TripleStore(triples)
        self.llm.fine_tune("triple scoring", len(triples))
        for triple in triples:
            if isinstance(triple.object, IRI):
                types = {t.object for t in
                         self.kg.store.match(triple.object, RDF.type, None)
                         if isinstance(t.object, IRI)}
                self._range_types.setdefault(triple.predicate, set()).update(types)

    def score(self, triple: Triple) -> float:
        """Plausibility in [0, 1]-ish; deterministic."""
        if triple in self._train:
            return 1.0
        score = 0.0
        if self.llm.knows(triple):
            # The backbone saw this fact in pre-training text.
            score += 0.85
        if self.multi_task and isinstance(triple.object, IRI):
            candidate_types = {t.object for t in
                               self.kg.store.match(triple.object, RDF.type, None)
                               if isinstance(t.object, IRI)}
            expected = self._range_types.get(triple.predicate, set())
            if expected and candidate_types & expected:
                score += 0.1
        # Lexical-similarity tiebreak (the cross-encoder's soft judgment).
        score += 0.04 * _stable_unit("kgbert", str(self.llm.config.seed), triple.n3())
        return score

    def score_tails(self, head: IRI, relation: IRI,
                    candidates: Sequence[IRI]) -> List[float]:
        """Scores for every candidate tail."""
        return [self.score(Triple(head, relation, c)) for c in candidates]


class SimKGCScorer:
    """SimKGC-style bi-encoder: label-space translation with cosine ranking."""

    def __init__(self, kg: KnowledgeGraph, encoder: Optional[TextEncoder] = None,
                 context_neighbours: int = 5):
        self.kg = kg
        self.encoder = encoder or TextEncoder(dim=96)
        self.context_neighbours = context_neighbours
        self._relation_offsets: Dict[IRI, np.ndarray] = {}
        self._entity_cache: Dict[IRI, np.ndarray] = {}

    def _entity_text(self, entity: IRI) -> str:
        """The textual description the bi-encoder embeds: label + types +
        a few neighbour labels (SimKGC's entity descriptions)."""
        parts = [self.kg.label(entity)]
        for cls in self.kg.types(entity):
            parts.append(self.kg.label(cls))
        description = self.kg.description(entity)
        if description:
            parts.append(description)
        count = 0
        for _, neighbour, _ in self.kg.neighbours(entity):
            if isinstance(neighbour, IRI):
                parts.append(self.kg.label(neighbour))
                count += 1
                if count >= self.context_neighbours:
                    break
        return " ".join(parts)

    def _entity_vector(self, entity: IRI) -> np.ndarray:
        vector = self._entity_cache.get(entity)
        if vector is None:
            vector = self.encoder.encode(self._entity_text(entity))
            self._entity_cache[entity] = vector
        return vector

    def fit(self, triples: Sequence[Triple]) -> None:
        """Closed-form contrastive fit: each relation's offset is the mean
        (tail − head) direction over training pairs."""
        sums: Dict[IRI, np.ndarray] = {}
        counts: Dict[IRI, int] = {}
        for triple in triples:
            if not isinstance(triple.object, IRI):
                continue
            delta = self._entity_vector(triple.object) - self._entity_vector(triple.subject)
            if triple.predicate in sums:
                sums[triple.predicate] += delta
                counts[triple.predicate] += 1
            else:
                sums[triple.predicate] = delta.copy()
                counts[triple.predicate] = 1
        self._relation_offsets = {
            relation: total / counts[relation] for relation, total in sums.items()
        }

    def score(self, triple: Triple) -> float:
        """Cosine of (head vector + relation offset) against the tail."""
        if not isinstance(triple.object, IRI):
            return float("-inf")
        offset = self._relation_offsets.get(triple.predicate)
        if offset is None:
            return float("-inf")
        query = self._entity_vector(triple.subject) + offset
        candidate = self._entity_vector(triple.object)
        denominator = (np.linalg.norm(query) or 1.0) * (np.linalg.norm(candidate) or 1.0)
        return float(query @ candidate / denominator)

    def score_tails(self, head: IRI, relation: IRI,
                    candidates: Sequence[IRI]) -> List[float]:
        """Vectorized candidate scoring."""
        offset = self._relation_offsets.get(relation)
        if offset is None:
            return [float("-inf")] * len(candidates)
        query = self._entity_vector(head) + offset
        qn = np.linalg.norm(query) or 1.0
        scores = []
        for candidate in candidates:
            vector = self._entity_vector(candidate)
            cn = np.linalg.norm(vector) or 1.0
            scores.append(float(query @ vector / (qn * cn)))
        return scores


class StARScorer:
    """StAR: self-adaptive ensemble of textual and structural scores."""

    def __init__(self, text_scorer: SimKGCScorer, structure_model,
                 alpha: float = 0.5):
        self.text_scorer = text_scorer
        self.structure_model = structure_model
        self.alpha = alpha

    def calibrate(self, validation: Sequence[Triple],
                  candidates: Sequence[IRI]) -> None:
        """Pick alpha on validation data (the self-adaptive part)."""
        best_alpha, best_mrr = self.alpha, -1.0
        for alpha in (0.0, 0.25, 0.5, 0.75, 1.0):
            self.alpha = alpha
            total = 0.0
            for triple in validation:
                ranked = self.rank_tails(triple.subject, triple.predicate, candidates)
                if triple.object in ranked:
                    total += 1.0 / (ranked.index(triple.object) + 1)  # type: ignore[arg-type]
            if total > best_mrr:
                best_mrr, best_alpha = total, alpha
        self.alpha = best_alpha

    def score_tails(self, head: IRI, relation: IRI,
                    candidates: Sequence[IRI]) -> List[float]:
        """Alpha-blend of normalized textual and structural scores."""
        text = _normalize_scores(self.text_scorer.score_tails(head, relation, candidates))
        structure = _normalize_scores(
            self.structure_model.score_tails(head, relation, candidates))
        return [self.alpha * t + (1 - self.alpha) * s
                for t, s in zip(text, structure)]

    def rank_tails(self, head: IRI, relation: IRI,
                   candidates: Sequence[IRI]) -> List[IRI]:
        """Candidates ordered by the blended score, best first."""
        scores = self.score_tails(head, relation, candidates)
        order = sorted(range(len(candidates)), key=lambda i: (-scores[i],
                                                              candidates[i].value))
        return [candidates[i] for i in order]


class GenKGCCompleter:
    """GenKGC: generate the missing tail entity as text.

    Relation-guided demonstrations (train triples of the same relation) go
    into the prompt; the backbone answers from its parametric knowledge.
    """

    def __init__(self, llm: SimulatedLLM, kg: KnowledgeGraph):
        self.llm = llm
        self.kg = kg
        self._by_relation: Dict[IRI, List[Triple]] = {}

    def fit(self, triples: Sequence[Triple]) -> None:
        """Index relation-guided demonstrations and fine-tune the backbone."""
        for triple in triples:
            self._by_relation.setdefault(triple.predicate, []).append(triple)
        self.llm.fine_tune("question answering", len(triples))

    def complete_tail(self, head: IRI, relation: IRI) -> Optional[IRI]:
        """Generate the tail of (head, relation, ?)."""
        demonstrations = [
            (f"What {_humanize_relation(self.kg.label(t.predicate))} {self.kg.label(t.subject)}?",
             self.kg.label(t.object))
            for t in self._by_relation.get(relation, [])[:3]
        ]
        question = (f"What {_humanize_relation(self.kg.label(relation))} "
                    f"{self.kg.label(head)}?")
        response = self.llm.complete(P.qa_prompt(question, examples=demonstrations))
        answer = P.parse_qa_response(response.text)
        if answer.lower() == "unknown":
            return None
        matches = self.kg.find_by_label(answer.split(",")[0].strip())
        return matches[0] if matches else None


class KICGPTReranker:
    """KICGPT: training-free LLM reranking of a structural ranker's top-k."""

    def __init__(self, llm: SimulatedLLM, kg: KnowledgeGraph,
                 base_model, top_k: int = 10):
        self.llm = llm
        self.kg = kg
        self.base_model = base_model
        self.top_k = top_k

    def rank_tails(self, head: IRI, relation: IRI,
                   candidates: Sequence[IRI]) -> List[IRI]:
        """Base ranking, with the top-k reranked by LLM knowledge."""
        base_scores = self.base_model.score_tails(head, relation, candidates)
        order = sorted(range(len(candidates)),
                       key=lambda i: (-base_scores[i], candidates[i].value))
        ranked = [candidates[i] for i in order]
        window = ranked[: self.top_k]
        known: List[IRI] = []
        unknown: List[IRI] = []
        for candidate in window:
            if self.llm.knows(Triple(head, relation, candidate)):
                known.append(candidate)
            else:
                unknown.append(candidate)
        return known + unknown + ranked[self.top_k:]


def _normalize_scores(scores: Sequence[float]) -> List[float]:
    finite = [s for s in scores if s != float("-inf")]
    if not finite:
        return [0.0] * len(scores)
    low, high = min(finite), max(finite)
    span = (high - low) or 1.0
    return [0.0 if s == float("-inf") else (s - low) / span for s in scores]
