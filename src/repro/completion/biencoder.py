"""A trained contrastive bi-encoder with SimKGC's three negative types.

:class:`SimKGCScorer` (in :mod:`text_based`) uses a closed-form relation
offset; this module implements the *training* story of the SimKGC paper:
a learned linear projection over the text space optimized with an InfoNCE
loss whose negatives come from the paper's three sources —

* **in-batch** negatives: other tails in the same minibatch,
* **pre-batch** negatives: tails cached from the previous minibatches,
* **self** negatives: the head entity itself (stops the encoder from
  degenerating into "answer = the query's own tokens").

The E-NEGATIVES ablation benchmark sweeps which sources are enabled and
shows the paper's finding: more (and more diverse) negatives → better
ranking.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import IRI, Triple
from repro.llm.embedding import TextEncoder


class TrainedBiEncoder:
    """InfoNCE-trained bi-encoder for tail ranking.

    The query side encodes ``head text ⊕ relation phrase`` through a learned
    square projection ``W``; the candidate side encodes entity text
    unprojected. Scores are cosine similarities; training pulls the gold
    tail above the enabled negative sets.
    """

    def __init__(self, kg: KnowledgeGraph, encoder: Optional[TextEncoder] = None,
                 in_batch: bool = True, pre_batch: bool = False,
                 self_negatives: bool = False, batch_size: int = 16,
                 pre_batch_size: int = 32, learning_rate: float = 0.2,
                 temperature: float = 0.1, seed: int = 0,
                 context_neighbours: int = 5):
        self.kg = kg
        self.encoder = encoder or TextEncoder(dim=96)
        self.in_batch = in_batch
        self.pre_batch = pre_batch
        self.self_negatives = self_negatives
        self.batch_size = batch_size
        self.pre_batch_size = pre_batch_size
        self.learning_rate = learning_rate
        self.temperature = temperature
        self.seed = seed
        self.context_neighbours = context_neighbours
        dim = self.encoder.dim
        self.projection = np.eye(dim)
        self._entity_cache: Dict[IRI, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Text sides
    # ------------------------------------------------------------------
    def _entity_vector(self, entity: IRI) -> np.ndarray:
        vector = self._entity_cache.get(entity)
        if vector is None:
            parts = [self.kg.label(entity)]
            for cls in self.kg.types(entity):
                parts.append(self.kg.label(cls))
            count = 0
            for _, neighbour, _ in self.kg.neighbours(entity):
                if isinstance(neighbour, IRI):
                    parts.append(self.kg.label(neighbour))
                    count += 1
                    if count >= self.context_neighbours:
                        break
            vector = self.encoder.encode(" ".join(parts))
            self._entity_cache[entity] = vector
        return vector

    def _query_vector(self, head: IRI, relation: IRI) -> np.ndarray:
        text = f"{self.kg.label(head)} {self.kg.label(relation)}"
        return self.encoder.encode(text)

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(self, triples: Sequence[Triple], epochs: int = 20) -> "TrainedBiEncoder":
        """Optimize the projection with InfoNCE over the enabled negatives."""
        data = [(t.subject, t.predicate, t.object) for t in triples
                if isinstance(t.object, IRI)]
        if not data:
            raise ValueError("no trainable (IRI-object) triples")
        rng = np.random.default_rng(self.seed)
        dim = self.encoder.dim
        pre_batch_tails: List[np.ndarray] = []
        for _ in range(epochs):
            order = rng.permutation(len(data))
            for start in range(0, len(data), self.batch_size):
                batch = [data[i] for i in order[start:start + self.batch_size]]
                if len(batch) < 2:
                    continue
                queries = np.stack([self._query_vector(h, r)
                                    for h, r, _ in batch])
                tails = np.stack([self._entity_vector(t) for _, _, t in batch])
                negatives = []
                if self.pre_batch and pre_batch_tails:
                    negatives.append(np.stack(pre_batch_tails))
                if self.self_negatives:
                    negatives.append(np.stack([self._entity_vector(h)
                                               for h, _, _ in batch]))
                self._step(queries, tails, negatives)
                if self.pre_batch:
                    for row in tails:
                        pre_batch_tails.append(row)
                    pre_batch_tails = pre_batch_tails[-self.pre_batch_size:]
        return self

    def _step(self, queries: np.ndarray, tails: np.ndarray,
              extra_negatives: List[np.ndarray]) -> None:
        projected = queries @ self.projection                  # (B, d)
        candidates = tails                                     # (B, d)
        if not self.in_batch:
            # Without in-batch negatives each row only sees its gold tail
            # plus the extra sets; emulate by masking cross terms later.
            pass
        all_candidates = [candidates] + extra_negatives
        candidate_matrix = np.concatenate(all_candidates, axis=0)  # (C, d)
        # Cosine similarity logits.
        q_norm = np.linalg.norm(projected, axis=1, keepdims=True)
        q_norm[q_norm == 0] = 1.0
        c_norm = np.linalg.norm(candidate_matrix, axis=1, keepdims=True)
        c_norm[c_norm == 0] = 1.0
        q_hat = projected / q_norm
        c_hat = candidate_matrix / c_norm
        logits = (q_hat @ c_hat.T) / self.temperature          # (B, C)
        batch = queries.shape[0]
        if not self.in_batch:
            # Mask other in-batch tails (keep the diagonal gold + extras).
            mask = np.full(logits.shape, -1e9)
            mask[np.arange(batch), np.arange(batch)] = 0.0
            if logits.shape[1] > batch:
                mask[:, batch:] = 0.0
            logits = logits + mask
        logits -= logits.max(axis=1, keepdims=True)
        exp = np.exp(logits)
        probabilities = exp / exp.sum(axis=1, keepdims=True)   # (B, C)
        gold = np.zeros_like(probabilities)
        gold[np.arange(batch), np.arange(batch)] = 1.0
        # Gradient of InfoNCE w.r.t. q_hat, chained through the projection
        # (treating the normalization as locally constant — the standard
        # simplification for a shallow model).
        grad_q_hat = (probabilities - gold) @ c_hat / self.temperature  # (B, d)
        grad_projection = queries.T @ (grad_q_hat / q_norm)
        self.projection -= self.learning_rate * grad_projection / batch

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def score(self, triple: Triple) -> float:
        """Cosine of the projected query against the tail encoding."""
        if not isinstance(triple.object, IRI):
            return float("-inf")
        query = self._query_vector(triple.subject, triple.predicate) @ self.projection
        candidate = self._entity_vector(triple.object)
        qn = np.linalg.norm(query) or 1.0
        cn = np.linalg.norm(candidate) or 1.0
        return float(query @ candidate / (qn * cn))

    def score_tails(self, head: IRI, relation: IRI,
                    candidates: Sequence[IRI]) -> List[float]:
        """Vectorized candidate scoring."""
        query = self._query_vector(head, relation) @ self.projection
        qn = np.linalg.norm(query) or 1.0
        out = []
        for candidate in candidates:
            vector = self._entity_vector(candidate)
            cn = np.linalg.norm(vector) or 1.0
            out.append(float(query @ vector / (qn * cn)))
        return out
