"""Completion task harnesses: link prediction (filtered ranking protocol),
triple classification, and entity typing."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.eval.metrics import hits_at_k, mean_reciprocal_rank
from repro.kg.datasets import Dataset
from repro.kg.graph import KnowledgeGraph
from repro.kg.store import TripleStore
from repro.kg.triples import IRI, OWL, RDF, RDFS, Triple


@dataclass
class CompletionSplit:
    """A train/valid/test split of a KG's instance triples."""

    kg: KnowledgeGraph
    train: List[Triple]
    valid: List[Triple]
    test: List[Triple]
    entities: List[IRI]

    @property
    def all_true(self) -> TripleStore:
        """Every true triple — used by the filtered ranking protocol."""
        return TripleStore(self.train + self.valid + self.test)


def make_split(dataset: Dataset, seed: int = 0,
               fractions: Tuple[float, float] = (0.8, 0.1)) -> CompletionSplit:
    """Deterministic split of the dataset's entity-object instance triples."""
    rng = random.Random(seed)
    triples = []
    for triple in dataset.kg.store:
        if not isinstance(triple.object, IRI):
            continue
        if triple.predicate in (RDFS.label, RDFS.comment, RDF.type):
            continue
        if triple.predicate.value.startswith(RDFS.prefix) or \
                triple.predicate.value.startswith(OWL.prefix):
            continue
        if dataset.kg.store.match(triple.subject, RDF.type, OWL.Class):
            continue
        triples.append(triple)
    triples.sort(key=lambda t: t.n3())
    rng.shuffle(triples)
    n_train = int(len(triples) * fractions[0])
    n_valid = int(len(triples) * fractions[1])
    train = triples[:n_train]
    valid = triples[n_train:n_train + n_valid]
    test = triples[n_train + n_valid:]
    entities = sorted({t.subject for t in triples} |
                      {t.object for t in triples if isinstance(t.object, IRI)},
                      key=lambda e: e.value)
    return CompletionSplit(kg=dataset.kg, train=train, valid=valid, test=test,
                           entities=entities)


class LinkPredictionTask:
    """Filtered tail-prediction: rank every entity as candidate tail."""

    def __init__(self, split: CompletionSplit):
        self.split = split
        self._all_true = split.all_true

    def evaluate(self, model, max_queries: Optional[int] = None) -> Dict[str, float]:
        """MRR and Hits@{1,3,10} of ``model`` on the test triples.

        ``model`` provides either ``rank_tails(h, r, candidates)`` or
        ``score_tails(h, r, candidates)``. Other true tails are filtered
        out of the candidate list (the standard filtered protocol).
        """
        ranks: List[int] = []
        test = self.split.test[:max_queries] if max_queries else self.split.test
        for triple in test:
            assert isinstance(triple.object, IRI)
            candidates = [
                e for e in self.split.entities
                if e == triple.object or
                Triple(triple.subject, triple.predicate, e) not in self._all_true
            ]
            ranked = self._rank(model, triple.subject, triple.predicate, candidates)
            try:
                ranks.append(ranked.index(triple.object) + 1)
            except ValueError:
                ranks.append(0)  # miss
        return {
            "mrr": mean_reciprocal_rank(ranks),
            "hits@1": hits_at_k(ranks, 1),
            "hits@3": hits_at_k(ranks, 3),
            "hits@10": hits_at_k(ranks, 10),
            "queries": float(len(ranks)),
        }

    @staticmethod
    def _rank(model, head: IRI, relation: IRI,
              candidates: Sequence[IRI]) -> List[IRI]:
        if hasattr(model, "rank_tails"):
            return model.rank_tails(head, relation, candidates)
        scores = model.score_tails(head, relation, candidates)
        order = sorted(range(len(candidates)),
                       key=lambda i: (-scores[i], candidates[i].value))
        return [candidates[i] for i in order]


class TripleClassificationTask:
    """Binary plausibility classification over corrupted triples."""

    def __init__(self, split: CompletionSplit, seed: int = 0):
        self.split = split
        self.rng = random.Random(seed)
        self._all_true = split.all_true

    def build_examples(self, n: Optional[int] = None) -> List[Tuple[Triple, bool]]:
        """Balanced positives (test triples) and tail-corrupted negatives."""
        positives = self.split.test[:n] if n else self.split.test
        examples: List[Tuple[Triple, bool]] = []
        for triple in positives:
            examples.append((triple, True))
            for _ in range(20):
                corrupt = self.split.entities[
                    self.rng.randrange(len(self.split.entities))]
                negative = Triple(triple.subject, triple.predicate, corrupt)
                if negative not in self._all_true:
                    examples.append((negative, False))
                    break
        return examples

    def evaluate(self, scorer, threshold: Optional[float] = None,
                 n: Optional[int] = None) -> Dict[str, float]:
        """Accuracy with a threshold tuned on the examples when not given."""
        examples = self.build_examples(n)
        scored = [(scorer.score(triple), label) for triple, label in examples]
        if threshold is None:
            candidates = sorted({s for s, _ in scored})
            best_acc, best_threshold = 0.0, 0.0
            for candidate in candidates:
                acc = sum(1 for s, label in scored
                          if (s >= candidate) == label) / len(scored)
                if acc > best_acc:
                    best_acc, best_threshold = acc, candidate
            threshold = best_threshold
        accuracy = sum(1 for s, label in scored
                       if (s >= threshold) == label) / len(scored)
        return {"accuracy": accuracy, "threshold": threshold,
                "examples": float(len(scored))}


class RelationPredictionTask:
    """Rank the relation of (h, ?, t) — Table 1's "Relation Prediction" row.

    A model scoring triples ranks every relation in the split's vocabulary
    as the candidate predicate; filtered protocol as for tails.
    """

    def __init__(self, split: CompletionSplit):
        self.split = split
        self._all_true = split.all_true
        self.relations = sorted({t.predicate for t in split.train},
                                key=lambda r: r.value)

    def evaluate(self, scorer, max_queries: Optional[int] = None
                 ) -> Dict[str, float]:
        """MRR and Hits@1 of the relation ranking on the test triples."""
        ranks: List[int] = []
        test = self.split.test[:max_queries] if max_queries else self.split.test
        for triple in test:
            candidates = [
                r for r in self.relations
                if r == triple.predicate or
                Triple(triple.subject, r, triple.object) not in self._all_true
            ]
            scores = [scorer.score(Triple(triple.subject, r, triple.object))
                      for r in candidates]
            order = sorted(range(len(candidates)),
                           key=lambda i: (-scores[i], candidates[i].value))
            ranked = [candidates[i] for i in order]
            try:
                ranks.append(ranked.index(triple.predicate) + 1)
            except ValueError:
                ranks.append(0)
        return {
            "mrr": mean_reciprocal_rank(ranks),
            "hits@1": hits_at_k(ranks, 1),
            "queries": float(len(ranks)),
        }


class EntityTypingTask:
    """Predict an entity's class from its neighbourhood (entity
    classification, the third completion task in §2.4)."""

    def __init__(self, dataset: Dataset, seed: int = 0):
        self.dataset = dataset
        self.seed = seed

    def build_examples(self, n: int = 50) -> List[Tuple[IRI, IRI]]:
        """(entity, gold most-specific class) pairs. Deterministic per call
        (a fresh RNG is derived from the task seed each time)."""
        rng = random.Random(self.seed)
        examples = []
        for triple in self.dataset.kg.store.match(None, RDF.type, None):
            if not isinstance(triple.object, IRI):
                continue
            if triple.object.value.startswith(OWL.prefix):
                continue
            if self.dataset.kg.store.match(triple.subject, RDF.type, OWL.Class):
                continue
            examples.append((triple.subject, triple.object))
        examples.sort(key=lambda pair: (pair[0].value, pair[1].value))
        rng.shuffle(examples)
        # One example per entity (most specific = deepest class).
        seen: Dict[IRI, IRI] = {}
        onto = self.dataset.ontology
        for entity, cls in examples:
            if entity not in seen or onto.depth(cls) > onto.depth(seen[entity]):
                seen[entity] = cls
        return list(seen.items())[:n]

    def evaluate(self, classifier, n: int = 50) -> Dict[str, float]:
        """Accuracy of ``classifier(entity) -> IRI | None``; superclass
        predictions count half (hierarchical credit)."""
        examples = self.build_examples(n)
        if not examples:
            return {"accuracy": 0.0, "examples": 0.0}
        onto = self.dataset.ontology
        score = 0.0
        for entity, gold in examples:
            predicted = classifier(entity)
            if predicted == gold:
                score += 1.0
            elif predicted is not None and onto.is_subclass_of(gold, predicted):
                score += 0.5
        return {"accuracy": score / len(examples), "examples": float(len(examples))}
