"""LLM-embedding transfer into small structural models (survey §2.5).

The survey proposes exactly this experiment: *"We can also use the
representation of entities learned by LLMs in the small-sized models, and
this should significantly reduce the amount of training data needed and
the time of training … An extensive experiment is needed to investigate
the efficiency of applying embeddings of LLMs into small-sized models for
KG analysis tasks."*

:class:`LLMInitializedTransE` warm-starts a TransE model from the LLM text
encoder's entity representations (projected to the model dimension via a
seeded random projection). The E-TRANSFER benchmark then measures the
low-epoch / low-data regime where the warm start pays off.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from repro.completion.embeddings import TransE
from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import IRI, Triple
from repro.llm.embedding import TextEncoder


class LLMInitializedTransE(TransE):
    """TransE whose entity vectors start from LLM text representations.

    The encoder embeds each entity's label + type + neighbourhood text (the
    same description SimKGC uses); a fixed seeded Gaussian projection maps
    the text space onto the model dimension; SGD then proceeds as usual.
    With zero epochs this *is* a pure text model; with few epochs it blends
    textual prior and structural signal — the data-efficiency effect the
    survey predicts.
    """

    def __init__(self, kg: KnowledgeGraph, dim: int = 32,
                 learning_rate: float = 0.05, margin: float = 1.0,
                 seed: int = 0, encoder: Optional[TextEncoder] = None,
                 context_neighbours: int = 5):
        super().__init__(dim=dim, learning_rate=learning_rate,
                         margin=margin, seed=seed)
        self.kg = kg
        self.encoder = encoder or TextEncoder(dim=96)
        self.context_neighbours = context_neighbours

    def _entity_text(self, entity: IRI) -> str:
        parts = [self.kg.label(entity)]
        for cls in self.kg.types(entity):
            parts.append(self.kg.label(cls))
        count = 0
        for _, neighbour, _ in self.kg.neighbours(entity):
            if isinstance(neighbour, IRI):
                parts.append(self.kg.label(neighbour))
                count += 1
                if count >= self.context_neighbours:
                    break
        return " ".join(parts)

    def _init_vectors(self) -> None:
        super()._init_vectors()  # relations keep the uniform init
        projection = np.random.default_rng(self.seed ^ 0x5EED).normal(
            0.0, 1.0 / np.sqrt(self.encoder.dim), (self.encoder.dim, self.dim))
        for entity, index in self.entity_index.items():
            text_vector = self.encoder.encode(self._entity_text(entity))
            projected = text_vector @ projection
            norm = np.linalg.norm(projected)
            if norm > 1e-9:
                self.entity_vectors[index] = projected / norm


def low_data_comparison(kg: KnowledgeGraph, train: Sequence[Triple],
                        entities: Sequence[IRI], task,
                        epochs_grid: Iterable[int] = (0, 2, 10, 40),
                        dim: int = 32, seed: int = 0,
                        max_queries: int = 20) -> Dict[int, Dict[str, float]]:
    """MRR of cold- vs warm-started TransE across an epoch budget grid.

    Returns ``{epochs: {"cold": mrr, "warm": mrr}}``; ``task`` is a
    :class:`~repro.completion.tasks.LinkPredictionTask`.
    """
    out: Dict[int, Dict[str, float]] = {}
    for epochs in epochs_grid:
        cold = TransE(dim=dim, seed=seed)
        warm = LLMInitializedTransE(kg, dim=dim, seed=seed)
        if epochs == 0:
            # fit() needs ≥1 pass to build the vocabulary; run it with a
            # zero learning rate so the initialization is measured as-is.
            cold.learning_rate = 0.0
            warm.learning_rate = 0.0
            cold.fit(train, epochs=1, extra_entities=entities)
            warm.fit(train, epochs=1, extra_entities=entities)
        else:
            cold.fit(train, epochs=epochs, extra_entities=entities)
            warm.fit(train, epochs=epochs, extra_entities=entities)
        out[epochs] = {
            "cold": task.evaluate(cold, max_queries=max_queries)["mrr"],
            "warm": task.evaluate(warm, max_queries=max_queries)["mrr"],
        }
    return out
