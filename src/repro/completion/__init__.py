"""KG Completion and KG Embedding (survey §2.4–2.5).

Structural embedding models (:mod:`embeddings`: TransE, DistMult, ComplEx,
RotatE — numpy SGD with negative sampling), text-based completion methods
(:mod:`text_based`: KG-BERT cross-encoder, SimKGC bi-encoder, StAR ensemble,
GenKGC seq2seq, training-free KICGPT reranking), and the evaluation
harnesses (:mod:`tasks`: link prediction with filtered ranking, triple
classification, entity typing).
"""

from repro.completion.embeddings import (
    TransE, DistMult, ComplEx, RotatE, KGEmbeddingModel, EMBEDDING_MODELS,
)
from repro.completion.text_based import (
    KGBertScorer, SimKGCScorer, StARScorer, GenKGCCompleter, KICGPTReranker,
)
from repro.completion.transfer import LLMInitializedTransE, low_data_comparison
from repro.completion.biencoder import TrainedBiEncoder
from repro.completion.tasks import (
    CompletionSplit, LinkPredictionTask, TripleClassificationTask,
    RelationPredictionTask, EntityTypingTask, make_split,
)

__all__ = [
    "TransE", "DistMult", "ComplEx", "RotatE", "KGEmbeddingModel",
    "EMBEDDING_MODELS",
    "KGBertScorer", "SimKGCScorer", "StARScorer", "GenKGCCompleter",
    "KICGPTReranker",
    "LLMInitializedTransE", "low_data_comparison", "TrainedBiEncoder",
    "CompletionSplit", "LinkPredictionTask", "TripleClassificationTask",
    "RelationPredictionTask", "EntityTypingTask", "make_split",
]
