"""KG-to-Text generation (survey §2.2, RQ1).

Pipelines from the survey: linearize the (sub)graph, optionally order it
structure-awarely (relation-biased BFS, after Li et al.), then realize text
with a template baseline or an LLM under zero-shot / few-shot / fine-tuned
regimes. Metrics: BLEU, ROUGE-L, triple coverage and faithfulness.
"""

from repro.kg2text.linearize import linearize_triples, rbfs_order, triples_for_entity
from repro.kg2text.generate import (
    TemplateRealizer,
    ZeroShotVerbalizer,
    FewShotVerbalizer,
    FineTunedVerbalizer,
    reference_description,
)
from repro.kg2text.metrics import evaluate_generation, coverage, faithfulness

__all__ = [
    "linearize_triples", "rbfs_order", "triples_for_entity",
    "TemplateRealizer", "ZeroShotVerbalizer", "FewShotVerbalizer",
    "FineTunedVerbalizer", "reference_description",
    "evaluate_generation", "coverage", "faithfulness",
]
