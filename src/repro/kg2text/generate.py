"""Text realization for KG-to-Text under the survey's regimes."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.kg.graph import KnowledgeGraph, _humanize_relation
from repro.kg.triples import Triple
from repro.kg2text.linearize import LabelTriple, linearize_triples, rbfs_order
from repro.llm import prompts as P
from repro.llm.model import SimulatedLLM


def reference_description(kg: KnowledgeGraph, triples: Sequence[Triple]) -> str:
    """The gold description of a triple set: same-subject facts merged into
    one fluent sentence, subjects in RBFS order. This is what a human
    annotator (or the KGTEXT corpus) would write."""
    ordered = rbfs_order(kg, triples)
    sentences: List[str] = []
    current_subject: Optional[str] = None
    clauses: List[str] = []

    def flush() -> None:
        if current_subject is not None and clauses:
            sentences.append(f"{current_subject} " + ", and ".join(clauses) + ".")

    for triple in ordered:
        subject = kg.label(triple.subject)
        clause = f"{_humanize_relation(kg.label(triple.predicate))} {kg.label(triple.object)}"
        if subject != current_subject:
            flush()
            current_subject = subject
            clauses = [clause]
        else:
            clauses.append(clause)
    flush()
    return " ".join(sentences)


class TemplateRealizer:
    """No-LLM baseline: one flat sentence per triple, input order."""

    def __init__(self, kg: KnowledgeGraph):
        self.kg = kg

    def generate(self, triples: Sequence[Triple]) -> str:
        """One flat template sentence per triple, in input order."""
        return " ".join(self.kg.verbalize_triple(t) for t in triples)


class ZeroShotVerbalizer:
    """Prompt the LLM with the linearized graph, no demonstrations."""

    def __init__(self, llm: SimulatedLLM, kg: KnowledgeGraph,
                 structure_aware: bool = False):
        self.llm = llm
        self.kg = kg
        self.structure_aware = structure_aware

    def _linearize(self, triples: Sequence[Triple]) -> List[LabelTriple]:
        if self.structure_aware:
            triples = rbfs_order(self.kg, triples)
        return linearize_triples(self.kg, triples)

    def generate(self, triples: Sequence[Triple]) -> str:
        """Prompt the backbone with the linearized graph; returns the text."""
        prompt = P.kg2text_prompt(self._linearize(triples))
        return self.llm.complete(prompt).text


class FewShotVerbalizer(ZeroShotVerbalizer):
    """Li et al.'s few-shot setting: a handful of (graph, text) exemplars in
    the prompt, combined with RBFS ordering of the input graph."""

    def __init__(self, llm: SimulatedLLM, kg: KnowledgeGraph,
                 examples: Sequence[Tuple[Sequence[Triple], str]],
                 structure_aware: bool = True):
        super().__init__(llm, kg, structure_aware=structure_aware)
        self.examples = [
            (" ; ".join(f"{s} | {p} | {o}"
                        for s, p, o in linearize_triples(kg, example_triples)),
             reference)
            for example_triples, reference in examples
        ]

    def generate(self, triples: Sequence[Triple]) -> str:
        """Prompt with exemplars + RBFS-ordered input; returns the text."""
        prompt = P.kg2text_prompt(self._linearize(triples), examples=self.examples)
        return self.llm.complete(prompt).text


class FineTunedVerbalizer(ZeroShotVerbalizer):
    """KG-to-text fine-tuning (KGPT/JointGT regime): train on a corpus of
    (graph, reference) pairs, then prompt with RBFS-ordered input."""

    def __init__(self, llm: SimulatedLLM, kg: KnowledgeGraph):
        super().__init__(llm, kg, structure_aware=True)
        self.trained_on = 0

    def fit(self, corpus: Sequence[Tuple[Sequence[Triple], str]]) -> None:
        """Fine-tune the backbone on the KG-to-text corpus."""
        self.llm.fine_tune("graph verbalization", len(corpus))
        self.trained_on = len(corpus)
