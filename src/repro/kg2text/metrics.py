"""KG-to-Text metrics: surface quality plus semantic alignment.

``coverage`` — fraction of input triples whose object is mentioned in the
output (the "generate accurate descriptions covering the KG" criterion).
``faithfulness`` — 1 minus the hallucination rate: fraction of entity-like
mentions in the output that are licensed by the input triples.
"""

from __future__ import annotations

import re
from typing import Dict, List, Sequence, Tuple

from repro.eval.metrics import bleu, rouge_l
from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import IRI, Triple


def coverage(kg: KnowledgeGraph, triples: Sequence[Triple], text: str) -> float:
    """Fraction of triples whose object label appears in the text."""
    if not triples:
        return 1.0
    lowered = text.lower()
    hit = 0
    for triple in triples:
        if kg.label(triple.object).lower() in lowered:
            hit += 1
    return hit / len(triples)


def faithfulness(kg: KnowledgeGraph, triples: Sequence[Triple], text: str) -> float:
    """1 − hallucination rate over entity mentions.

    Mentions are maximal capitalized runs in the text; a mention is licensed
    when it is the label (or part of the label) of a subject/object of the
    input triples.
    """
    licensed: List[str] = []
    for triple in triples:
        licensed.append(kg.label(triple.subject).lower())
        licensed.append(kg.label(triple.object).lower())
    mentions = _capitalized_mentions(text)
    if not mentions:
        return 1.0
    supported = 0
    for mention in mentions:
        lowered = mention.lower()
        if any(lowered in label or label in lowered for label in licensed):
            supported += 1
    return supported / len(mentions)


def _capitalized_mentions(text: str) -> List[str]:
    runs: List[str] = []
    current: List[str] = []
    last_end = 0
    for match in re.finditer(r"[A-Za-z0-9'-]+", text):
        token = match.group()
        gap = text[last_end:match.start()]
        boundary = any(ch in gap for ch in ".!?,;:")
        if (token[0].isupper() or token.isdigit()) and not (boundary and current):
            current.append(token)
        else:
            if current:
                runs.append(" ".join(current))
                current = []
            if token[0].isupper() or token.isdigit():
                current.append(token)
        last_end = match.end()
    if current:
        runs.append(" ".join(current))
    return [r for r in runs if len(r) > 2]


def evaluate_generation(generator, kg: KnowledgeGraph,
                        instances: Sequence[Tuple[Sequence[Triple], str]]
                        ) -> Dict[str, float]:
    """Mean BLEU / ROUGE-L / coverage / faithfulness over a test set.

    ``instances`` are (input triples, reference text) pairs; ``generator``
    exposes ``generate(triples) -> str``.
    """
    if not instances:
        raise ValueError("no evaluation instances")
    totals = {"bleu": 0.0, "rouge_l": 0.0, "coverage": 0.0, "faithfulness": 0.0}
    for triples, reference in instances:
        output = generator.generate(triples)
        totals["bleu"] += bleu(output, [reference])
        totals["rouge_l"] += rouge_l(output, reference)
        totals["coverage"] += coverage(kg, triples, output)
        totals["faithfulness"] += faithfulness(kg, triples, output)
    return {name: value / len(instances) for name, value in totals.items()}
