"""Graph linearization for KG-to-Text.

Two orderings: the naive input order (what GAP-style linearization starts
from) and relation-biased breadth-first search (RBFS, after Li et al.),
which arranges the KG into a well-structured entity sequence — same-subject
triples contiguous, hops expanding outward from the root entity — before the
PLM sees it.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import IRI, Literal, RDF, RDFS, Triple

LabelTriple = Tuple[str, str, str]


def triples_for_entity(kg: KnowledgeGraph, entity: IRI,
                       max_triples: int = 6) -> List[Triple]:
    """The descriptive triples of an entity (labels/types excluded)."""
    out = []
    for triple in kg.outgoing(entity):
        if triple.predicate in (RDFS.label, RDFS.comment, RDF.type):
            continue
        out.append(triple)
        if len(out) >= max_triples:
            break
    return out


def linearize_triples(kg: KnowledgeGraph,
                      triples: Sequence[Triple]) -> List[LabelTriple]:
    """Triples → (subject label, relation label, object label) tuples."""
    out = []
    for triple in triples:
        out.append((
            kg.label(triple.subject),
            kg.label(triple.predicate),
            kg.label(triple.object),
        ))
    return out


def rbfs_order(kg: KnowledgeGraph, triples: Sequence[Triple],
               root: Optional[IRI] = None,
               relation_priority: Optional[Dict[IRI, int]] = None
               ) -> List[Triple]:
    """Relation-biased BFS ordering of a triple set.

    Starting from ``root`` (default: the highest-degree subject in the set),
    triples are emitted level by level; within a level they are ordered by
    ``relation_priority`` (lower is earlier; unlisted relations go by label).
    The output is a permutation of the input.
    """
    triples = list(triples)
    if not triples:
        return []
    by_subject: Dict[IRI, List[Triple]] = {}
    for triple in triples:
        by_subject.setdefault(triple.subject, []).append(triple)
    if root is None:
        root = max(by_subject, key=lambda s: (len(by_subject[s]), s.value))
    priority = relation_priority or {}

    def relation_key(triple: Triple) -> Tuple[int, str, str]:
        return (priority.get(triple.predicate, 10_000),
                kg.label(triple.predicate), triple.object.n3())

    ordered: List[Triple] = []
    emitted = set()
    queue: deque = deque([root])
    visited = {root}
    while queue:
        node = queue.popleft()
        for triple in sorted(by_subject.get(node, []), key=relation_key):
            if triple in emitted:
                continue
            emitted.add(triple)
            ordered.append(triple)
            if isinstance(triple.object, IRI) and triple.object not in visited:
                visited.add(triple.object)
                queue.append(triple.object)
    # Disconnected leftovers keep a deterministic tail order.
    for triple in sorted((t for t in triples if t not in emitted),
                         key=lambda t: t.n3()):
        ordered.append(triple)
    return ordered
