"""A deterministic ReAct loop over the graph-tool registry.

The survey's "LLMs reasoning over KGs" family couples an LLM to a KG
through *iterated* tool use: the model thinks, picks a tool, reads the
observation, and repeats until it commits to an answer. This module
reproduces that loop with the repo's determinism contract intact:

* the model decision for each step goes through ``llm.complete`` on the
  coordinating thread, so fault-schedule indices are consumed exactly
  once and in the same order as any non-agent caller issuing the same
  prompts — :class:`~repro.llm.faults.FaultInjectingLLM` and
  :class:`~repro.llm.caching.CachingLLM` compose unchanged;
* tools fan their pure per-entity reads out through
  :class:`~repro.core.executor.ParallelExecutor` and merge in input
  order, so a trace is byte-identical at any worker count;
* every step is recorded in an :class:`AgentTrace` (prompt, response,
  parsed action, observation) that serializes to JSONL — the
  step-auditable artifact replayed by tests, the CLI, and CI.

Episode semantics: ``max_steps`` bounds the number of LLM decisions
(the step budget); an empty observation triggers a **self-reflection**
line in the scratchpad before the next decision; a transient LLM fault
consumes budget, marks the episode degraded, and retries the same
decision (nothing is appended to the scratchpad — the model never saw
a response); running out of budget ends the episode with ``"unknown"``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.core.executor import ParallelExecutor
from repro.core.observability import resolve_obs
from repro.kg.graph import KnowledgeGraph
from repro.llm import prompts as P
from repro.llm.caching import maybe_cached
from repro.llm.faults import LLMTransientError
from repro.sparql import SparqlEvaluationError, SparqlParseError

from repro.agent.tools import (Observation, ToolRegistry, UnknownToolError,
                               default_registry)

#: The scratchpad line appended after an empty observation.
REFLECTION_NOTE = ("the observation was empty — reconsider the approach "
                   "before acting again")


@dataclass
class AgentStep:
    """One LLM decision and everything that came of it."""

    index: int
    prompt: str
    response: str
    thought: str = ""
    tool: Optional[str] = None
    args: Dict[str, Any] = field(default_factory=dict)
    observation: Optional[str] = None
    reflection: bool = False
    final: Optional[str] = None
    fault: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-able record of the step (trace schema, DESIGN §12)."""
        return {
            "index": self.index,
            "prompt": self.prompt,
            "response": self.response,
            "thought": self.thought,
            "tool": self.tool,
            "args": self.args,
            "observation": self.observation,
            "reflection": self.reflection,
            "final": self.final,
            "fault": self.fault,
        }


@dataclass
class AgentTrace:
    """A full episode: the auditable unit the agent produces."""

    question: str
    max_steps: int
    steps: List[AgentStep] = field(default_factory=list)
    final_answer: str = "unknown"
    stop_reason: str = "budget"      # final | budget
    degraded: bool = False

    @property
    def prompts(self) -> List[str]:
        """Every prompt issued, in order (the fault-replay surface)."""
        return [step.prompt for step in self.steps]

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-able form; equality ⇔ byte-identical episodes."""
        return {
            "question": self.question,
            "max_steps": self.max_steps,
            "final_answer": self.final_answer,
            "stop_reason": self.stop_reason,
            "degraded": self.degraded,
            "steps": [step.to_dict() for step in self.steps],
        }

    def jsonl_lines(self) -> List[str]:
        """The trace as JSONL records: header, one per step, footer."""
        records: List[Dict[str, Any]] = [
            {"type": "header", "question": self.question,
             "max_steps": self.max_steps}]
        for step in self.steps:
            record = {"type": "step"}
            record.update(step.to_dict())
            records.append(record)
        records.append({"type": "final", "answer": self.final_answer,
                        "stop_reason": self.stop_reason,
                        "degraded": self.degraded,
                        "steps": len(self.steps)})
        return [json.dumps(record, sort_keys=True) for record in records]


def parse_trace_jsonl(lines: Sequence[str]) -> Dict[str, Any]:
    """Validate and load a serialized trace.

    Raises ``ValueError`` on malformed input (bad JSON, missing or
    out-of-order record types) — the typed surface the CLI degrades on.
    """
    records = []
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"line {number}: not valid JSON ({error})")
        if not isinstance(record, dict) or "type" not in record:
            raise ValueError(f"line {number}: not a trace record")
        records.append(record)
    if not records or records[0].get("type") != "header":
        raise ValueError("trace must start with a header record")
    if records[-1].get("type") != "final":
        raise ValueError("trace must end with a final record")
    steps = [r for r in records[1:-1] if r.get("type") == "step"]
    if len(steps) != len(records) - 2:
        raise ValueError("unexpected record type between header and final")
    # A record can be valid JSON of the right type and still be truncated
    # or hand-mangled; missing fields must surface as the same typed
    # ValueError the CLI degrades on, not as a KeyError traceback later.
    for key in ("question", "max_steps"):
        if key not in records[0]:
            raise ValueError(f"header record is missing {key!r}")
    for key in ("answer", "stop_reason", "steps", "degraded"):
        if key not in records[-1]:
            raise ValueError(f"final record is missing {key!r}")
    for step in steps:
        if "index" not in step:
            raise ValueError("step record is missing 'index'")
    return {"header": records[0], "steps": steps, "final": records[-1]}


class GraphAgent:
    """Deterministic thought → action → observation loop over a KG."""

    def __init__(self, llm, kg: KnowledgeGraph,
                 registry: Optional[ToolRegistry] = None,
                 max_steps: int = 8,
                 executor: Optional[ParallelExecutor] = None,
                 cache=False, obs=None):
        if max_steps < 1:
            raise ValueError("max_steps must be >= 1")
        self.llm = maybe_cached(llm, cache)
        self.obs = resolve_obs(obs)
        self.kg = kg
        self.executor = executor or ParallelExecutor(max_workers=1,
                                                     obs=self.obs)
        self.registry = registry if registry is not None else \
            default_registry(kg, executor=self.executor)
        self.max_steps = max_steps
        if self.obs.enabled:
            self.obs.bind_llm(self.llm)
            self.obs.bind_kg(kg)

    # ------------------------------------------------------------------
    # Episode
    # ------------------------------------------------------------------
    def run(self, question: str) -> AgentTrace:
        """One budgeted episode; never raises on operational faults."""
        trace = AgentTrace(question=question, max_steps=self.max_steps)
        scratchpad: List[str] = []
        catalogue = self.registry.describe()
        with self.obs.span("agent:episode", question=question,
                           max_steps=self.max_steps):
            for index in range(self.max_steps):
                prompt = P.agent_step_prompt(question, catalogue, scratchpad)
                with self.obs.span("agent:step", index=index):
                    step = self._step(index, prompt, scratchpad)
                trace.steps.append(step)
                self.obs.count("agent.steps")
                if step.fault is not None:
                    trace.degraded = True
                    continue
                if step.final is not None:
                    trace.final_answer = step.final
                    trace.stop_reason = "final"
                    break
        self.obs.count("agent.episodes", stop=trace.stop_reason)
        return trace

    def answer(self, question: str) -> str:
        """The episode's final answer (serving-backend surface)."""
        return self.run(question).final_answer

    # ------------------------------------------------------------------
    # One decision
    # ------------------------------------------------------------------
    def _step(self, index: int, prompt: str,
              scratchpad: List[str]) -> AgentStep:
        try:
            response = self.llm.complete(prompt)
        except LLMTransientError as error:
            # Budget is consumed but the scratchpad is untouched: the
            # model never saw a response, so the next step retries the
            # same decision (under a fresh fault-schedule index).
            self.obs.count("agent.faults", kind=error.kind)
            return AgentStep(index=index, prompt=prompt, response="",
                             fault=error.kind)
        decision = P.parse_agent_response(response.text)
        step = AgentStep(index=index, prompt=prompt, response=response.text,
                         thought=decision.thought, tool=decision.tool,
                         args=decision.args, final=decision.final)
        if decision.thought:
            scratchpad.append(f"Thought: {decision.thought}")
        if decision.final is not None:
            return step
        if decision.tool is None:
            # Unparseable decision: record it as an error observation so
            # the reflection machinery steers the next step.
            observation = Observation(text="error: unparseable decision")
        else:
            scratchpad.append(
                f"Action: {decision.tool} "
                f"{json.dumps(decision.args, sort_keys=True)}")
            observation = self._execute(decision.tool, decision.args)
        rendered = observation.render()
        step.observation = rendered
        scratchpad.append(f"Observation: {rendered}")
        if observation.empty:
            step.reflection = True
            scratchpad.append(f"Reflection: {REFLECTION_NOTE}")
            self.obs.count("agent.reflections")
        return step

    def _execute(self, name: str, args: Dict[str, Any]) -> Observation:
        """Run one tool call; failures become error observations."""
        try:
            tool = self.registry.get(name)
        except UnknownToolError as error:
            return Observation(text=f"error: {error}")
        with self.obs.span("agent:tool", tool=name):
            try:
                return tool.fn(**args)
            except (TypeError, ValueError, KeyError, SparqlParseError,
                    SparqlEvaluationError) as error:
                self.obs.count("agent.tool_errors", tool=name)
                return Observation(text=f"error: {name}: {error}")
