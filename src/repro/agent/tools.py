"""The typed graph-tool registry the agent loop acts over.

Each tool is a named, described callable from JSON-able keyword
arguments to an :class:`Observation` — the "environment" half of the
ReAct loop. Tools are *pure reads* of the knowledge graph (the agent
never mutates state), which is what makes fanning their per-entity work
out through :class:`~repro.core.executor.ParallelExecutor` safe: results
are merged in input order, so an episode is byte-identical at any worker
count. The catalogue rendered by :meth:`ToolRegistry.describe` is the
exact text the agent-step prompt shows the model, keeping the registry
and the simulator's router on one contract.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.core.executor import ParallelExecutor
from repro.kg.graph import KnowledgeGraph
from repro.kg.indexes import FullTextIndex, indexable_needle, tokenize
from repro.kg.replication import ReplicationError
from repro.kg.triples import IRI, RDFS
from repro.sparql import SparqlEngine


class UnknownToolError(KeyError):
    """An action named a tool the registry does not provide."""

    def __init__(self, name: str, available: Sequence[str] = ()):
        super().__init__(name)
        self.name = name
        self.available = tuple(available)

    def __str__(self) -> str:
        hint = f"; available: {', '.join(self.available)}" \
            if self.available else ""
        return f"unknown tool {self.name!r}{hint}"


@dataclass
class Observation:
    """What one tool call produced.

    ``items`` are ``(identifier, label)`` entity pairs for chaining into
    the next action; ``text`` overrides the rendered line for scalar
    results (aggregates, ASK verdicts, error notices). The rendering is
    the scratchpad surface the simulated model parses back, so its
    format (``id|label`` joined by ``"; "``, ``none`` when empty) is
    part of the prompt contract.
    """

    items: List[Tuple[str, str]] = field(default_factory=list)
    text: str = ""

    def render(self) -> str:
        """The single scratchpad line for this observation."""
        if self.text:
            return self.text
        if not self.items:
            return "none"
        return "; ".join(f"{ident}|{label}" for ident, label in self.items)

    @property
    def empty(self) -> bool:
        """Whether the observation carries no evidence (reflection cue)."""
        if self.items:
            return False
        return not self.text or self.text == "none" or \
            self.text.startswith("error")


@dataclass(frozen=True)
class Tool:
    """One registered tool: a name, a one-line description, a callable."""

    name: str
    description: str
    fn: Callable[..., Observation]


class ToolRegistry:
    """Ordered name → :class:`Tool` map with a rendered catalogue."""

    def __init__(self, tools: Iterable[Tool] = ()):
        self._tools: "OrderedDict[str, Tool]" = OrderedDict()
        for tool in tools:
            self.register(tool)

    def register(self, tool: Tool) -> Tool:
        """Add (or replace) a tool under its name."""
        self._tools[tool.name] = tool
        return tool

    def get(self, name: str) -> Tool:
        """The tool registered under ``name``; typed error otherwise."""
        tool = self._tools.get(name)
        if tool is None:
            raise UnknownToolError(name, self.names())
        return tool

    def names(self) -> List[str]:
        """Registered tool names in registration order."""
        return list(self._tools)

    def subset(self, names: Sequence[str]) -> "ToolRegistry":
        """A registry restricted to ``names`` (validated, order kept)."""
        return ToolRegistry(self.get(name) for name in names)

    def describe(self) -> str:
        """The ``name: description`` catalogue shown to the model."""
        return "\n".join(f"{tool.name}: {tool.description}"
                         for tool in self._tools.values())

    def __len__(self) -> int:
        return len(self._tools)

    def __contains__(self, name: str) -> bool:
        return name in self._tools


#: Caps keeping observations (and therefore prompts) bounded.
MAX_SEARCH_RESULTS = 16
MAX_NEIGHBOUR_RESULTS = 48
MAX_SPARQL_RESULTS = 48


def default_registry(kg: KnowledgeGraph,
                     executor: Optional[ParallelExecutor] = None,
                     fulltext: Optional[FullTextIndex] = None,
                     engine: Optional[SparqlEngine] = None) -> ToolRegistry:
    """The standard five-tool registry over one knowledge graph.

    ``executor`` fans per-token / per-entity reads out (pure work only —
    nothing ordering-sensitive runs in workers); ``fulltext`` and
    ``engine`` default to a token-postings index and a cost-planned
    SPARQL engine over the graph's store, and may be shared with other
    components over the same store.
    """
    executor = executor or ParallelExecutor(max_workers=1)
    fulltext = fulltext or FullTextIndex(kg.store)
    engine = engine or SparqlEngine(kg.store, planner="cost",
                                    fulltext=fulltext)

    def _dedupe(pairs: Iterable[Tuple[str, str]],
                cap: int) -> List[Tuple[str, str]]:
        seen = set()
        out: List[Tuple[str, str]] = []
        for pair in pairs:
            if pair[0] in seen:
                continue
            seen.add(pair[0])
            out.append(pair)
            if len(out) >= cap:
                break
        return out

    def _item(entity: IRI) -> Tuple[str, str]:
        return (entity.value, kg.label(entity))

    def entity_search(query: str = "") -> Observation:
        """Label token-postings lookup; exact label matches first."""
        exact = [_item(e) for e in kg.find_by_label(str(query))]
        needles = [n for n in
                   (indexable_needle(t) for t in tokenize(str(query))) if n]

        def lookup(needle: str) -> List[Tuple[str, str]]:
            triples = fulltext.candidates(RDFS.label, needle) or []
            return [_item(t.subject) for t in triples]

        fuzzy = [pair for row in executor.map(needles, lookup)
                 for pair in row]
        return Observation(items=_dedupe(exact + fuzzy, MAX_SEARCH_RESULTS))

    def neighbors(entities: Sequence[str] = (), relation: str = "",
                  direction: str = "out") -> Observation:
        """Expand a frontier one hop; IRI neighbours only."""
        if direction not in ("out", "in", "both"):
            raise ValueError(f"direction must be out/in/both, "
                             f"got {direction!r}")
        rel = IRI(str(relation)) if relation else None
        frontier = [str(e) for e in entities]

        def expand(ident: str) -> List[Tuple[str, str]]:
            steps = kg.neighbours(IRI(ident), rel, direction)
            return [_item(term) for _, term, _ in steps
                    if isinstance(term, IRI)]

        merged = [pair for row in executor.map(frontier, expand)
                  for pair in row]
        return Observation(items=_dedupe(merged, MAX_NEIGHBOUR_RESULTS))

    def find_path(source: str = "", target: str = "",
                  max_hops: int = 3) -> Observation:
        """Connecting entities strictly between source and target."""
        paths = kg.paths(IRI(str(source)), IRI(str(target)),
                         max_hops=int(max_hops))
        middles: List[Tuple[str, str]] = []
        for path in paths:
            for _, term, _ in path[:-1]:
                if isinstance(term, IRI):
                    middles.append(_item(term))
        if not middles and paths:
            return Observation(text="directly connected")
        return Observation(items=_dedupe(middles, MAX_NEIGHBOUR_RESULTS))

    def aggregate(values: Sequence[str] = (),
                  op: str = "count") -> Observation:
        """Pure aggregation over observed values (no graph access)."""
        items = [str(v) for v in values]
        if op == "count":
            return Observation(text=f"count={len(set(items))}")
        if op in ("min", "max"):
            if not items:
                return Observation(text=f"{op}=none")
            pick = min(sorted(items)) if op == "min" else max(sorted(items))
            return Observation(text=f"{op}={pick}")
        raise ValueError(f"unknown aggregate op {op!r}")

    def sparql(query: str = "") -> Observation:
        """Execute a drafted query through the cost-based planner."""
        result = engine.execute(str(query))
        if isinstance(result, bool):
            return Observation(text=f"ask={str(result).lower()}")
        pairs: List[Tuple[str, str]] = []
        for row in result:
            for var in sorted(row):
                term = row[var]
                if isinstance(term, IRI):
                    pairs.append(_item(term))
        return Observation(items=_dedupe(pairs, MAX_SPARQL_RESULTS))

    def _partition_tolerant(fn: Callable[..., Observation]
                            ) -> Callable[..., Observation]:
        """Degrade replication failures to error observations.

        When the graph sits on replicated shards, a partition can
        surface mid-episode as a :class:`ReplicationError`. The agent
        should treat "that shard is unreachable right now" as an empty
        observation (triggering its reflection step) rather than
        aborting the whole episode — the next action may well route to
        healthy shards.
        """
        def guarded(**kwargs) -> Observation:
            try:
                return fn(**kwargs)
            except ReplicationError as exc:
                return Observation(
                    text=f"error: graph shard unavailable "
                         f"({type(exc).__name__}: {exc})")
        return guarded

    return ToolRegistry([
        Tool("entity_search", "find entities whose label matches a query "
                              "string", _partition_tolerant(entity_search)),
        Tool("neighbors", "expand a list of entity IRIs one hop along an "
                          "optional relation IRI (direction out/in/both)",
             _partition_tolerant(neighbors)),
        Tool("find_path", "list the entities connecting a source IRI to a "
                          "target IRI within max_hops",
             _partition_tolerant(find_path)),
        Tool("aggregate", "aggregate observed values (op: count/min/max)",
             aggregate),
        Tool("sparql", "draft-and-execute a SPARQL SELECT or ASK query "
                       "via the cost-based planner",
             _partition_tolerant(sparql)),
    ])
