"""Multi-hop eval set + experiment proving the agent loop earns its cost.

Single-shot GraphRAG retrieves a one-hop neighbourhood around the
question's mentions and answers in one completion — it provably cannot
follow a two-hop relation chain, invert a relation, count a derived
entity set, or find a connecting entity. This module generates exactly
those question styles (gold structure computed from the KG), scores
both systems by exact label-set match, and checks that agent traces are
byte-identical across executor worker counts — the three claims
``BENCH_agent.json`` gates on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.agent.loop import AgentTrace, GraphAgent
from repro.core.executor import ParallelExecutor
from repro.enhanced.graph_rag import GraphRAG
from repro.kg.datasets import DATASET_BUILDERS, Dataset
from repro.kg.graph import KnowledgeGraph, _humanize_relation
from repro.kg.triples import IRI, OWL, RDF, RDFS
from repro.llm.registry import load_model
from repro.qa.multihop import MultiHopQuestion, generate_multihop_questions


@dataclass(frozen=True)
class AgentEvalItem:
    """One question with its gold answer rendered as a label set."""

    question: str
    gold: frozenset
    kind: str               # chain | count | inverse | path


def _labels(kg: KnowledgeGraph, entities) -> frozenset:
    return frozenset(kg.label(e) for e in entities)


def _instance_relations(kg: KnowledgeGraph) -> List[IRI]:
    return sorted((r for r in kg.store.relations()
                   if not r.value.startswith(RDFS.prefix)
                   and not r.value.startswith(OWL.prefix) and r != RDF.type),
                  key=lambda r: r.value)


def _inverse_items(dataset: Dataset, n: int, seed: int) -> List[AgentEvalItem]:
    """``Which entities are <relation> <object>?`` — answered by subjects."""
    kg = dataset.kg
    rng = random.Random(seed * 7919 + 1)
    candidates: List[Tuple[IRI, IRI, frozenset]] = []
    for relation in _instance_relations(kg):
        objects = sorted({t.object for t in kg.store.match(None, relation,
                                                           None)
                          if isinstance(t.object, IRI)},
                         key=lambda e: e.value)
        for obj in objects:
            subjects = {t.subject for t in kg.store.match(None, relation,
                                                          obj)}
            # Symmetric instances (marriedTo-style) are answerable from a
            # one-hop neighbourhood — keep only genuinely inverse lookups,
            # the ones single-shot retrieval cannot serve.
            if subjects and not any(kg.store.match(obj, relation, s)
                                    for s in subjects):
                candidates.append((relation, obj, _labels(kg, subjects)))
    rng.shuffle(candidates)
    items = []
    for relation, obj, gold in candidates[:n]:
        phrase = _humanize_relation(kg.label(relation))
        items.append(AgentEvalItem(
            question=f"Which entities are {phrase} {kg.label(obj)}?",
            gold=gold, kind="inverse"))
    return items


def _path_items(dataset: Dataset, pool: Sequence[MultiHopQuestion],
                n: int) -> List[AgentEvalItem]:
    """``Via which entity is A connected to B?`` — gold = the middles."""
    kg = dataset.kg
    items: List[AgentEvalItem] = []
    for question in pool:
        if len(items) >= n:
            break
        if question.hops != 2 or not question.answers:
            continue
        target = sorted(question.answers, key=lambda e: e.value)[0]
        if target == question.anchor:
            continue
        if kg.paths(question.anchor, target, max_hops=1):
            continue            # a direct edge would short-circuit the hop
        middles = {step[1] for path in kg.paths(question.anchor, target,
                                                max_hops=2)
                   for step in path[:-1] if isinstance(step[1], IRI)}
        if not middles:
            continue
        items.append(AgentEvalItem(
            question=f"Via which entity is {kg.label(question.anchor)} "
                     f"connected to {kg.label(target)}?",
            gold=_labels(kg, middles), kind="path"))
    return items


def multihop_eval_set(dataset: Dataset, n: int = 12,
                      seed: int = 0) -> List[AgentEvalItem]:
    """A balanced chain/count/inverse/path question set of size ≤ ``n``."""
    kg = dataset.kg
    quarter = max(1, n // 4)
    n_chain = n - 3 * quarter
    pool = generate_multihop_questions(dataset, n=3 * n, hops=2, seed=seed)
    items: List[AgentEvalItem] = []
    for question in pool[:n_chain]:
        items.append(AgentEvalItem(question=question.text,
                                   gold=_labels(kg, question.answers),
                                   kind="chain"))
    for question in pool[n_chain:n_chain + quarter]:
        body = question.text[len("List what "):].rstrip("?")
        items.append(AgentEvalItem(
            question=f"How many {body}?",
            gold=frozenset({str(len(question.answers))}), kind="count"))
    items.extend(_inverse_items(dataset, quarter, seed))
    items.extend(_path_items(dataset, pool[n_chain + quarter:], quarter))
    # Short kinds (rare path/inverse shapes on small KGs) top up with
    # extra chain questions so the set size stays predictable.
    used = n_chain + quarter
    for question in pool[used:]:
        if len(items) >= n:
            break
        item = AgentEvalItem(question=question.text,
                             gold=_labels(kg, question.answers),
                             kind="chain")
        if all(existing.question != item.question for existing in items):
            items.append(item)
    return items[:n]


def score(prediction: str, gold: frozenset) -> bool:
    """Exact label-set match between a rendered answer and the gold set."""
    predicted = {part.strip() for part in str(prediction).split(",")
                 if part.strip()}
    return predicted == set(gold)


def single_shot_accuracy(dataset: Dataset, items: Sequence[AgentEvalItem],
                         seed: int = 0, llm=None) -> float:
    """Single-shot GraphRAG local search scored on the same items."""
    model = llm if llm is not None else load_model("chatgpt",
                                                   world=dataset.kg,
                                                   seed=seed)
    rag = GraphRAG(model, dataset.kg)
    rag.build()
    if not items:
        return 0.0
    hits = sum(1 for item in items
               if score(rag.answer_local(item.question), item.gold))
    return hits / len(items)


def run_agent(dataset: Dataset, items: Sequence[AgentEvalItem],
              seed: int = 0, max_steps: int = 8, workers: int = 1,
              llm=None, obs=None) -> List[AgentTrace]:
    """One agent episode per item on a fresh (or supplied) LLM stack."""
    model = llm if llm is not None else load_model("chatgpt",
                                                   world=dataset.kg,
                                                   seed=seed)
    agent = GraphAgent(model, dataset.kg, max_steps=max_steps,
                       executor=ParallelExecutor(max_workers=workers),
                       obs=obs)
    return [agent.run(item.question) for item in items]


def agent_experiment(dataset: str = "family", n: int = 12, seed: int = 0,
                     max_steps: int = 8,
                     workers: Sequence[int] = (1, 4),
                     obs=None) -> Dict[str, object]:
    """The full BENCH_agent experiment: accuracy gap + trace identity."""
    data = DATASET_BUILDERS[dataset](seed=seed)
    items = multihop_eval_set(data, n=n, seed=seed)
    runs: Dict[int, List[Dict[str, object]]] = {}
    for count in workers:
        traces = run_agent(data, items, seed=seed, max_steps=max_steps,
                           workers=count, obs=obs)
        runs[count] = [trace.to_dict() for trace in traces]
    reference = runs[list(workers)[0]]
    identical = all(runs[count] == reference for count in workers)
    per_kind: Dict[str, List[bool]] = {}
    hits = 0
    total_steps = 0
    for item, trace in zip(items, reference):
        correct = score(str(trace["final_answer"]), item.gold)
        hits += int(correct)
        total_steps += len(trace["steps"])
        per_kind.setdefault(item.kind, []).append(correct)
    agent_accuracy = hits / len(items) if items else 0.0
    return {
        "dataset": dataset,
        "n": len(items),
        "seed": seed,
        "max_steps": max_steps,
        "workers": list(workers),
        "agent_accuracy": agent_accuracy,
        "single_shot_accuracy": single_shot_accuracy(data, items, seed=seed),
        "traces_identical": identical,
        "mean_steps": total_steps / len(items) if items else 0.0,
        "accuracy_by_kind": {kind: sum(flags) / len(flags)
                             for kind, flags in sorted(per_kind.items())},
    }
