"""Agentic multi-step GraphRAG: a deterministic ReAct loop over typed
graph tools (survey's "LLMs reasoning over KGs" family, ROADMAP item 3).

Public surface: :class:`GraphAgent` runs budgeted thought → action →
observation episodes over a :class:`ToolRegistry` (entity search,
neighbour expansion, path finding, aggregation, SPARQL
draft-and-execute); :mod:`repro.agent.eval` generates the multi-hop
eval set single-shot GraphRAG provably fails and runs the gated
experiment.
"""

from repro.agent.loop import (AgentStep, AgentTrace, GraphAgent,
                              REFLECTION_NOTE, parse_trace_jsonl)
from repro.agent.tools import (Observation, Tool, ToolRegistry,
                               UnknownToolError, default_registry)
from repro.agent.eval import (AgentEvalItem, agent_experiment,
                              multihop_eval_set, run_agent, score,
                              single_shot_accuracy)

__all__ = [
    "AgentEvalItem",
    "AgentStep",
    "AgentTrace",
    "GraphAgent",
    "Observation",
    "REFLECTION_NOTE",
    "Tool",
    "ToolRegistry",
    "UnknownToolError",
    "agent_experiment",
    "default_registry",
    "multihop_eval_set",
    "parse_trace_jsonl",
    "run_agent",
    "score",
    "single_shot_accuracy",
]
