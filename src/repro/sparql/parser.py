"""Recursive-descent parser for the SPARQL subset."""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.kg.triples import IRI, Literal, RDF, Term, XSD
from repro.sparql import algebra as alg
from repro.sparql.lexer import SparqlLexError, Token, tokenize


class SparqlParseError(ValueError):
    """Raised when the query text is not valid in the supported subset."""


class _Parser:
    def __init__(self, tokens: List[Token], text: str):
        self.tokens = tokens
        self.text = text
        self.index = 0
        self.prefixes: Dict[str, str] = {}

    # -- token plumbing -------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != "EOF":
            self.index += 1
        return token

    def accept(self, *kinds: str) -> Optional[Token]:
        if self.current.kind in kinds:
            return self.advance()
        return None

    def expect(self, *kinds: str) -> Token:
        if self.current.kind in kinds:
            return self.advance()
        raise SparqlParseError(
            f"expected {' or '.join(kinds)} but found {self.current.kind} "
            f"({self.current.text!r}) at offset {self.current.position}"
        )

    # -- entry point -----------------------------------------------------
    def parse(self) -> alg.Query:
        while self.accept("PREFIX"):
            ns = self.expect("PNAME_NS").text[:-1]
            iri = self.expect("IRIREF").text[1:-1]
            self.prefixes[ns] = iri
        if self.accept("SELECT"):
            query = self._select_query()
        elif self.accept("ASK"):
            query = alg.AskQuery(where=self._group_pattern())
        else:
            raise SparqlParseError(
                f"expected SELECT or ASK at offset {self.current.position}"
            )
        self.expect("EOF")
        return query

    # -- SELECT ----------------------------------------------------------
    def _select_query(self) -> alg.SelectQuery:
        distinct = bool(self.accept("DISTINCT"))
        variables: List[alg.Var] = []
        count: Optional[alg.CountAggregate] = None
        if self.accept("STAR"):
            pass
        else:
            while True:
                if self.current.kind == "VAR":
                    variables.append(self._var(self.advance()))
                elif self.current.kind == "LPAREN":
                    if count is not None:
                        raise SparqlParseError("only one COUNT aggregate is supported")
                    count = self._count_aggregate()
                else:
                    break
            if not variables and count is None:
                raise SparqlParseError(
                    f"expected projection at offset {self.current.position}"
                )
        self.accept("WHERE")
        where = self._group_pattern()
        group_by: List[alg.Var] = []
        if self.accept("GROUP"):
            self.expect("BY")
            while self.current.kind == "VAR":
                group_by.append(self._var(self.advance()))
            if not group_by:
                raise SparqlParseError("GROUP BY requires at least one variable")
        order_by: List[alg.OrderCondition] = []
        if self.accept("ORDER"):
            self.expect("BY")
            while True:
                if self.accept("ASC"):
                    self.expect("LPAREN")
                    order_by.append(alg.OrderCondition(self._var(self.expect("VAR"))))
                    self.expect("RPAREN")
                elif self.accept("DESC"):
                    self.expect("LPAREN")
                    order_by.append(
                        alg.OrderCondition(self._var(self.expect("VAR")), descending=True)
                    )
                    self.expect("RPAREN")
                elif self.current.kind == "VAR":
                    order_by.append(alg.OrderCondition(self._var(self.advance())))
                else:
                    break
            if not order_by:
                raise SparqlParseError("ORDER BY requires at least one condition")
        limit = None
        offset = 0
        # LIMIT and OFFSET may appear in either order.
        for _ in range(2):
            if self.accept("LIMIT"):
                limit = int(self.expect("NUMBER").text)
            elif self.accept("OFFSET"):
                offset = int(self.expect("NUMBER").text)
        return alg.SelectQuery(
            variables=variables, where=where, distinct=distinct,
            order_by=order_by, limit=limit, offset=offset, count=count,
            group_by=group_by,
        )

    def _count_aggregate(self) -> alg.CountAggregate:
        self.expect("LPAREN")
        self.expect("COUNT")
        self.expect("LPAREN")
        distinct = bool(self.accept("DISTINCT"))
        if self.accept("STAR"):
            var = None
        else:
            var = self._var(self.expect("VAR"))
        self.expect("RPAREN")
        self.expect("AS")
        alias = self._var(self.expect("VAR"))
        self.expect("RPAREN")
        return alg.CountAggregate(var=var, alias=alias, distinct=distinct)

    # -- patterns ----------------------------------------------------------
    def _group_pattern(self) -> alg.GroupPattern:
        self.expect("LBRACE")
        group = alg.GroupPattern()
        bgp = alg.BGP()
        while self.current.kind != "RBRACE":
            if self.accept("FILTER"):
                group.elements.append(alg.Filter(self._constraint()))
            elif self.accept("OPTIONAL"):
                if bgp.patterns:
                    # Flush so the left side of the left-join evaluates first.
                    group.elements.append(bgp)
                    bgp = alg.BGP()
                group.elements.append(alg.OptionalPattern(self._group_pattern()))
            elif self.current.kind == "LBRACE":
                if bgp.patterns:
                    group.elements.append(bgp)
                    bgp = alg.BGP()
                first = self._group_pattern()
                alternatives = [first]
                while self.accept("UNION"):
                    alternatives.append(self._group_pattern())
                if len(alternatives) == 1:
                    group.elements.append(first)
                else:
                    group.elements.append(alg.UnionPattern(alternatives))
            else:
                for pattern in self._triples_same_subject():
                    bgp.patterns.append(pattern)
                if not self.accept("DOT") and self.current.kind not in (
                    "RBRACE", "FILTER", "OPTIONAL", "LBRACE",
                ):
                    raise SparqlParseError(
                        f"expected '.' or '}}' at offset {self.current.position}"
                    )
        self.expect("RBRACE")
        if bgp.patterns:
            group.elements.append(bgp)
        return group

    def _triples_same_subject(self) -> List[alg.TriplePattern]:
        subject = self._var_or_term()
        patterns: List[alg.TriplePattern] = []
        while True:
            predicate = self._verb()
            while True:
                obj = self._var_or_term()
                patterns.append(alg.TriplePattern(subject, predicate, obj))
                if not self.accept("COMMA"):
                    break
            if not self.accept("SEMICOLON"):
                break
            if self.current.kind in ("DOT", "RBRACE"):
                break  # dangling ';' is tolerated, as in full SPARQL
        return patterns

    def _verb(self):
        if self.current.kind == "VAR":
            return self._var(self.advance())
        return self._path()

    # -- property paths (subset: iri, a, ^p, p1/p2, p+, p*) ---------------
    def _path(self):
        parts = [self._path_elt()]
        while self.accept("SLASH"):
            parts.append(self._path_elt())
        if len(parts) == 1:
            return parts[0]
        return alg.SequencePath(tuple(parts))

    def _path_elt(self):
        primary = self._path_primary()
        if self.accept("PLUS"):
            return alg.OneOrMorePath(primary)
        if self.current.kind == "STAR":
            # '*' is also SELECT-star; in verb position it is a path modifier.
            self.advance()
            return alg.ZeroOrMorePath(primary)
        return primary

    def _path_primary(self):
        if self.accept("A"):
            return RDF.type
        if self.accept("CARET"):
            return alg.InversePath(self._path_primary())
        if self.accept("LPAREN"):
            inner = self._path()
            self.expect("RPAREN")
            return inner
        term = self._term()
        if not isinstance(term, IRI):
            raise SparqlParseError("property paths must be built from IRIs")
        return term

    def _var_or_term(self) -> alg.PatternTerm:
        token = self.current
        if token.kind == "VAR":
            self.advance()
            return self._var(token)
        return self._term()

    @staticmethod
    def _var(token: Token) -> alg.Var:
        return alg.Var(token.text[1:])

    def _term(self) -> Term:
        token = self.current
        if token.kind == "IRIREF":
            self.advance()
            return IRI(token.text[1:-1])
        if token.kind == "PNAME":
            self.advance()
            prefix, local = token.text.split(":", 1)
            if prefix not in self.prefixes:
                raise SparqlParseError(f"undeclared prefix {prefix!r}")
            return IRI(self.prefixes[prefix] + local)
        if token.kind == "STRING":
            self.advance()
            lexical = _unescape(token.text[1:-1])
            if self.accept("DTYPE"):
                dtype = self._term()
                if not isinstance(dtype, IRI):
                    raise SparqlParseError("datatype must be an IRI")
                return Literal(lexical, datatype=dtype.value)
            lang = self.accept("LANGTAG")
            if lang:
                return Literal(lexical, language=lang.text[1:])
            return Literal(lexical)
        if token.kind == "NUMBER":
            self.advance()
            if any(ch in token.text for ch in ".eE"):
                return Literal(token.text, datatype=XSD.double)
            return Literal(token.text, datatype=XSD.integer)
        raise SparqlParseError(
            f"expected a term but found {token.kind} ({token.text!r}) "
            f"at offset {token.position}"
        )

    # -- expressions -------------------------------------------------------
    def _constraint(self) -> alg.Expression:
        if self.current.kind == "LPAREN":
            self.advance()
            expr = self._expression()
            self.expect("RPAREN")
            return expr
        return self._primary_expression()

    def _expression(self) -> alg.Expression:
        return self._or_expression()

    def _or_expression(self) -> alg.Expression:
        left = self._and_expression()
        while self.accept("OROR"):
            left = alg.BoolOp("||", left, self._and_expression())
        return left

    def _and_expression(self) -> alg.Expression:
        left = self._relational_expression()
        while self.accept("ANDAND"):
            left = alg.BoolOp("&&", left, self._relational_expression())
        return left

    def _relational_expression(self) -> alg.Expression:
        left = self._unary_expression()
        op_token = self.accept("EQ", "NEQ", "LT", "LE", "GT", "GE")
        if op_token is None:
            return left
        ops = {"EQ": "=", "NEQ": "!=", "LT": "<", "LE": "<=", "GT": ">", "GE": ">="}
        return alg.Comparison(ops[op_token.kind], left, self._unary_expression())

    def _unary_expression(self) -> alg.Expression:
        if self.accept("BANG"):
            return alg.NotOp(self._unary_expression())
        return self._primary_expression()

    _FUNCTIONS = {"BOUND", "STR", "LANG", "REGEX", "CONTAINS", "STRSTARTS",
                  "STRENDS", "LCASE", "UCASE", "ISIRI", "ISLITERAL", "XSD"}

    def _primary_expression(self) -> alg.Expression:
        token = self.current
        if token.kind == "LPAREN":
            self.advance()
            expr = self._expression()
            self.expect("RPAREN")
            return expr
        if token.kind == "VAR":
            self.advance()
            return alg.VarExpr(self._var(token))
        if token.kind == "NAME" and token.text.upper() in self._FUNCTIONS:
            self.advance()
            return self._function_call(token.text.upper())
        if token.kind in ("IRIREF", "PNAME", "STRING", "NUMBER"):
            return alg.TermExpr(self._term())
        raise SparqlParseError(
            f"unexpected token {token.kind} ({token.text!r}) in expression "
            f"at offset {token.position}"
        )

    def _function_call(self, name: str) -> alg.FunctionCall:
        self.expect("LPAREN")
        args: List[alg.Expression] = []
        if self.current.kind != "RPAREN":
            args.append(self._expression())
            while self.accept("COMMA"):
                args.append(self._expression())
        self.expect("RPAREN")
        return alg.FunctionCall(name, tuple(args))


def _unescape(text: str) -> str:
    return (
        text.replace("\\n", "\n")
        .replace("\\t", "\t")
        .replace('\\"', '"')
        .replace("\\\\", "\\")
    )


def parse_query(text: str) -> alg.Query:
    """Parse a SPARQL query string into the algebra.

    Raises :class:`SparqlParseError` (including for lexical errors) so
    callers — notably the text-to-SPARQL evaluation harness, which must
    count malformed LLM output as a failure, not a crash — have a single
    exception type to catch.
    """
    try:
        tokens = tokenize(text)
    except SparqlLexError as exc:
        raise SparqlParseError(str(exc)) from exc
    return _Parser(tokens, text).parse()
