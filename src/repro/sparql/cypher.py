"""A Cypher-subset front-end that translates to SPARQL.

RQ6 covers "Text to Sparql or Cypher"; to exercise the Cypher half without a
property-graph engine we map the openCypher pattern language onto RDF:

* node labels → ``rdf:type`` triples against a class namespace,
* relationship types → predicate IRIs in a relation namespace,
* the ``name`` property → ``rdfs:label``; other properties → predicates.

The translator emits SPARQL text, so everything downstream (evaluation,
benchmarks) reuses the engine in :mod:`repro.sparql.evaluator`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.kg.store import TripleStore
from repro.kg.triples import RDFS
from repro.sparql.evaluator import Solution, SparqlEngine

DEFAULT_SCHEMA_PREFIX = "http://repro.dev/schema/"


class CypherParseError(ValueError):
    """Raised when the Cypher text is outside the supported subset."""


@dataclass
class _Node:
    var: str
    label: Optional[str] = None
    properties: Dict[str, str] = field(default_factory=dict)


@dataclass
class _Rel:
    rel_type: str
    reversed: bool


@dataclass
class _ReturnItem:
    var: str
    prop: Optional[str] = None
    is_count: bool = False


_NODE_RE = re.compile(
    r"\(\s*(?P<var>[A-Za-z_][A-Za-z0-9_]*)?\s*(?::(?P<label>[A-Za-z_][A-Za-z0-9_]*))?"
    r"\s*(?P<props>\{[^}]*\})?\s*\)"
)
_REL_RE = re.compile(
    r"(?P<left><)?-\s*\[\s*(?:[A-Za-z_][A-Za-z0-9_]*)?\s*:\s*(?P<type>[A-Za-z_][A-Za-z0-9_]*)\s*\]\s*-(?P<right>>)?"
)
_PROP_RE = re.compile(r"([A-Za-z_][A-Za-z0-9_]*)\s*:\s*\"((?:[^\"\\]|\\.)*)\"")
_WHERE_COND_RE = re.compile(
    r"([A-Za-z_][A-Za-z0-9_]*)\.([A-Za-z_][A-Za-z0-9_]*)\s*(=|<>|<=|>=|<|>)\s*"
    r"(?:\"((?:[^\"\\]|\\.)*)\"|(\d+(?:\.\d+)?))"
)
_RETURN_ITEM_RE = re.compile(
    r"(?:(?P<count>count)\s*\(\s*(?P<cvar>[A-Za-z_][A-Za-z0-9_]*|\*)\s*\)"
    r"|(?P<var>[A-Za-z_][A-Za-z0-9_]*)(?:\.(?P<prop>[A-Za-z_][A-Za-z0-9_]*))?)",
    re.IGNORECASE,
)


def cypher_to_sparql(cypher: str, schema_prefix: str = DEFAULT_SCHEMA_PREFIX) -> str:
    """Translate a Cypher-subset query into an equivalent SPARQL query.

    Supported: ``MATCH`` with one pattern chain (multiple comma-separated
    chains allowed), inline property maps, ``WHERE`` conjunctions over
    ``var.prop`` comparisons, ``RETURN [DISTINCT]`` of variables /
    properties / ``count()``, ``ORDER BY``, ``LIMIT``.
    """
    text = cypher.strip().rstrip(";")
    m = re.match(
        r"MATCH\s+(?P<match>.+?)(?:\s+WHERE\s+(?P<where>.+?))?"
        r"\s+RETURN\s+(?P<distinct>DISTINCT\s+)?(?P<ret>.+?)"
        r"(?:\s+ORDER\s+BY\s+(?P<order>[A-Za-z_][\w.]*)(?P<desc>\s+DESC)?)?"
        r"(?:\s+LIMIT\s+(?P<limit>\d+))?$",
        text, re.IGNORECASE | re.DOTALL,
    )
    if m is None:
        raise CypherParseError(f"unsupported Cypher shape: {cypher!r}")

    triples: List[str] = []
    prop_vars: Dict[Tuple[str, str], str] = {}
    anon_counter = [0]

    def schema_iri(name: str) -> str:
        return f"<{schema_prefix}{name}>"

    def prop_predicate(prop: str) -> str:
        if prop == "name":
            return f"<{RDFS.label.value}>"
        return schema_iri(prop)

    def ensure_prop_var(var: str, prop: str) -> str:
        key = (var, prop)
        if key not in prop_vars:
            value_var = f"{var}_{prop}"
            prop_vars[key] = value_var
            triples.append(f"?{var} {prop_predicate(prop)} ?{value_var}")
        return prop_vars[key]

    def parse_node(node_text: str, match: re.Match) -> _Node:
        var = match.group("var")
        if var is None:
            var = f"_anon{anon_counter[0]}"
            anon_counter[0] += 1
        node = _Node(var=var, label=match.group("label"))
        props = match.group("props")
        if props:
            for prop, value in _PROP_RE.findall(props):
                node.properties[prop] = value
        return node

    def emit_node(node: _Node) -> None:
        if node.label:
            triples.append(f"?{node.var} a {schema_iri(node.label)}")
        for prop, value in node.properties.items():
            escaped = value.replace('"', '\\"')
            triples.append(f'?{node.var} {prop_predicate(prop)} "{escaped}"')

    for chain in _split_top_level_commas(m.group("match")):
        position = 0
        chain = chain.strip()
        node_match = _NODE_RE.match(chain, position)
        if node_match is None:
            raise CypherParseError(f"expected a node pattern in {chain!r}")
        current = parse_node(chain, node_match)
        emit_node(current)
        position = node_match.end()
        while position < len(chain):
            rel_match = _REL_RE.match(chain, position)
            if rel_match is None:
                raise CypherParseError(f"expected a relationship at {chain[position:]!r}")
            position = rel_match.end()
            node_match = _NODE_RE.match(chain, position)
            if node_match is None:
                raise CypherParseError(f"expected a node pattern at {chain[position:]!r}")
            nxt = parse_node(chain, node_match)
            emit_node(nxt)
            position = node_match.end()
            predicate = schema_iri(rel_match.group("type"))
            if rel_match.group("left"):  # <-[:T]-
                triples.append(f"?{nxt.var} {predicate} ?{current.var}")
            else:  # -[:T]->
                triples.append(f"?{current.var} {predicate} ?{nxt.var}")
            current = nxt

    filters: List[str] = []
    where = m.group("where")
    if where:
        for part in re.split(r"\s+AND\s+", where, flags=re.IGNORECASE):
            cond = _WHERE_COND_RE.fullmatch(part.strip())
            if cond is None:
                raise CypherParseError(f"unsupported WHERE condition {part!r}")
            var, prop, op, string_value, number_value = cond.groups()
            value_var = ensure_prop_var(var, prop)
            sparql_op = "!=" if op == "<>" else op
            if string_value is not None:
                escaped = string_value.replace('"', '\\"')
                rhs = f'"{escaped}"'
            else:
                rhs = number_value
            filters.append(f"FILTER (?{value_var} {sparql_op} {rhs})")

    return_items: List[_ReturnItem] = []
    for part in _split_top_level_commas(m.group("ret")):
        item_match = _RETURN_ITEM_RE.fullmatch(part.strip())
        if item_match is None:
            raise CypherParseError(f"unsupported RETURN item {part!r}")
        if item_match.group("count"):
            cvar = item_match.group("cvar")
            return_items.append(_ReturnItem(var=cvar, is_count=True))
        else:
            return_items.append(
                _ReturnItem(var=item_match.group("var"), prop=item_match.group("prop"))
            )

    projection: List[str] = []
    count_clause: Optional[str] = None
    for item in return_items:
        if item.is_count:
            inner = "*" if item.var == "*" else f"?{item.var}"
            count_clause = f"(COUNT({inner}) AS ?count)"
        elif item.prop:
            projection.append("?" + ensure_prop_var(item.var, item.prop))
        else:
            projection.append(f"?{item.var}")
    if count_clause is not None and projection:
        raise CypherParseError("mixing count() with plain items is not supported")

    order_clause = ""
    order = m.group("order")
    if order:
        if "." in order:
            order_var, order_prop = order.split(".", 1)
            order_target = "?" + ensure_prop_var(order_var, order_prop)
        else:
            order_target = f"?{order}"
        direction = " DESC" if m.group("desc") else ""
        if direction:
            order_clause = f" ORDER BY DESC({order_target})"
        else:
            order_clause = f" ORDER BY {order_target}"

    body = " . ".join(triples + filters)
    head = count_clause if count_clause else " ".join(projection) or "*"
    distinct = "DISTINCT " if m.group("distinct") else ""
    limit_clause = f" LIMIT {m.group('limit')}" if m.group("limit") else ""
    return f"SELECT {distinct}{head} WHERE {{ {body} }}{order_clause}{limit_clause}"


def _split_top_level_commas(text: str) -> List[str]:
    """Split on commas not inside parentheses/brackets/braces/quotes."""
    parts: List[str] = []
    depth = 0
    in_string = False
    current: List[str] = []
    for ch in text:
        if ch == '"' and (not current or current[-1] != "\\"):
            in_string = not in_string
        if not in_string:
            if ch in "([{":
                depth += 1
            elif ch in ")]}":
                depth -= 1
            elif ch == "," and depth == 0:
                parts.append("".join(current))
                current = []
                continue
        current.append(ch)
    if current:
        parts.append("".join(current))
    return [p for p in (part.strip() for part in parts) if p]


class CypherEngine:
    """Run Cypher-subset queries against a triple store via translation."""

    def __init__(self, store: TripleStore, schema_prefix: str = DEFAULT_SCHEMA_PREFIX):
        self.engine = SparqlEngine(store)
        self.schema_prefix = schema_prefix

    def execute(self, cypher: str) -> Union[List[Solution], bool]:
        """Translate and evaluate; returns SPARQL-style solution dicts."""
        sparql = cypher_to_sparql(cypher, self.schema_prefix)
        return self.engine.execute(sparql)
